#!/usr/bin/env bash
# Golden-figures check: runs the experiment binaries at small fixed counts
# (single-threaded, fixed seeds, default bit-sliced backend) and diffs the
# CSVs against the checked-in goldens under tests/golden/, so simulation
# refactors cannot silently change paper numbers.
#
# Usage:
#   scripts/golden.sh           # verify against tests/golden/
#   scripts/golden.sh --update  # regenerate tests/golden/ in place
#   OUTDIR=path scripts/golden.sh  # also keep the produced CSVs
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_DIR=tests/golden
OUTDIR="${OUTDIR:-$(mktemp -d)}"
mkdir -p "$OUTDIR"

echo "==> building release binaries"
# -p isa-experiments: the experiment binaries live there, and a plain
# root-package build does not produce dependency crates' binaries.
cargo build --release -q -p isa-experiments

run() {
  local name="$1"
  shift
  echo "==> $name"
  "$@" --threads 1 --csv "$OUTDIR/$name.csv" >/dev/null
}

run design_table ./target/release/design_table --samples 4000
run fig9 ./target/release/fig9 --cycles 400
run fig7_fig8 ./target/release/fig7 --train 400 --test 200
run fig10 ./target/release/fig10 --cycles 600
run energy ./target/release/energy_table --cycles 300
run guardband ./target/release/guardband --cycles 400
run workloads ./target/release/workloads --cycles 400
run apps ./target/release/apps --scale 1
run explore ./target/release/explore --space paper --strategy exhaustive --cycles 400 --seed 7

if [[ "${1:-}" == "--update" ]]; then
  mkdir -p "$GOLDEN_DIR"
  cp "$OUTDIR"/*.csv "$GOLDEN_DIR"/
  echo "golden: updated $GOLDEN_DIR"
  exit 0
fi

status=0
for f in "$OUTDIR"/*.csv; do
  name="$(basename "$f")"
  if ! diff -u "$GOLDEN_DIR/$name" "$f"; then
    echo "golden: MISMATCH in $name"
    status=1
  fi
done
if [[ $status -eq 0 ]]; then
  echo "golden: OK"
else
  echo "golden: FAILED — if the change is intentional, run scripts/golden.sh --update"
fi
exit $status
