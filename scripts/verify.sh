#!/usr/bin/env bash
# Mirrors CI exactly — the same checks, in the same order, as
# .github/workflows/ci.yml — so local verify and CI cannot disagree:
#   lint    -> fmt + clippy -D warnings
#   test    -> release build, tier-1 tests, workspace tests
#   docs    -> rustdoc with warnings denied
#   netlint -> full-grid netlist/timing static analysis (fails on Error)
#   prove   -> symbolic equivalence + false-path STA proofs (fails on any)
#   miri    -> LaneBatch pack/transpose tests under Miri (when installed)
#   golden  -> experiment CSVs diffed against tests/golden/
#   serve   -> chaos battery + cold/hot/chaos byte-identity + observability
#              out-of-band pass (metrics + tracing on, bytes unchanged) +
#              store gate with exposition schema check
#   bench   -> backend speedup gates (plus criterion when a registry is up)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> wide-tape feature tests (isa-netlist + isa-timing-sim)"
cargo test -q -p isa-netlist --features wide-tape
cargo test -q -p isa-timing-sim --features wide-tape

echo "==> cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps

echo "==> netlint sweep (12 seeds + full width-32 quadruple grid)"
# Same sweep as CI's netlint job: every feasible design through the full
# lint pipeline; the binary exits non-zero on any Error-severity finding.
cargo run --release -q -p isa-experiments --bin netlint

echo "==> prove sweep (12 seeds at 32 bits + width-16 quadruple grid)"
# Same sweep as CI's prove job: full symbolic equivalence proofs and
# false-path STA on every feasible design; exits non-zero on any failed
# proof.
cargo run --release -q -p isa-experiments --bin prove

echo "==> miri (LaneBatch pack/transpose)"
# CI runs these under nightly Miri as a UB tripwire for the lane-packing
# hot path. Miri needs a nightly component that offline environments may
# not have — skip only when it is genuinely unavailable.
if cargo miri --version >/dev/null 2>&1; then
  MIRIFLAGS=-Zmiri-strict-provenance cargo miri test -p isa-core batch
elif rustup component add miri --toolchain nightly >/dev/null 2>&1; then
  MIRIFLAGS=-Zmiri-strict-provenance cargo +nightly miri test -p isa-core batch
else
  echo "==> miri: SKIPPED (no miri component available; CI runs it)"
fi

echo "==> golden figures (scripts/golden.sh)"
scripts/golden.sh

echo "==> serve chaos battery (release, same as CI)"
cargo test --release -q -p isa-serve

echo "==> serve cold/hot/chaos byte-identity smoke (released binary)"
# Same three-pass script as CI's serve job: cold computes and persists,
# hot serves from the store, chaos re-runs hot under injected store
# faults — all three response streams must be byte-identical.
cargo build --release -q -p isa-serve
serve_store="$(mktemp -d)"
serve_script="$(mktemp)"
cat > "$serve_script" <<'EOF'
{"id":1,"op":"ping"}
{"id":2,"op":"quality","design":"8,2,1,4","cpr":0.0,"workload":"uniform","cycles":800}
{"id":3,"op":"quality","design":"8,2,1,4","cpr":0.2,"workload":"uniform","cycles":800}
{"id":4,"op":"quality","design":"8,1,1,4","cpr":0.1,"workload":"walk","cycles":800}
{"id":5,"op":"quality","design":"exact","cpr":0.1,"workload":"sine","cycles":800}
{"id":6,"op":"quality","design":"8,2,1,4","cpr":0.1,"workload":"fir","scale":1}
{"id":7,"op":"cheapest","min_quality_db":30,"cpr":0.1,"workload":"uniform","cycles":800}
EOF
serve_cold="$(mktemp)" serve_hot="$(mktemp)" serve_chaos="$(mktemp)"
./target/release/isa-serve --store "$serve_store" --quiet \
  < "$serve_script" > "$serve_cold"
./target/release/isa-serve --store "$serve_store" --quiet \
  < "$serve_script" > "$serve_hot"
diff "$serve_cold" "$serve_hot"
ISA_SERVE_FAULTS="seed=42,store_read=64,store_write=64,torn=128" \
  ./target/release/isa-serve --store "$serve_store" --quiet \
  < "$serve_script" > "$serve_chaos"
diff "$serve_cold" "$serve_chaos"

echo "==> serve observability out-of-band pass (metrics + tracing on; bytes unchanged)"
# Same invariant as CI's obs step: the metric exposition and span tracing
# must never leak into answers — the streams with observability on (hot,
# and hot under chaos faults) stay byte-identical to the cold pass, and
# the trace folds cleanly through the profiler.
serve_obs="$(mktemp)" serve_obs_chaos="$(mktemp)"
serve_metrics="$(mktemp)" serve_trace="$(mktemp)"
./target/release/isa-serve --store "$serve_store" --quiet \
  --metrics-file "$serve_metrics" --metrics-period-ms 500 \
  --trace "$serve_trace" \
  < "$serve_script" > "$serve_obs"
diff "$serve_cold" "$serve_obs"
ISA_SERVE_FAULTS="seed=42,store_read=64,store_write=64,torn=128" \
  ./target/release/isa-serve --store "$serve_store" --quiet \
  --metrics-file "$serve_metrics" --trace "$serve_trace" \
  < "$serve_script" > "$serve_obs_chaos"
diff "$serve_cold" "$serve_obs_chaos"
cargo run --release -q -p isa-obs --bin trace-summary -- "$serve_trace" >/dev/null
rm -rf "$serve_store" "$serve_script" "$serve_cold" "$serve_hot" "$serve_chaos" \
  "$serve_obs" "$serve_obs_chaos" "$serve_metrics" "$serve_trace"

echo "==> serve hot-store speedup gate (serve_bench, reduced counts; CI gates 5x at BENCH_PR10.json counts)"
# --metrics-file doubles as the exposition schema check: serve_bench
# re-parses what it wrote and exits non-zero on any malformation.
bench_metrics="$(mktemp)"
cargo run --release -q -p isa-serve --bin serve_bench -- \
  --cycles 1500 --designs 3 --repeat 2 --min-hot-speedup 5 \
  --metrics-file "$bench_metrics" >/dev/null
rm -f "$bench_metrics"

# CI's test job also compiles the criterion bench crate and its bench job
# runs the microbenchmarks; both need a crate registry, which offline
# build environments lack. Skip only genuine dependency-resolution
# failures; real compile errors must fail here exactly as they fail CI.
echo "==> bench crate check"
bench_log="$(mktemp)"
if cargo check -q --manifest-path crates/bench/Cargo.toml --benches 2>"$bench_log"; then
  echo "==> bench crate check: OK"
elif grep -qiE "failed to get|registry|network|dns error|download" "$bench_log"; then
  echo "==> bench crate check: SKIPPED (no registry; CI runs it)"
else
  cat "$bench_log" >&2
  echo "==> bench crate check: FAILED (not a registry problem)" >&2
  rm -f "$bench_log"
  exit 1
fi
rm -f "$bench_log"

echo "==> backend speedup gates (bench_backends, reduced counts, warmup + best-of-3)"
# Same triple gates as CI's bench job — tape vs filtered on the
# gate-level pipelines, filtered vs bit-sliced, and bit-sliced vs
# scalar — but at reduced counts so a speedup-destroying change fails
# in seconds locally. The suite-level thresholds are lower than CI's
# because forest fitting and synthesis (backend-common) dominate small
# suites; CI enforces 1.5x at the BENCH_PR6.json reference counts
# (--cycles 100000), where gate-level simulation dominates. The tape
# gate is already scoped to fig9+fig10, so it holds at small counts.
cargo run --release -q -p isa-experiments --bin bench_backends -- \
  --cycles 20000 --train 2000 --test 1000 --samples 100000 \
  --min-speedup 1.1 --min-tape-speedup 1.3 >/dev/null

echo "==> explorer pre-filter gate (reduced counts; CI gates 1.3x at BENCH_PR5.json counts)"
# Same dual checks as CI's explorer step — pre-filter speedup on the
# bit-sliced backend plus front equality with and without pruning — at
# reduced cycles so it finishes in seconds.
cargo run --release -q -p isa-experiments --bin explore -- \
  --space compact --strategy exhaustive --cycles 5000 --seed 7 \
  --backend bitsliced --bench-json "$(mktemp)" --repeats 1 \
  --min-prefilter-speedup 1.1 >/dev/null

echo "verify: OK"
