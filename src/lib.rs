//! # overclocked-isa
//!
//! A full Rust reproduction of *"Combining Structural and Timing Errors in
//! Overclocked Inexact Speculative Adders"* (Jiao, Camus, Cacciotti, Jiang,
//! Enz, Gupta — DATE 2017), from the gate level up:
//!
//! * [`core`] — the ISA behavioural model, the signed
//!   structural/timing/joint error methodology, the twelve paper designs,
//!   and the [`Substrate`](core::Substrate) interface over `ysilver`
//!   providers;
//! * [`netlist`] — standard cells, adder topologies, ISA
//!   assembly, STA, SDF annotation, mini-synthesis (the Design Compiler
//!   substitute);
//! * [`timing_sim`] — event-driven delay-annotated
//!   simulation (the ModelSim substitute);
//! * [`learn`] — decision trees / random forests and the
//!   per-bit timing-error predictor (the scikit-learn substitute);
//! * [`metrics`] — ABPER, AVPE, display floor, SNR, and
//!   application quality ([`QualityStats`](metrics::QualityStats):
//!   PSNR/SNR in dB);
//! * [`workloads`] — input-vector generators;
//! * [`apps`] — application kernels (FIR, 2-D convolution, dot
//!   product, histogram) lowered to adder-operation streams and scored by
//!   PSNR/SNR against their exact reference;
//! * [`engine`] — the unified execution layer:
//!   [`ExperimentPlan`](engine::ExperimentPlan) +
//!   [`Engine`](engine::Engine) with memoized synthesis artifacts and
//!   sharded multi-threaded runs over swappable substrates;
//! * [`explore`] — multi-objective design-space exploration:
//!   Pareto search over (error, delay, energy) with a two-tier
//!   analytical + gate-level evaluator and exhaustive or NSGA-II-style
//!   evolutionary strategies;
//! * [`experiments`] — the per-figure reproduction
//!   pipelines, all driving the engine;
//! * [`serve`] — the resident query service: a line-delimited JSON
//!   front end over the engine with an on-disk result store, request
//!   coalescing, budget-tiered degradation and seeded fault injection;
//! * [`obs`] — the zero-dependency observability spine every layer
//!   above reports through: lock-free metric registry (counters, gauges,
//!   log-bucket latency histograms), thread-local span tracing to JSONL,
//!   rate-limited structured logging, Prometheus-style exposition, and
//!   the `trace-summary` profiler — all strictly out-of-band.
//!
//! See the `examples/` directory for runnable entry points and the root
//! `README.md` for a quickstart, the architecture inventory and how the
//! substrates map onto the paper's Fig. 6 roles.
//!
//! # Quick start
//!
//! ```
//! use overclocked_isa::core::{combine, IsaConfig, SpeculativeAdder};
//!
//! # fn main() -> Result<(), overclocked_isa::core::ConfigError> {
//! let isa = SpeculativeAdder::new(IsaConfig::new(32, 8, 0, 0, 4)?);
//! let inputs = (0..100u64).map(|i| (i * 977, i * 3331));
//! let stats = combine::structural_errors(&isa, inputs);
//! assert!(stats.re_joint.rms() < 0.1, "speculation errors are bounded");
//! # Ok(())
//! # }
//! ```
//!
//! # Running an experiment plan
//!
//! ```
//! use overclocked_isa::core::{Design, IsaConfig};
//! use overclocked_isa::engine::{Engine, ExperimentConfig, ExperimentPlan, SubstrateChoice};
//!
//! let engine = Engine::with_threads(2);
//! let plan = ExperimentPlan::new(ExperimentConfig::default())
//!     .designs([Design::Isa(IsaConfig::new(32, 8, 0, 0, 4).unwrap())])
//!     .cprs([0.10])
//!     .cycles(200)
//!     .substrate(SubstrateChoice::Behavioural);
//! let results = engine.run(&plan);
//! assert_eq!(results[0].timing_error_rate(), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use isa_apps as apps;
pub use isa_core as core;
pub use isa_engine as engine;
pub use isa_experiments as experiments;
pub use isa_explore as explore;
pub use isa_learn as learn;
pub use isa_metrics as metrics;
pub use isa_netlist as netlist;
pub use isa_obs as obs;
pub use isa_serve as serve;
pub use isa_timing_sim as timing_sim;
pub use isa_workloads as workloads;
