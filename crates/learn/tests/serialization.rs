//! Round-trip tests of the plain-text model format on real trained models.

use isa_learn::{CyclePair, PredictorConfig, TimingErrorPredictor};

fn training_stream(n: usize) -> Vec<CyclePair> {
    let mut seed = 0xBEEFu64;
    let mut raw = Vec::with_capacity(n);
    for _ in 0..n {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let a = seed & 0xFFFF_FFFF;
        let b = (seed >> 13) & 0xFFFF_FFFF;
        let gold = (a + b) & 0x1_FFFF_FFFF;
        // Two misbehaving bits with different patterns.
        let mut flips = 0u64;
        if (a & 0xF) == 0xF {
            flips |= 1 << 12;
        }
        if (b & 0x3) == 0x3 && (a & 1) == 1 {
            flips |= 1 << 30;
        }
        raw.push((a, b, gold, flips));
    }
    CyclePair::from_stream(&raw)
}

#[test]
fn roundtrip_preserves_every_prediction() {
    let cycles = training_stream(2500);
    let model = TimingErrorPredictor::train(&cycles, 32, &PredictorConfig::default());
    assert!(model.trained_bits() >= 2, "both planted bits should train");
    let text = model.to_text();
    let reloaded = TimingErrorPredictor::from_text(&text).expect("roundtrip");
    assert_eq!(reloaded.width(), model.width());
    assert_eq!(reloaded.out_bits(), model.out_bits());
    assert_eq!(reloaded.trained_bits(), model.trained_bits());
    for cycle in &cycles {
        assert_eq!(
            reloaded.predict_flips(cycle),
            model.predict_flips(cycle),
            "prediction diverged after reload"
        );
    }
}

#[test]
fn text_format_is_line_oriented_and_inspectable() {
    let cycles = training_stream(800);
    let model = TimingErrorPredictor::train(&cycles, 32, &PredictorConfig::default());
    let text = model.to_text();
    assert!(text.starts_with("timing-error-predictor width=32 out_bits=33"));
    assert!(text.contains("bit 0 constant 0"));
    assert!(text.contains("forest trees="));
    assert!(text.contains("split "));
}

#[test]
fn malformed_inputs_are_rejected_with_line_numbers() {
    use isa_learn::serialize::ParseModelError;
    let cases = [
        ("", "empty"),
        ("garbage header", "header"),
        ("timing-error-predictor width=8 out_bits=7\n", "inconsistent"),
        (
            "timing-error-predictor width=8 out_bits=9\nbit 1 constant 0\n",
            "out of order",
        ),
        (
            "timing-error-predictor width=8 out_bits=9\nbit 0 forest\nforest trees=1\ntree features=2 nodes=1\nsplit 0 0 0\n",
            "child or leaf",
        ),
    ];
    for (text, label) in cases {
        let err: ParseModelError = match TimingErrorPredictor::from_text(text) {
            Err(e) => e,
            Ok(_) => panic!("case {label:?} should fail"),
        };
        assert!(err.to_string().contains("line"), "{label}: {err}");
    }
}

#[test]
fn tampered_split_child_is_rejected() {
    let cycles = training_stream(800);
    let model = TimingErrorPredictor::train(&cycles, 32, &PredictorConfig::default());
    let text = model.to_text();
    // Point a split child far out of range.
    let tampered = text.replacen("split ", "split 999999 ", 1);
    if tampered != text {
        assert!(TimingErrorPredictor::from_text(&tampered).is_err());
    }
}
