//! The paper's bit-level timing-error prediction model (Section III.A).
//!
//! For each output bit position `n`, a binary classifier learns the mapping
//! from `{x[t], x[t-1], yRTL_n[t-1], yRTL_n[t]}` to the bit's timing class.
//! Bits whose training labels are constant (e.g. never erroneous at a mild
//! overclock) skip forest training and predict that constant — the paper's
//! ABPER = 0 cases.
//!
//! The model "does not directly generate arithmetic values, it only
//! generates timing-class vectors" ([`TimingErrorPredictor::predict_flips`])
//! "and deduces the corresponding ysilver compared to the expected output
//! ygold" ([`TimingErrorPredictor::predict_silver`]).

use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForest};

/// One training/inference cycle of an overclocked adder stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclePair {
    /// Current first operand `x[t]` (low half).
    pub a: u64,
    /// Current second operand `x[t]` (high half).
    pub b: u64,
    /// Previous first operand `x[t-1]`.
    pub a_prev: u64,
    /// Previous second operand `x[t-1]`.
    pub b_prev: u64,
    /// Current golden (structural-only) output `yRTL[t]`.
    pub gold: u64,
    /// Previous golden output `yRTL[t-1]`.
    pub gold_prev: u64,
    /// Real timing-class vector: bit `n` set iff position `n` was
    /// timing-erroneous this cycle (training label; ignored at inference).
    pub flips: u64,
}

impl CyclePair {
    /// Builds the cycle sequence from stream-ordered per-cycle data
    /// `(a, b, gold, flips)`, deriving the `t-1` fields. The first cycle's
    /// predecessor is the all-zero reset state.
    #[must_use]
    pub fn from_stream(cycles: &[(u64, u64, u64, u64)]) -> Vec<CyclePair> {
        let mut prev = (0u64, 0u64, 0u64);
        cycles
            .iter()
            .map(|&(a, b, gold, flips)| {
                let pair = CyclePair {
                    a,
                    b,
                    a_prev: prev.0,
                    b_prev: prev.1,
                    gold,
                    gold_prev: prev.2,
                    flips,
                };
                prev = (a, b, gold);
                pair
            })
            .collect()
    }
}

/// Per-bit model: a trained forest, or a constant for bits with constant
/// training labels.
#[derive(Debug, Clone, PartialEq)]
enum BitModel {
    Constant(bool),
    Forest(RandomForest),
}

/// Configuration of the full per-bit predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictorConfig {
    /// Forest settings shared by every bit position.
    pub forest: ForestConfig,
}

/// The trained bit-level timing-error prediction model for one (design,
/// clock period) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingErrorPredictor {
    width: u32,
    out_bits: u32,
    models: Vec<BitModel>,
}

/// Number of features: `x[t]` (2w) + `x[t-1]` (2w) + `yRTL_n[t-1]` +
/// `yRTL_n[t]`.
fn feature_count(width: u32) -> usize {
    4 * width as usize + 2
}

/// Packs the shared features; the two per-bit gold features are appended by
/// [`bit_features`].
fn base_features(width: u32, a: u64, b: u64, a_prev: u64, b_prev: u64) -> Vec<bool> {
    let w = width as usize;
    let mut f = Vec::with_capacity(feature_count(width));
    for i in 0..w {
        f.push((a >> i) & 1 == 1);
    }
    for i in 0..w {
        f.push((b >> i) & 1 == 1);
    }
    for i in 0..w {
        f.push((a_prev >> i) & 1 == 1);
    }
    for i in 0..w {
        f.push((b_prev >> i) & 1 == 1);
    }
    f
}

fn bit_features(base: &[bool], gold_prev_bit: bool, gold_bit: bool) -> Vec<bool> {
    let mut f = Vec::with_capacity(base.len() + 2);
    f.extend_from_slice(base);
    f.push(gold_prev_bit);
    f.push(gold_bit);
    f
}

fn pack(features: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; features.len().div_ceil(64)];
    for (i, &f) in features.iter().enumerate() {
        if f {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

impl TimingErrorPredictor {
    /// Trains one classifier per output bit from stream-ordered cycles.
    ///
    /// `width` is the adder operand width; outputs cover `width + 1` bits.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is empty or `width` is not in `1..=63`.
    #[must_use]
    pub fn train(cycles: &[CyclePair], width: u32, config: &PredictorConfig) -> Self {
        assert!(!cycles.is_empty(), "cannot train on an empty stream");
        assert!(width > 0 && width <= 63, "width must be in 1..=63");
        let out_bits = width + 1;
        let n = cycles.len();
        let words = n.div_ceil(64);
        let w = width as usize;
        // The 4w base-feature planes (x[t], x[t-1]) are identical for
        // every output bit: build them once, column-major, and share them
        // across the per-bit datasets by clone — the bit-sliced layout
        // tree growth counts splits on directly.
        let mut base_planes = vec![vec![0u64; words]; 4 * w];
        for (i, c) in cycles.iter().enumerate() {
            let (word, bit) = (i / 64, i % 64);
            for (slot, value) in [c.a, c.b, c.a_prev, c.b_prev].into_iter().enumerate() {
                for j in 0..w {
                    if (value >> j) & 1 == 1 {
                        base_planes[slot * w + j][word] |= 1u64 << bit;
                    }
                }
            }
        }

        let models = (0..out_bits)
            .map(|n_bit| {
                let mut label_plane = vec![0u64; words];
                let mut gold_prev_plane = vec![0u64; words];
                let mut gold_plane = vec![0u64; words];
                for (i, c) in cycles.iter().enumerate() {
                    let (word, bit) = (i / 64, i % 64);
                    label_plane[word] |= ((c.flips >> n_bit) & 1) << bit;
                    gold_prev_plane[word] |= ((c.gold_prev >> n_bit) & 1) << bit;
                    gold_plane[word] |= ((c.gold >> n_bit) & 1) << bit;
                }
                let positives: usize = label_plane.iter().map(|w| w.count_ones() as usize).sum();
                if positives == 0 || positives == n {
                    return BitModel::Constant(positives == n);
                }
                let mut planes = base_planes.clone();
                planes.push(gold_prev_plane);
                planes.push(gold_plane);
                debug_assert_eq!(planes.len(), feature_count(width));
                let dataset = Dataset::from_planes(planes, label_plane, n);
                let indices: Vec<usize> = (0..dataset.len()).collect();
                let forest_config = ForestConfig {
                    seed: config.forest.seed ^ (u64::from(n_bit) << 32),
                    ..config.forest
                };
                BitModel::Forest(RandomForest::fit(&dataset, &indices, &forest_config))
            })
            .collect();
        Self {
            width,
            out_bits,
            models,
        }
    }

    /// Adder operand width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of predicted output bit positions (`width + 1`).
    #[must_use]
    pub fn out_bits(&self) -> u32 {
        self.out_bits
    }

    /// Number of bit positions that required a trained forest (vs constant
    /// prediction).
    #[must_use]
    pub fn trained_bits(&self) -> usize {
        self.models
            .iter()
            .filter(|m| matches!(m, BitModel::Forest(_)))
            .count()
    }

    /// Predicts the timing-class vector (bit `n` set = predicted
    /// timing-erroneous) for one cycle.
    #[must_use]
    pub fn predict_flips(&self, cycle: &CyclePair) -> u64 {
        let base = base_features(self.width, cycle.a, cycle.b, cycle.a_prev, cycle.b_prev);
        let mut flips = 0u64;
        for n in 0..self.out_bits {
            let erroneous = match &self.models[n as usize] {
                BitModel::Constant(c) => *c,
                BitModel::Forest(forest) => {
                    let features = bit_features(
                        &base,
                        (cycle.gold_prev >> n) & 1 == 1,
                        (cycle.gold >> n) & 1 == 1,
                    );
                    forest.predict(&pack(&features))
                }
            };
            if erroneous {
                flips |= 1 << n;
            }
        }
        flips
    }

    /// Deduces the predicted overclocked output: the golden output with the
    /// predicted flips applied.
    #[must_use]
    pub fn predict_silver(&self, cycle: &CyclePair) -> u64 {
        cycle.gold ^ self.predict_flips(cycle)
    }

    /// Serializes the whole per-bit model as plain text: a header plus one
    /// `bit <n> constant <0|1>` line or `bit <n> forest` + forest block per
    /// output position.
    ///
    /// # Examples
    ///
    /// ```
    /// use isa_learn::{CyclePair, PredictorConfig, TimingErrorPredictor};
    ///
    /// # fn main() -> Result<(), isa_learn::serialize::ParseModelError> {
    /// let raw: Vec<(u64, u64, u64, u64)> = (0..50).map(|i| (i, i, 2 * i, 0)).collect();
    /// let cycles = CyclePair::from_stream(&raw);
    /// let model = TimingErrorPredictor::train(&cycles, 8, &PredictorConfig::default());
    /// let text = model.to_text();
    /// let reloaded = TimingErrorPredictor::from_text(&text)?;
    /// assert_eq!(reloaded.predict_flips(&cycles[3]), model.predict_flips(&cycles[3]));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "timing-error-predictor width={} out_bits={}\n",
            self.width, self.out_bits
        );
        for (n, model) in self.models.iter().enumerate() {
            match model {
                BitModel::Constant(c) => {
                    let _ = writeln!(out, "bit {n} constant {}", u8::from(*c));
                }
                BitModel::Forest(forest) => {
                    let _ = writeln!(out, "bit {n} forest");
                    out.push_str(&forest.to_text());
                }
            }
        }
        out
    }

    /// Parses a model serialized by [`Self::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::serialize::ParseModelError`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, crate::serialize::ParseModelError> {
        use crate::serialize::ParseModelError;
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .peekable();
        let (line_no, header) = lines
            .next()
            .ok_or_else(|| ParseModelError::new(0, "empty model"))?;
        let herr = |msg: &str| ParseModelError::new(line_no + 1, msg.to_owned());
        let rest = header
            .strip_prefix("timing-error-predictor width=")
            .ok_or_else(|| herr("bad model header"))?;
        let (width_s, out_s) = rest
            .split_once(" out_bits=")
            .ok_or_else(|| herr("missing out_bits"))?;
        let width: u32 = width_s.parse().map_err(|_| herr("bad width"))?;
        let out_bits: u32 = out_s.trim().parse().map_err(|_| herr("bad out_bits"))?;
        if width == 0 || width > 63 || out_bits != width + 1 {
            return Err(herr("inconsistent width/out_bits"));
        }
        let mut models = Vec::with_capacity(out_bits as usize);
        for n in 0..out_bits {
            let (bn, line) = lines
                .next()
                .ok_or_else(|| ParseModelError::new(0, format!("missing bit {n}")))?;
            let berr = |msg: &str| ParseModelError::new(bn + 1, msg.to_owned());
            let mut parts = line.split_whitespace();
            if parts.next() != Some("bit") {
                return Err(berr("expected 'bit'"));
            }
            let index: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| berr("bad bit index"))?;
            if index != n {
                return Err(berr("bit indices out of order"));
            }
            match parts.next() {
                Some("constant") => {
                    let v: u8 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| berr("bad constant value"))?;
                    models.push(BitModel::Constant(v != 0));
                }
                Some("forest") => {
                    models.push(BitModel::Forest(RandomForest::from_lines(&mut lines)?));
                }
                _ => return Err(berr("expected 'constant' or 'forest'")),
            }
        }
        Ok(Self {
            width,
            out_bits,
            models,
        })
    }

    /// Aggregated feature importance across all trained bit models,
    /// grouped by the paper's feature families.
    #[must_use]
    pub fn importance_summary(&self) -> ImportanceSummary {
        let w = self.width as usize;
        let mut summary = ImportanceSummary::default();
        let mut trained = 0usize;
        for model in &self.models {
            let BitModel::Forest(forest) = model else {
                continue;
            };
            trained += 1;
            let imp = forest.feature_importances();
            summary.current_inputs += imp[..2 * w].iter().sum::<f64>();
            summary.previous_inputs += imp[2 * w..4 * w].iter().sum::<f64>();
            summary.previous_gold_bit += imp[4 * w];
            summary.current_gold_bit += imp[4 * w + 1];
        }
        if trained > 0 {
            let n = trained as f64;
            summary.current_inputs /= n;
            summary.previous_inputs /= n;
            summary.previous_gold_bit /= n;
            summary.current_gold_bit /= n;
        }
        summary
    }
}

/// Feature importance grouped by the paper's feature families
/// (`{x[t], x[t-1], yRTL_n[t-1], yRTL_n[t]}`), averaged over the trained
/// bit models. Sums to ~1 when any bit trained a forest.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImportanceSummary {
    /// Share attributed to the current input vector `x[t]`.
    pub current_inputs: f64,
    /// Share attributed to the previous input vector `x[t-1]`.
    pub previous_inputs: f64,
    /// Share attributed to the bit's previous golden value `yRTL_n[t-1]`.
    pub previous_gold_bit: f64,
    /// Share attributed to the bit's current golden value `yRTL_n[t]`.
    pub current_gold_bit: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic overclocked adder: bit 8 flips whenever a short carry
    /// pattern is present AND the previous cycle had different operands
    /// (path freshly sensitized). Occurs on ~6% of cycles so that a
    /// constant-false predictor cannot reach the accuracy bar.
    fn synthetic_stream(n: usize, width: u32) -> Vec<CyclePair> {
        let mask = (1u64 << width) - 1;
        let mut seed = 0xACE5u64;
        let mut raw = Vec::with_capacity(n);
        let mut prev_inputs = (0u64, 0u64);
        for _ in 0..n {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let a = seed & mask;
            let b = (seed >> 17) & mask;
            let gold = (a + b) & ((1 << (width + 1)) - 1);
            let chain_crosses = (a & 0x7) == 0x7 && (b & 1) == 1;
            let fresh = prev_inputs != (a, b);
            let flips = if chain_crosses && fresh { 1 << 8 } else { 0 };
            raw.push((a, b, gold, flips));
            prev_inputs = (a, b);
        }
        CyclePair::from_stream(&raw)
    }

    #[test]
    fn from_stream_threads_previous_cycle() {
        let cycles = CyclePair::from_stream(&[(1, 2, 3, 0), (4, 5, 9, 1)]);
        assert_eq!(cycles[0].a_prev, 0);
        assert_eq!(cycles[1].a_prev, 1);
        assert_eq!(cycles[1].b_prev, 2);
        assert_eq!(cycles[1].gold_prev, 3);
    }

    #[test]
    fn error_free_stream_trains_constant_models() {
        let raw: Vec<(u64, u64, u64, u64)> = (0..200).map(|i| (i, i + 1, 2 * i + 1, 0)).collect();
        let cycles = CyclePair::from_stream(&raw);
        let predictor = TimingErrorPredictor::train(&cycles, 16, &PredictorConfig::default());
        assert_eq!(predictor.trained_bits(), 0);
        for c in &cycles {
            assert_eq!(predictor.predict_flips(c), 0);
            assert_eq!(predictor.predict_silver(c), c.gold);
        }
    }

    #[test]
    fn learns_pattern_dependent_bit_errors() {
        use crate::forest::{FeatureSubsample, ForestConfig};
        let cycles = synthetic_stream(4000, 16);
        let (train, test) = cycles.split_at(3000);
        // Examine all features per split: the unit-scale signal is a sparse
        // conjunction the sqrt-subsample needs far more trees to find.
        let config = PredictorConfig {
            forest: ForestConfig {
                features: FeatureSubsample::All,
                ..ForestConfig::default()
            },
        };
        let predictor = TimingErrorPredictor::train(train, 16, &config);
        assert_eq!(predictor.trained_bits(), 1, "only bit 8 misbehaves");
        let mut correct = 0usize;
        let mut errors_seen = 0usize;
        for c in test {
            let predicted = predictor.predict_flips(c);
            if predicted == c.flips {
                correct += 1;
            }
            if c.flips != 0 {
                errors_seen += 1;
            }
        }
        assert!(errors_seen > 0, "test set must contain errors");
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.97, "cycle-level accuracy {acc}");
    }

    #[test]
    fn predicted_silver_applies_flips_to_gold() {
        let cycles = synthetic_stream(2000, 16);
        let predictor = TimingErrorPredictor::train(&cycles, 16, &PredictorConfig::default());
        for c in cycles.iter().take(50) {
            assert_eq!(
                predictor.predict_silver(c),
                c.gold ^ predictor.predict_flips(c)
            );
        }
    }

    #[test]
    fn out_bits_is_width_plus_one() {
        let cycles = synthetic_stream(100, 16);
        let predictor = TimingErrorPredictor::train(&cycles, 16, &PredictorConfig::default());
        assert_eq!(predictor.out_bits(), 17);
        assert_eq!(predictor.width(), 16);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_training_panics() {
        let _ = TimingErrorPredictor::train(&[], 16, &PredictorConfig::default());
    }
}

#[cfg(test)]
mod importance_tests {
    use super::*;

    #[test]
    fn importance_concentrates_on_informative_features() {
        // Errors depend only on current input bits (a0..a2, b0): the
        // current-inputs family must dominate the summary.
        let mask = 0xFFFFu64;
        let mut seed = 0xFACEu64;
        let mut raw = Vec::new();
        for _ in 0..3000 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let a = seed & mask;
            let b = (seed >> 17) & mask;
            let gold = (a + b) & 0x1FFFF;
            let flips = if (a & 0x7) == 0x7 && (b & 1) == 1 {
                1 << 8
            } else {
                0
            };
            raw.push((a, b, gold, flips));
        }
        let cycles = CyclePair::from_stream(&raw);
        let model = TimingErrorPredictor::train(&cycles, 16, &PredictorConfig::default());
        let summary = model.importance_summary();
        let total = summary.current_inputs
            + summary.previous_inputs
            + summary.previous_gold_bit
            + summary.current_gold_bit;
        assert!((total - 1.0).abs() < 1e-6, "normalized total {total}");
        assert!(
            summary.current_inputs > 0.5,
            "current inputs must dominate: {summary:?}"
        );
    }

    #[test]
    fn error_free_model_has_empty_summary() {
        let raw: Vec<(u64, u64, u64, u64)> = (0..100).map(|i| (i, i, 2 * i, 0)).collect();
        let cycles = CyclePair::from_stream(&raw);
        let model = TimingErrorPredictor::train(&cycles, 8, &PredictorConfig::default());
        let s = model.importance_summary();
        assert_eq!(s.current_inputs, 0.0);
        assert_eq!(s.previous_inputs, 0.0);
    }
}
