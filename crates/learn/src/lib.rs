//! # isa-learn
//!
//! From-scratch supervised learning for the paper's bit-level timing-error
//! prediction model (Section III): bit-packed binary-feature datasets, CART
//! decision trees (Gini), bagged random forests with feature subsampling
//! (the scikit-learn RFC substitute), and the per-output-bit
//! [`TimingErrorPredictor`] that learns the mapping from
//! `{x[t], x[t-1], yRTL_n[t-1], yRTL_n[t]}` to each bit's timing class and
//! deduces predicted overclocked outputs.
//!
//! # Example
//!
//! ```
//! use isa_learn::{CyclePair, PredictorConfig, TimingErrorPredictor};
//!
//! // Stream of (a, b, gold, real-flip-mask) cycles; here error-free.
//! let raw: Vec<(u64, u64, u64, u64)> = (0..50).map(|i| (i, i, 2 * i, 0)).collect();
//! let cycles = CyclePair::from_stream(&raw);
//! let model = TimingErrorPredictor::train(&cycles, 8, &PredictorConfig::default());
//! assert_eq!(model.predict_flips(&cycles[10]), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod eval;
pub mod forest;
pub mod predictor;
pub mod serialize;
pub mod tree;

pub use dataset::Dataset;
pub use eval::ConfusionMatrix;
pub use forest::{FeatureSubsample, ForestConfig, RandomForest};
pub use predictor::{CyclePair, ImportanceSummary, PredictorConfig, TimingErrorPredictor};
pub use tree::{DecisionTree, TreeConfig};
