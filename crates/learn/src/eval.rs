//! Binary-classification evaluation: confusion matrices and derived rates.

/// A 2x2 confusion matrix for binary classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub true_positives: u64,
    /// Predicted positive, actually negative.
    pub false_positives: u64,
    /// Predicted negative, actually negative.
    pub true_negatives: u64,
    /// Predicted negative, actually positive.
    pub false_negatives: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (predicted, actual) observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction of correct predictions (0 when empty).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// Precision: TP / (TP + FP), 1.0 when nothing was predicted positive.
    #[must_use]
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 1.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall: TP / (TP + FN), 1.0 when there were no positives.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 1.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        // 3 TP, 1 FP, 5 TN, 1 FN
        for _ in 0..3 {
            m.record(true, true);
        }
        m.record(true, false);
        for _ in 0..5 {
            m.record(false, false);
        }
        m.record(false, true);
        m
    }

    #[test]
    fn counts_are_tracked() {
        let m = sample_matrix();
        assert_eq!(m.true_positives, 3);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.true_negatives, 5);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.total(), 10);
    }

    #[test]
    fn derived_rates() {
        let m = sample_matrix();
        assert!((m.accuracy() - 0.8).abs() < 1e-12);
        assert!((m.precision() - 0.75).abs() < 1e-12);
        assert!((m.recall() - 0.75).abs() < 1e-12);
        assert!((m.f1() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = ConfusionMatrix::new();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);

        let mut all_negative = ConfusionMatrix::new();
        all_negative.record(false, false);
        assert_eq!(all_negative.accuracy(), 1.0);
        assert_eq!(all_negative.f1(), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample_matrix();
        let b = sample_matrix();
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert_eq!(a.true_positives, 6);
    }
}
