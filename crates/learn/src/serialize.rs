//! Plain-text model persistence.
//!
//! A trained [`crate::TimingErrorPredictor`] is a per-(design, clock)
//! artifact the paper's flow would train offline and deploy online; this
//! module defines the shared error type for the line-oriented text format
//! implemented by [`crate::DecisionTree::to_text`],
//! [`crate::RandomForest::to_text`] and
//! [`crate::TimingErrorPredictor::to_text`]. The format is
//! human-inspectable and dependency-free (a deliberate choice to avoid a
//! serde dependency).

use std::error::Error;
use std::fmt;

/// Error parsing a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    line: usize,
    message: String,
}

impl ParseModelError {
    /// Creates an error at a 1-based line number.
    #[must_use]
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending input.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseModelError {}
