//! Random Forest classification (bagging + feature subsampling +
//! majority vote).
//!
//! "RFC alleviates overfitting issue by developing more than one decision
//! tree and use their average result as final prediction" — Section III.A
//! of the paper.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};

/// How many features each split examines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureSubsample {
    /// `sqrt(F)` features per split — the scikit-learn classification
    /// default.
    #[default]
    Sqrt,
    /// All features at every split (single-tree CART behaviour).
    All,
    /// A fixed number of features per split.
    Fixed(usize),
}

impl FeatureSubsample {
    /// Resolves to a concrete per-split candidate count for `num_features`.
    #[must_use]
    pub fn resolve(self, num_features: usize) -> Option<usize> {
        match self {
            FeatureSubsample::Sqrt => Some(((num_features as f64).sqrt().ceil() as usize).max(1)),
            FeatureSubsample::All => None,
            FeatureSubsample::Fixed(k) => Some(k.max(1)),
        }
    }
}

/// Forest training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits (its `feature_subsample` field is overridden
    /// by [`Self::features`]).
    pub tree: TreeConfig,
    /// Per-split feature subsampling policy.
    pub features: FeatureSubsample,
    /// Bag the training set per tree: each tree trains on a random
    /// ~63.2% subsample drawn **without replacement** — the expected
    /// distinct-sample fraction of a classic bootstrap bag (`1 - 1/e`).
    /// Duplicate-free bags are what let tree growth count node membership
    /// with bitmask popcounts instead of per-index scans (the same
    /// bit-sliced idea as the 64-lane simulator).
    pub bootstrap: bool,
    /// RNG seed controlling bagging and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 10,
            tree: TreeConfig::default(),
            features: FeatureSubsample::default(),
            bootstrap: true,
            seed: 0x5EED_F07E,
        }
    }
}

/// A trained random forest binary classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits a forest on the given sample indices.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or the config requests zero trees.
    #[must_use]
    pub fn fit(dataset: &Dataset, indices: &[usize], config: &ForestConfig) -> Self {
        assert!(!indices.is_empty(), "cannot fit a forest on zero samples");
        assert!(config.n_trees > 0, "forest needs at least one tree");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tree_config = TreeConfig {
            feature_subsample: config.features.resolve(dataset.num_features()),
            ..config.tree
        };
        let trees = (0..config.n_trees)
            .map(|_| {
                let bag: Vec<usize> = if config.bootstrap {
                    let mut bag = indices.to_vec();
                    bag.shuffle(&mut rng);
                    let keep = ((indices.len() as f64 * 0.632).ceil() as usize).max(1);
                    bag.truncate(keep);
                    bag
                } else {
                    indices.to_vec()
                };
                DecisionTree::fit(dataset, &bag, &tree_config, &mut rng)
            })
            .collect();
        Self { trees }
    }

    /// Mean positive-class probability across trees.
    #[must_use]
    pub fn predict_prob(&self, sample: &[u64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_prob(sample)).sum();
        sum / self.trees.len() as f64
    }

    /// Majority-vote classification.
    #[must_use]
    pub fn predict(&self, sample: &[u64]) -> bool {
        let votes = self.trees.iter().filter(|t| t.predict(sample)).count();
        2 * votes > self.trees.len()
    }

    /// Number of trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Always false: a fitted forest has at least one tree.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Total node count over all trees (model-size proxy).
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(DecisionTree::node_count).sum()
    }

    /// Serializes the forest: a `forest trees=<N>` header followed by each
    /// tree's text block.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!("forest trees={}\n", self.trees.len());
        for tree in &self.trees {
            out.push_str(&tree.to_text());
        }
        out
    }

    /// Parses a forest serialized by [`Self::to_text`] from a line
    /// iterator.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::serialize::ParseModelError`] on malformed input.
    pub fn from_lines<'a>(
        lines: &mut std::iter::Peekable<impl Iterator<Item = (usize, &'a str)>>,
    ) -> Result<Self, crate::serialize::ParseModelError> {
        use crate::serialize::ParseModelError;
        let (line_no, header) = lines
            .next()
            .ok_or_else(|| ParseModelError::new(0, "missing forest header"))?;
        let n: usize = header
            .strip_prefix("forest trees=")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| ParseModelError::new(line_no + 1, "expected 'forest trees=N'"))?;
        if n == 0 {
            return Err(ParseModelError::new(line_no + 1, "forest needs trees"));
        }
        let trees = (0..n)
            .map(|_| DecisionTree::from_lines(lines))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { trees })
    }

    /// Mean-decrease-in-impurity feature importances averaged over trees,
    /// normalized to sum to 1 (all zeros when no tree ever split).
    #[must_use]
    pub fn feature_importances(&self) -> Vec<f64> {
        let n_features = self.trees.first().map_or(0, DecisionTree::num_features);
        let mut total = vec![0.0f64; n_features];
        for tree in &self.trees {
            for (slot, &v) in total.iter_mut().zip(tree.feature_importances()) {
                *slot += v;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for v in &mut total {
                *v /= sum;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_dataset(n: usize, noise_every: usize) -> Dataset {
        // Label = f3 AND f7, with some label noise.
        let mut d = Dataset::new(16);
        let mut state = 5u64;
        for i in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            let features: Vec<bool> = (0..16).map(|b| (state >> b) & 1 == 1).collect();
            let mut label = features[3] && features[7];
            if noise_every > 0 && i % noise_every == 0 {
                label = !label;
            }
            d.push(&features, label);
        }
        d
    }

    fn pack(features: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; features.len().div_ceil(64)];
        for (i, &f) in features.iter().enumerate() {
            if f {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    #[test]
    fn forest_learns_conjunction_under_noise() {
        let d = noisy_dataset(1500, 20);
        let idx: Vec<usize> = (0..d.len()).collect();
        let forest = RandomForest::fit(&d, &idx, &ForestConfig::default());
        let mut f = vec![false; 16];
        f[3] = true;
        f[7] = true;
        assert!(forest.predict(&pack(&f)));
        f[7] = false;
        assert!(!forest.predict(&pack(&f)));
    }

    #[test]
    fn forest_probability_is_mean_of_trees() {
        let d = noisy_dataset(400, 0);
        let idx: Vec<usize> = (0..d.len()).collect();
        let forest = RandomForest::fit(&d, &idx, &ForestConfig::default());
        let sample = pack(&[true; 16]);
        let mean: f64 = forest
            .trees
            .iter()
            .map(|t| t.predict_prob(&sample))
            .sum::<f64>()
            / forest.len() as f64;
        assert!((forest.predict_prob(&sample) - mean).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = noisy_dataset(300, 10);
        let idx: Vec<usize> = (0..d.len()).collect();
        let f1 = RandomForest::fit(&d, &idx, &ForestConfig::default());
        let f2 = RandomForest::fit(&d, &idx, &ForestConfig::default());
        assert_eq!(f1, f2);
    }

    #[test]
    fn different_seeds_build_different_forests() {
        let d = noisy_dataset(300, 10);
        let idx: Vec<usize> = (0..d.len()).collect();
        let f1 = RandomForest::fit(&d, &idx, &ForestConfig::default());
        let f2 = RandomForest::fit(
            &d,
            &idx,
            &ForestConfig {
                seed: 999,
                ..ForestConfig::default()
            },
        );
        assert_ne!(f1, f2);
    }

    #[test]
    fn forest_generalizes_better_than_its_overfit_trees() {
        // With label noise, the bagged majority should be at least as good
        // on held-out data as the average single tree.
        let d = noisy_dataset(2000, 7);
        let (train, test) = d.split_indices(0.7, 42);
        let forest = RandomForest::fit(&d, &train, &ForestConfig::default());
        let forest_acc = test
            .iter()
            .filter(|&&i| forest.predict(d.sample(i)) == d.label(i))
            .count() as f64
            / test.len() as f64;
        assert!(forest_acc > 0.8, "forest accuracy {forest_acc}");
    }

    #[test]
    fn single_tree_forest_works() {
        let d = noisy_dataset(200, 0);
        let idx: Vec<usize> = (0..d.len()).collect();
        let forest = RandomForest::fit(
            &d,
            &idx,
            &ForestConfig {
                n_trees: 1,
                bootstrap: false,
                ..ForestConfig::default()
            },
        );
        assert_eq!(forest.len(), 1);
        assert!(forest.total_nodes() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let d = noisy_dataset(10, 0);
        let idx: Vec<usize> = (0..d.len()).collect();
        let _ = RandomForest::fit(
            &d,
            &idx,
            &ForestConfig {
                n_trees: 0,
                ..ForestConfig::default()
            },
        );
    }
}
