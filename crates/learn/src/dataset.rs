//! Bit-packed binary-feature datasets.
//!
//! The paper's model uses purely binary features (`{x[t], x[t-1],
//! yRTL_n[t-1], yRTL_n[t]}`), so samples are stored as packed `u64` words:
//! compact, cache-friendly, and branch-free to test during tree descent.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A growable set of binary-feature samples with boolean labels.
///
/// # Examples
///
/// ```
/// use isa_learn::Dataset;
///
/// let mut d = Dataset::new(3);
/// d.push(&[true, false, true], true);
/// d.push(&[false, false, true], false);
/// assert_eq!(d.len(), 2);
/// assert!(d.feature(0, 0));
/// assert!(!d.feature(1, 0));
/// assert!(d.label(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    num_features: usize,
    words_per_sample: usize,
    data: Vec<u64>,
    labels: Vec<bool>,
    /// Column-major mirror: one bit-plane per feature over samples (bit
    /// `i % 64` of word `i / 64` is the feature in sample `i`), the layout
    /// that lets tree growth count split sides with bitmask popcounts.
    planes: Vec<Vec<u64>>,
    /// The labels as a bit-plane over samples.
    label_plane: Vec<u64>,
}

impl Dataset {
    /// Creates an empty dataset over `num_features` binary features.
    ///
    /// # Panics
    ///
    /// Panics if `num_features` is zero.
    #[must_use]
    pub fn new(num_features: usize) -> Self {
        assert!(num_features > 0, "datasets need at least one feature");
        Self {
            num_features,
            words_per_sample: num_features.div_ceil(64),
            data: Vec::new(),
            labels: Vec::new(),
            planes: vec![Vec::new(); num_features],
            label_plane: Vec::new(),
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if no sample was added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample.
    #[must_use]
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Adds one sample from a bool slice.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from [`Self::num_features`].
    pub fn push(&mut self, features: &[bool], label: bool) {
        assert_eq!(
            features.len(),
            self.num_features,
            "expected {} features, got {}",
            self.num_features,
            features.len()
        );
        let base = self.data.len();
        self.data
            .extend(std::iter::repeat_n(0, self.words_per_sample));
        let sample = self.labels.len();
        if sample.is_multiple_of(64) {
            for plane in &mut self.planes {
                plane.push(0);
            }
            self.label_plane.push(0);
        }
        let (word, bit) = (sample / 64, sample % 64);
        for (i, &f) in features.iter().enumerate() {
            if f {
                self.data[base + i / 64] |= 1u64 << (i % 64);
                self.planes[i][word] |= 1u64 << bit;
            }
        }
        if label {
            self.label_plane[word] |= 1u64 << bit;
        }
        self.labels.push(label);
    }

    /// Builds a dataset directly from column-major feature planes and a
    /// label plane over `len` samples — the zero-rebuild path for callers
    /// that already hold bit-planes (e.g. the per-bit predictor, whose 4w
    /// base-feature planes are shared by every output bit's dataset).
    ///
    /// Stray bits above `len` are masked off. The row-major mirror is not
    /// materialized, so [`Self::sample`] must not be called on a
    /// plane-built dataset (tree fitting and prediction never do).
    ///
    /// # Panics
    ///
    /// Panics if `planes` is empty, `len` is zero, or any plane (or the
    /// label plane) has the wrong word count.
    #[must_use]
    pub fn from_planes(mut planes: Vec<Vec<u64>>, mut label_plane: Vec<u64>, len: usize) -> Self {
        assert!(!planes.is_empty(), "datasets need at least one feature");
        assert!(len > 0, "datasets need at least one sample");
        let words = len.div_ceil(64);
        let tail_mask = if len.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (len % 64)) - 1
        };
        assert_eq!(label_plane.len(), words, "label plane has wrong length");
        label_plane[words - 1] &= tail_mask;
        for plane in &mut planes {
            assert_eq!(plane.len(), words, "feature plane has wrong length");
            plane[words - 1] &= tail_mask;
        }
        let labels: Vec<bool> = (0..len)
            .map(|i| (label_plane[i / 64] >> (i % 64)) & 1 == 1)
            .collect();
        let num_features = planes.len();
        Self {
            num_features,
            words_per_sample: num_features.div_ceil(64),
            data: Vec::new(),
            labels,
            planes,
            label_plane,
        }
    }

    /// The bit-plane of feature `f` over all samples (bit `i % 64` of word
    /// `i / 64` is the feature in sample `i`).
    #[must_use]
    pub fn feature_plane(&self, f: usize) -> &[u64] {
        &self.planes[f]
    }

    /// The labels as a bit-plane over all samples.
    #[must_use]
    pub fn label_plane(&self) -> &[u64] {
        &self.label_plane
    }

    /// The packed feature words of sample `i`.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[u64] {
        let base = i * self.words_per_sample;
        &self.data[base..base + self.words_per_sample]
    }

    /// Value of feature `f` in sample `i`.
    #[must_use]
    pub fn feature(&self, i: usize, f: usize) -> bool {
        debug_assert!(f < self.num_features);
        let word = self.data[i * self.words_per_sample + f / 64];
        (word >> (f % 64)) & 1 == 1
    }

    /// Label of sample `i`.
    #[must_use]
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// Number of positive labels.
    #[must_use]
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Splits sample indices into a shuffled (train, test) partition.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not within `(0, 1]`.
    #[must_use]
    pub fn split_indices(&self, train_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        assert!(
            train_fraction > 0.0 && train_fraction <= 1.0,
            "train fraction must be in (0, 1]"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let test = indices.split_off(cut.min(self.len()));
        (indices, test)
    }
}

/// Tests a feature inside a packed sample without unpacking.
#[must_use]
pub(crate) fn packed_feature(sample: &[u64], f: usize) -> bool {
    (sample[f / 64] >> (f % 64)) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrips_past_word_boundary() {
        let n = 130;
        let mut d = Dataset::new(n);
        let features: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        d.push(&features, true);
        for (i, &f) in features.iter().enumerate() {
            assert_eq!(d.feature(0, i), f, "feature {i}");
            assert_eq!(packed_feature(d.sample(0), i), f);
        }
    }

    #[test]
    fn labels_and_positives() {
        let mut d = Dataset::new(2);
        d.push(&[true, true], true);
        d.push(&[false, true], false);
        d.push(&[true, false], true);
        assert_eq!(d.positives(), 2);
        assert!(d.label(0) && !d.label(1));
    }

    #[test]
    fn split_partitions_all_indices() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push(&[i % 2 == 0], false);
        }
        let (train, test) = d.split_indices(0.7, 9);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        let mut d = Dataset::new(1);
        for _ in 0..50 {
            d.push(&[true], true);
        }
        assert_eq!(d.split_indices(0.5, 3), d.split_indices(0.5, 3));
        assert_ne!(d.split_indices(0.5, 3).0, d.split_indices(0.5, 4).0);
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn push_validates_width() {
        let mut d = Dataset::new(2);
        d.push(&[true], false);
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn zero_features_rejected() {
        let _ = Dataset::new(0);
    }
}
