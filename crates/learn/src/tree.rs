//! CART decision trees over binary features (Gini impurity).
//!
//! "DT considers the joint effects of different bit positions but could
//! incur overfitting problem" — the forest in [`crate::forest`] addresses
//! that; this module provides the underlying learner.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::dataset::{packed_feature, Dataset};
use crate::serialize::ParseModelError;

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: u32,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features examined per split; `None` examines all.
    pub feature_subsample: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 8,
            feature_subsample: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Node {
    Leaf {
        prob_true: f64,
    },
    Split {
        feature: u32,
        /// Child index when the feature is 0.
        low: u32,
        /// Child index when the feature is 1.
        high: u32,
    },
}

/// A trained binary-feature decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_features: usize,
    importances: Vec<f64>,
    root_size: usize,
}

/// Gini impurity of a (positives, total) split side.
fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fits a tree on the given sample indices of a dataset.
    ///
    /// Growth is bit-parallel over samples: node membership is a bitmask
    /// over the dataset, split sides are counted with popcounts against the
    /// dataset's column-major feature planes, and partitioning is two
    /// bitwise ANDs — the same SIMD-within-a-register idea the 64-lane
    /// gate-level simulator uses. Duplicate indices collapse into the
    /// membership mask (callers bag without replacement; see
    /// [`ForestConfig::bootstrap`](crate::ForestConfig)).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    #[must_use]
    pub fn fit(
        dataset: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let mut mask = vec![0u64; dataset.len().div_ceil(64)];
        for &i in indices {
            mask[i / 64] |= 1u64 << (i % 64);
        }
        let total: usize = mask.iter().map(|w| w.count_ones() as usize).sum();
        let mut tree = Self {
            nodes: Vec::new(),
            num_features: dataset.num_features(),
            importances: vec![0.0; dataset.num_features()],
            root_size: total,
        };
        tree.grow(dataset, &mask, total, 0, config, rng);
        tree
    }

    /// Recursively grows the subtree over the membership mask, returning
    /// its node id.
    fn grow(
        &mut self,
        dataset: &Dataset,
        mask: &[u64],
        total: usize,
        depth: u32,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> u32 {
        let labels = dataset.label_plane();
        let positives: usize = mask
            .iter()
            .zip(labels)
            .map(|(&m, &l)| (m & l).count_ones() as usize)
            .sum();
        let make_leaf = positives == 0
            || positives == total
            || depth >= config.max_depth
            || total < config.min_samples_split;
        if make_leaf {
            return self.push_leaf(positives as f64 / total as f64);
        }

        // Candidate features: all, or a random subset (random-forest style).
        let all: Vec<u32> = (0..dataset.num_features() as u32).collect();
        let candidates: Vec<u32> = match config.feature_subsample {
            None => all,
            Some(k) => {
                let mut shuffled = all;
                shuffled.shuffle(rng);
                shuffled.truncate(k.max(1));
                shuffled
            }
        };

        let parent_gini = gini(positives as f64, total as f64);
        let mut best: Option<(f64, u32)> = None;
        for &f in &candidates {
            let plane = dataset.feature_plane(f as usize);
            let mut high_total = 0usize;
            let mut high_pos = 0usize;
            for ((&m, &p), &l) in mask.iter().zip(plane).zip(labels) {
                let high = m & p;
                high_total += high.count_ones() as usize;
                high_pos += (high & l).count_ones() as usize;
            }
            let low_total = total - high_total;
            if high_total == 0 || low_total == 0 {
                continue; // useless split
            }
            let low_pos = positives - high_pos;
            let weighted = (low_total as f64 * gini(low_pos as f64, low_total as f64)
                + high_total as f64 * gini(high_pos as f64, high_total as f64))
                / total as f64;
            let gain = parent_gini - weighted;
            // Zero-gain (but non-degenerate) splits are accepted, like
            // scikit-learn's CART: they are what lets greedy trees descend
            // into XOR-style interactions, with the depth limit as the
            // overfitting guard.
            let better = match best {
                None => true,
                Some((best_gain, best_f)) => {
                    gain > best_gain + 1e-12 || (gain > best_gain - 1e-12 && f < best_f)
                }
            };
            if better {
                best = Some((gain, f));
            }
        }

        let Some((gain, feature)) = best else {
            return self.push_leaf(positives as f64 / total as f64);
        };
        // Mean-decrease-in-impurity importance, weighted by node size.
        self.importances[feature as usize] += gain.max(0.0) * total as f64 / self.root_size as f64;

        // Partition: two bitwise ANDs against the chosen feature's plane.
        let plane = dataset.feature_plane(feature as usize);
        let high_mask: Vec<u64> = mask.iter().zip(plane).map(|(&m, &p)| m & p).collect();
        let low_mask: Vec<u64> = mask.iter().zip(plane).map(|(&m, &p)| m & !p).collect();
        let high_total: usize = high_mask.iter().map(|w| w.count_ones() as usize).sum();
        let low_total = total - high_total;
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { prob_true: 0.0 }); // placeholder
        let low = self.grow(dataset, &low_mask, low_total, depth + 1, config, rng);
        let high = self.grow(dataset, &high_mask, high_total, depth + 1, config, rng);
        self.nodes[id as usize] = Node::Split { feature, low, high };
        id
    }

    fn push_leaf(&mut self, prob_true: f64) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { prob_true });
        id
    }

    /// Probability of the positive class for a packed feature sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the sample has too few words.
    #[must_use]
    pub fn predict_prob(&self, sample: &[u64]) -> f64 {
        let mut node = 0usize;
        loop {
            match self.nodes[node] {
                Node::Leaf { prob_true } => return prob_true,
                Node::Split { feature, low, high } => {
                    node = if packed_feature(sample, feature as usize) {
                        high as usize
                    } else {
                        low as usize
                    };
                }
            }
        }
    }

    /// Hard classification at threshold 0.5.
    #[must_use]
    pub fn predict(&self, sample: &[u64]) -> bool {
        self.predict_prob(sample) > 0.5
    }

    /// Number of nodes in the tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of features the tree was trained over.
    #[must_use]
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Mean-decrease-in-impurity feature importances (unnormalized; zero
    /// for features never split on).
    #[must_use]
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Serializes the tree as a line-oriented text block:
    /// `tree features=<F> nodes=<N>` followed by one `leaf <p>` or
    /// `split <feature> <low> <high>` line per node.
    ///
    /// Importances are not persisted (they are a training-time analysis).
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tree features={} nodes={}",
            self.num_features,
            self.nodes.len()
        );
        for node in &self.nodes {
            match *node {
                Node::Leaf { prob_true } => {
                    let _ = writeln!(out, "leaf {prob_true}");
                }
                Node::Split { feature, low, high } => {
                    let _ = writeln!(out, "split {feature} {low} {high}");
                }
            }
        }
        out
    }

    /// Parses a tree serialized by [`Self::to_text`] from a line iterator
    /// (consumes exactly the tree's lines).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseModelError`] on any malformed or truncated input.
    pub fn from_lines<'a>(
        lines: &mut std::iter::Peekable<impl Iterator<Item = (usize, &'a str)>>,
    ) -> Result<Self, ParseModelError> {
        let (line_no, header) = lines
            .next()
            .ok_or_else(|| ParseModelError::new(0, "missing tree header"))?;
        let err = |msg: &str| ParseModelError::new(line_no + 1, msg.to_owned());
        let rest = header
            .strip_prefix("tree features=")
            .ok_or_else(|| err("expected 'tree features=...'"))?;
        let (features_s, nodes_s) = rest
            .split_once(" nodes=")
            .ok_or_else(|| err("expected 'nodes=...'"))?;
        let num_features: usize = features_s.parse().map_err(|_| err("bad feature count"))?;
        let node_count: usize = nodes_s.trim().parse().map_err(|_| err("bad node count"))?;
        if node_count == 0 {
            return Err(err("trees need at least one node"));
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let (n, line) = lines
                .next()
                .ok_or_else(|| ParseModelError::new(line_no + 1, "truncated tree"))?;
            let lerr = |msg: &str| ParseModelError::new(n + 1, msg.to_owned());
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("leaf") => {
                    let p: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| lerr("bad leaf probability"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(lerr("leaf probability out of [0, 1]"));
                    }
                    nodes.push(Node::Leaf { prob_true: p });
                }
                Some("split") => {
                    let mut next_u32 = || -> Result<u32, ParseModelError> {
                        parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| lerr("bad split field"))
                    };
                    let feature = next_u32()?;
                    let low = next_u32()?;
                    let high = next_u32()?;
                    if feature as usize >= num_features {
                        return Err(lerr("split feature out of range"));
                    }
                    // Children must point strictly forward (the training
                    // order guarantees it); this also rules out cycles in
                    // hand-crafted inputs.
                    let own = nodes.len() as u32;
                    if low as usize >= node_count
                        || high as usize >= node_count
                        || low <= own
                        || high <= own
                    {
                        return Err(lerr("split child out of range"));
                    }
                    nodes.push(Node::Split { feature, low, high });
                }
                _ => return Err(lerr("expected 'leaf' or 'split'")),
            }
        }
        Ok(Self {
            nodes,
            num_features,
            importances: vec![0.0; num_features],
            root_size: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn pack(features: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; features.len().div_ceil(64)];
        for (i, &f) in features.iter().enumerate() {
            if f {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    #[test]
    fn learns_single_feature_rule() {
        let mut d = Dataset::new(4);
        for i in 0..200usize {
            let f2 = i % 2 == 0;
            d.push(&[i % 3 == 0, i % 5 == 0, f2, i % 7 == 0], f2);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let tree = DecisionTree::fit(&d, &idx, &TreeConfig::default(), &mut rng());
        assert!(tree.predict(&pack(&[false, false, true, false])));
        assert!(!tree.predict(&pack(&[true, true, false, true])));
        // A single split suffices: root + two leaves.
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn learns_xor_of_two_features() {
        let mut d = Dataset::new(2);
        for i in 0..400usize {
            let a = (i / 2) % 2 == 0;
            let b = i % 2 == 0;
            d.push(&[a, b], a ^ b);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let tree = DecisionTree::fit(&d, &idx, &TreeConfig::default(), &mut rng());
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(tree.predict(&pack(&[a, b])), a ^ b, "a={a} b={b}");
        }
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let mut d = Dataset::new(3);
        for _ in 0..50 {
            d.push(&[true, false, true], true);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let tree = DecisionTree::fit(&d, &idx, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.node_count(), 1);
        assert!(tree.predict(&pack(&[false, false, false])));
    }

    #[test]
    fn depth_limit_is_respected() {
        // Random labels force deep growth unless limited.
        let mut d = Dataset::new(16);
        let mut state = 1u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let features: Vec<bool> = (0..16).map(|b| (state >> b) & 1 == 1).collect();
            d.push(&features, (state >> 60) & 1 == 1);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &idx, &cfg, &mut rng());
        // Depth 2 means at most 1 + 2 + 4 = 7 nodes.
        assert!(tree.node_count() <= 7, "{} nodes", tree.node_count());
    }

    #[test]
    fn probability_reflects_class_mixture() {
        let mut d = Dataset::new(1);
        // Feature tells nothing; 75% positive.
        for i in 0..100 {
            d.push(&[false], i % 4 != 0);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let tree = DecisionTree::fit(&d, &idx, &TreeConfig::default(), &mut rng());
        let p = tree.predict_prob(&pack(&[false]));
        assert!((p - 0.75).abs() < 1e-9, "{p}");
    }

    #[test]
    fn feature_subsampling_still_learns_strong_signal() {
        let mut d = Dataset::new(32);
        let mut state = 99u64;
        for _ in 0..600 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(17);
            let features: Vec<bool> = (0..32).map(|b| (state >> b) & 1 == 1).collect();
            let label = features[20];
            d.push(&features, label);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let cfg = TreeConfig {
            feature_subsample: Some(6),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &idx, &cfg, &mut rng());
        // With depth available, even subsampled trees find the feature
        // eventually; check training accuracy instead of structure.
        let correct = (0..d.len())
            .filter(|&i| tree.predict(d.sample(i)) == d.label(i))
            .count();
        assert!(correct as f64 / d.len() as f64 > 0.9);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_fit_panics() {
        let d = Dataset::new(1);
        let _ = DecisionTree::fit(&d, &[], &TreeConfig::default(), &mut rng());
    }
}
