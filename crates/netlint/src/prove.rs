//! Stage: opt-in symbolic proofs (`prove.equiv`, `prove.sta`).
//!
//! These rules lift two sampled checks to full proofs by delegating to
//! [`isa_prove`]:
//!
//! - `prove.equiv` replaces the random-battery functional comparison as
//!   ground truth: the netlist's output functions are proven identical to
//!   the behavioural spec's on **all** `2^(2W)` operand pairs, and any
//!   refutation comes back with a concrete counterexample pair.
//! - `prove.sta` re-proves the symbolic settle-bound analysis' own
//!   soundness obligations on this design: the proven bound must not
//!   exceed the topological one (in the analysis' per-cell femtosecond
//!   quantisation, the same grid the simulators use), and the timed
//!   waveforms' endpoint functions must coincide with the netlist's
//!   functional semantics.
//!
//! Both are **off by default** ([`crate::LintOptions`]): one proof costs
//! more than every sampled stage combined, which is the wrong trade at
//! synthesis time but the right one for the offline `prove` sweep.

use isa_core::Design;
use isa_netlist::timing::DelayAnnotation;
use isa_netlist::{AdderNetlist, Netlist};
use isa_prove::{analyze_settle, check_equivalence, StaOptions};

use crate::diag::{Diagnostic, Locus, Rule};

/// Proves the netlist equivalent to `spec`'s behavioural model; a failed
/// proof yields one `prove.equiv` finding carrying the counterexample.
pub(crate) fn check_equiv(adder: &AdderNetlist, spec: &Design) -> Vec<Diagnostic> {
    if spec.width() != adder.width() {
        return vec![Diagnostic::new(
            Rule::ProveEquiv,
            Locus::Design,
            format!(
                "spec is {} bits wide, netlist is {}",
                spec.width(),
                adder.width()
            ),
        )];
    }
    let report = check_equivalence(spec, adder);
    if report.equivalent {
        return Vec::new();
    }
    let output = report.failing_output.unwrap_or(0);
    let (a, b) = report.counterexample.unwrap_or((0, 0));
    vec![Diagnostic::new(
        Rule::ProveEquiv,
        Locus::Output(output),
        format!(
            "netlist differs from the behavioural spec on output bit {output}: \
             counterexample a={a:#x}, b={b:#x} (proof over all {} input pairs)",
            format_pairs(report.width),
        ),
    )]
}

/// Re-proves the settle-bound analysis' soundness obligations on this
/// netlist/annotation pair.
pub(crate) fn check_sta(netlist: &Netlist, annotation: &DelayAnnotation) -> Vec<Diagnostic> {
    let sta = analyze_settle(netlist, annotation, &StaOptions::default());
    let mut out = Vec::new();
    if sta.proven_crit_fs > sta.topo_crit_fs {
        out.push(Diagnostic::new(
            Rule::ProveSta,
            Locus::Design,
            format!(
                "proven settle bound {} fs exceeds the topological bound {} fs",
                sta.proven_crit_fs, sta.topo_crit_fs
            ),
        ));
    }
    if sta.exact && !sta.functions_verified {
        out.push(Diagnostic::new(
            Rule::ProveSta,
            Locus::Design,
            "timed waveform endpoints diverge from the netlist's functional semantics",
        ));
    }
    out
}

/// `2^(2w)` rendered without computing it (it overflows u64 at w = 32).
fn format_pairs(width: u32) -> String {
    format!("2^{}", 2 * width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{lint_adder_proven, LintOptions};
    use crate::mutate::{apply_mutation, Mutation};
    use isa_core::{paper_isa_configs, IsaConfig};
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::{build_exact, builders, AdderTopology};

    fn proven_options() -> LintOptions {
        LintOptions {
            prove_equiv: true,
            prove_sta: true,
            ..LintOptions::default()
        }
    }

    fn nominal(adder: &AdderNetlist) -> DelayAnnotation {
        DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm())
    }

    #[test]
    fn clean_designs_prove_clean() {
        let cfg = IsaConfig::new(16, 4, 2, 1, 2).unwrap();
        let adder = builders::isa::build(&cfg, AdderTopology::Ripple).unwrap();
        let ann = nominal(&adder);
        let report = lint_adder_proven(&adder, &ann, &Design::Isa(cfg), &proven_options());
        assert!(!report.has_errors(), "{}", report.render());

        let exact = build_exact(16, AdderTopology::Sklansky);
        let ann = nominal(&exact);
        let report = lint_adder_proven(
            &exact,
            &ann,
            &Design::Exact { width: 16 },
            &proven_options(),
        );
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn equiv_fault_injection_is_caught_on_all_twelve_seed_designs() {
        // SwapPgKind keeps the graph perfectly well-formed and corrupts
        // only the computed function — precisely what a full equivalence
        // proof (unlike sampling) is guaranteed to catch, on every seed
        // design at its native 32 bits.
        let mut designs: Vec<(Design, AdderNetlist)> = paper_isa_configs()
            .into_iter()
            .map(|cfg| {
                let adder = builders::isa::build(&cfg, AdderTopology::Ripple).unwrap();
                (Design::Isa(cfg), adder)
            })
            .collect();
        designs.push((
            Design::Exact { width: 32 },
            build_exact(32, AdderTopology::Ripple),
        ));
        assert_eq!(designs.len(), 12);

        for (i, (design, adder)) in designs.iter().enumerate() {
            let ann = nominal(adder);
            let mutated = apply_mutation(adder, &ann, Mutation::SwapPgKind, 1000 + i as u64)
                .expect("every seed design has a propagate XOR to corrupt");
            let report = lint_adder_proven(
                &mutated.adder,
                &mutated.annotation,
                design,
                &proven_options(),
            );
            assert!(
                report.has_rule(Rule::ProveEquiv),
                "{design:?}: mutant not caught by the equivalence proof:\n{}",
                report.render()
            );
            // The counterexample lives in a prove.equiv message.
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.rule == Rule::ProveEquiv && d.message.contains("counterexample")),
                "{design:?}: missing counterexample"
            );
        }
    }

    #[test]
    fn proof_stages_are_off_by_default() {
        // Same mutant, default options: the functional sampler may or may
        // not catch it, but no prove.* rule is allowed to run.
        let adder = build_exact(16, AdderTopology::Ripple);
        let ann = nominal(&adder);
        let report = lint_adder_proven(
            &adder,
            &ann,
            &Design::Exact { width: 16 },
            &LintOptions::default(),
        );
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| matches!(d.rule, Rule::ProveEquiv | Rule::ProveSta)));
        assert!(!report.has_errors());
    }

    #[test]
    fn sta_reproof_passes_on_seed_topologies() {
        for topology in [
            AdderTopology::Ripple,
            AdderTopology::Sklansky,
            AdderTopology::CarrySelect(4),
        ] {
            let adder = build_exact(16, topology);
            let ann = nominal(&adder);
            let found = check_sta(adder.netlist(), &ann);
            assert!(found.is_empty(), "{topology:?}: {found:?}");
        }
    }
}
