//! The lint pipeline: pass orchestration, gating and the public entry
//! points.
//!
//! Passes run cheapest-and-most-fundamental first, and later passes are
//! *gated* on the earlier ones: replay and timing analysis of a graph
//! with structural errors would only drown the root cause in follow-on
//! noise (and the classifier audit could not even build its tables), so
//! each stage runs only when every prior stage reported no
//! Error-severity finding. The returned [`LintReport`] always contains
//! the findings of every stage that ran.

use std::time::Instant;

use isa_core::{Adder, Design};
use isa_netlist::classify::LaneClassifier;
use isa_netlist::tape::InstructionTape;
use isa_netlist::timing::DelayAnnotation;
use isa_netlist::{AdderNetlist, Netlist};

use crate::diag::{Diagnostic, LintReport, Locus, Rule, Severity};
use crate::level::Levelization;
use crate::{audit, prove, structural, tapecheck, timing, Splitmix};

/// Battery sizes and stage toggles for one lint run.
///
/// The defaults are what `DesignContext::try_build` uses: small enough
/// that linting stays a low single-digit percentage of synthesis time,
/// large enough that every battery covers hundreds of 64-lane vectors.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// 64-lane input batteries for the levelization replay proof.
    pub replay_batteries: usize,
    /// 64-lane batteries for the instruction-tape replay proof (each
    /// battery covers the scalar executor plus one full vector chunk).
    pub tape_batteries: usize,
    /// 64-lane batteries for the group-P/G semantic re-proof.
    pub audit_batteries: usize,
    /// 64-lane random batteries (plus fixed corners) for the functional
    /// comparison against the golden model.
    pub functional_batteries: usize,
    /// Whether to run the classifier conservatism audit at all.
    pub classifier_audit: bool,
    /// Whether to run the symbolic equivalence proof against the
    /// behavioural spec (`prove.equiv`). Off by default: a proof costs
    /// more than every sampled stage combined, so it belongs to the
    /// offline sweep, not the synthesis path. Requires the spec-carrying
    /// entry point [`lint_adder_proven`].
    pub prove_equiv: bool,
    /// Whether to re-prove the symbolic settle-bound analysis
    /// (`prove.sta`). Off by default, same budget reasoning.
    pub prove_sta: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        Self {
            replay_batteries: 1,
            tape_batteries: 1,
            audit_batteries: 1,
            functional_batteries: 1,
            classifier_audit: true,
            prove_equiv: false,
            prove_sta: false,
        }
    }
}

impl LintOptions {
    /// The deeper configuration the `netlint` sweep binary uses: more
    /// batteries everywhere (this is offline verification, not a
    /// synthesis-time budget).
    #[must_use]
    pub fn thorough() -> Self {
        Self {
            replay_batteries: 4,
            tape_batteries: 4,
            audit_batteries: 4,
            functional_batteries: 4,
            classifier_audit: true,
            prove_equiv: false,
            prove_sta: false,
        }
    }

    /// [`Self::thorough`] plus both symbolic proof stages — what the
    /// `prove` sweep binary runs.
    #[must_use]
    pub fn proven() -> Self {
        Self {
            prove_equiv: true,
            prove_sta: true,
            ..Self::thorough()
        }
    }
}

fn no_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().all(|d| d.severity != Severity::Error)
}

/// Lints a bare netlist: structural passes plus the verified
/// levelization. No timing, adder-convention or classifier stages (those
/// need an [`AdderNetlist`] and an annotation — use [`lint_adder`]).
#[must_use]
pub fn lint_netlist(netlist: &Netlist, options: &LintOptions) -> LintReport {
    let start = Instant::now();
    let mut diagnostics = structural::check_sans_loops(netlist);
    let levelization = run_levelization(netlist, options, &mut diagnostics);
    LintReport {
        design: netlist.name().to_string(),
        diagnostics,
        levelization,
        elapsed: start.elapsed(),
    }
}

/// Lints an adder design end to end, building the lane classifier itself
/// when the audit stage is reached.
///
/// `gold` is the behavioural golden model the netlist must agree with
/// (pass `None` to skip the functional stage — e.g. when no behavioural
/// reference exists for a foreign netlist).
#[must_use]
pub fn lint_adder(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    gold: Option<&dyn Adder>,
    options: &LintOptions,
) -> LintReport {
    lint_adder_inner(adder, annotation, None, gold, None, options)
}

/// Like [`lint_adder`], but carries the behavioural *spec* ([`Design`])
/// rather than just a golden model, enabling the opt-in symbolic proof
/// stages (`prove.equiv`, `prove.sta`) when the corresponding
/// [`LintOptions`] flags are set. The golden model for the sampled
/// functional stage is derived from the spec.
#[must_use]
pub fn lint_adder_proven(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    spec: &Design,
    options: &LintOptions,
) -> LintReport {
    let gold = spec.behavioural();
    lint_adder_inner(
        adder,
        annotation,
        None,
        Some(gold.as_ref()),
        Some(spec),
        options,
    )
}

/// Like [`lint_adder`], but audits a classifier the caller already built
/// (the engine passes its memoized one, keeping the classifier's own
/// construction time out of the lint budget).
#[must_use]
pub fn lint_adder_with_classifier(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    classifier: &LaneClassifier,
    gold: Option<&dyn Adder>,
    options: &LintOptions,
) -> LintReport {
    lint_adder_inner(adder, annotation, Some(classifier), gold, None, options)
}

fn lint_adder_inner(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    classifier: Option<&LaneClassifier>,
    gold: Option<&dyn Adder>,
    spec: Option<&Design>,
    options: &LintOptions,
) -> LintReport {
    let start = Instant::now();
    let netlist = adder.netlist();

    // Stage 1: structure (including the adder I/O convention).
    let mut diagnostics = structural::check_sans_loops(netlist);
    diagnostics.extend(structural::check_adder_io(netlist, adder.width()));
    let levelization = run_levelization(netlist, options, &mut diagnostics);
    let structurally_sound = no_errors(&diagnostics);

    // Stage 2: timing — only on a sound graph (STA on a cyclic or
    // misdriven netlist is meaningless).
    let mut annotation_clean = false;
    if structurally_sound {
        let found = timing::check_annotation(netlist, annotation);
        annotation_clean = found.is_empty();
        diagnostics.extend(found);
        if annotation_clean {
            diagnostics.extend(timing::check_timing_graph(netlist, annotation));
        }
    }

    // Stage 3: function — needs only a sound graph.
    if structurally_sound {
        if let Some(gold) = gold {
            check_functional(adder, gold, options.functional_batteries, &mut diagnostics);
        }
    }

    // Stage 4: classifier conservatism audit — needs everything above
    // (the settle-table recomputation trusts the delays and the graph).
    if options.classifier_audit && annotation_clean && no_errors(&diagnostics) {
        let built;
        let classifier = match classifier {
            Some(c) => c,
            None => {
                built = LaneClassifier::build(adder, annotation);
                &built
            }
        };
        diagnostics.extend(audit::check_classifier(
            adder,
            annotation,
            classifier,
            options.audit_batteries,
        ));
    }

    // Stage 5: symbolic proofs — opt-in. Equivalence needs only a sound
    // graph (it deliberately runs even when the sampled functional stage
    // already found a mismatch: the proof is the ground truth and carries
    // the counterexample); the settle re-proof additionally trusts the
    // delays.
    if structurally_sound {
        if let (true, Some(spec)) = (options.prove_equiv, spec) {
            diagnostics.extend(prove::check_equiv(adder, spec));
        }
        if options.prove_sta && annotation_clean {
            diagnostics.extend(prove::check_sta(netlist, annotation));
        }
    }

    LintReport {
        design: netlist.name().to_string(),
        diagnostics,
        levelization,
        elapsed: start.elapsed(),
    }
}

/// Builds and (on a sound graph) replay-verifies the levelization,
/// folding any findings into `diagnostics`.
///
/// A successful Kahn schedule is itself a proof of acyclicity, so the
/// Tarjan SCC pass runs only on failure, to name the cycle's members
/// rather than merely reporting that some cells are stuck.
fn run_levelization(
    netlist: &Netlist,
    options: &LintOptions,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<Levelization> {
    match Levelization::build(netlist) {
        Ok(lv) => {
            if no_errors(diagnostics) {
                diagnostics.extend(lv.verify(netlist, options.replay_batteries));
                // The tape compiler consumes this exact schedule; compile
                // it the way the engine does and re-prove the lowering
                // bit-identical to `evaluate_words` (rules tape.shape /
                // tape.replay).
                if no_errors(diagnostics) {
                    let tape = InstructionTape::compile_from_levels(netlist, lv.levels());
                    diagnostics.extend(tapecheck::verify_tape(
                        netlist,
                        &tape,
                        options.tape_batteries,
                    ));
                }
            }
            Some(lv)
        }
        Err(d) => {
            structural::check_loops(netlist, diagnostics);
            // Tarjan names the cycle with its member list; keep the bare
            // levelization failure only when it is the sole witness.
            if !diagnostics.iter().any(|x| x.rule == Rule::CombLoop) {
                diagnostics.push(d);
            }
            None
        }
    }
}

/// Compares the netlist against the behavioural golden model on fixed
/// corner vectors plus seeded random batteries (64 pairs per battery via
/// the bit-sliced path, which also exercises `add_batch` itself).
fn check_functional(
    adder: &AdderNetlist,
    gold: &dyn Adder,
    batteries: usize,
    diagnostics: &mut Vec<Diagnostic>,
) {
    if gold.width() != adder.width() {
        diagnostics.push(Diagnostic::new(
            Rule::FunctionalMismatch,
            Locus::Design,
            format!(
                "golden model is {} bits wide, netlist is {}",
                gold.width(),
                adder.width()
            ),
        ));
        return;
    }
    let mask = if adder.width() == 63 {
        u64::MAX >> 1
    } else {
        (1u64 << adder.width()) - 1
    };
    let mut pairs: Vec<(u64, u64)> = vec![
        (0, 0),
        (mask, mask),
        (mask, 1),
        (1, mask),
        (0, mask),
        (mask >> 1, (mask >> 1) + 1),
    ];
    let mut rng = Splitmix::new(0x46_554E_4354_494F ^ u64::from(adder.width()) << 48);
    for _ in 0..batteries {
        for _ in 0..64 {
            pairs.push((rng.next_u64() & mask, rng.next_u64() & mask));
        }
    }
    let got = adder.add_batch(&pairs);
    // The golden model side also goes through add_batch: behavioural
    // models with a bit-sliced evaluation (SpeculativeAdder) advance 64
    // pairs per pass there, which keeps this stage off the synthesis
    // critical path.
    let want_all = gold.add_batch(&pairs);
    let mut reported = 0usize;
    for ((&(a, b), &sum), &want) in pairs.iter().zip(&got).zip(&want_all) {
        if sum != want {
            diagnostics.push(Diagnostic::new(
                Rule::FunctionalMismatch,
                Locus::Design,
                format!("add({a:#x}, {b:#x}) = {sum:#x}, golden model says {want:#x}"),
            ));
            reported += 1;
            if reported >= 3 {
                break; // three witnesses are enough to act on
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::{apply_mutation, ALL_MUTATIONS};
    use isa_core::ExactAdder;
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::{build_exact, AdderTopology};

    fn nominal(adder: &AdderNetlist) -> DelayAnnotation {
        DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm())
    }

    #[test]
    fn exact_designs_lint_clean() {
        for topology in [
            AdderTopology::Ripple,
            AdderTopology::KoggeStone,
            AdderTopology::Sklansky,
        ] {
            let adder = build_exact(16, topology);
            let ann = nominal(&adder);
            let gold = ExactAdder::new(16);
            let report = lint_adder(&adder, &ann, Some(&gold), &LintOptions::default());
            assert!(!report.has_errors(), "{topology:?}:\n{}", report.render());
            assert!(report.levelization.is_some());
        }
    }

    #[test]
    fn every_mutation_is_caught_with_its_rule() {
        let adder = build_exact(16, AdderTopology::KoggeStone);
        let ann = nominal(&adder);
        let gold = ExactAdder::new(16);
        for (i, &m) in ALL_MUTATIONS.iter().enumerate() {
            let mutated = apply_mutation(&adder, &ann, m, 41 + i as u64).unwrap();
            let report = lint_adder(
                &mutated.adder,
                &mutated.annotation,
                Some(&gold),
                &LintOptions::default(),
            );
            assert!(
                report.has_rule(mutated.expected),
                "{m:?} ({}) expected {} among:\n{}",
                mutated.description,
                mutated.expected.id(),
                report.render()
            );
            assert!(report.has_errors(), "{m:?} must be Error severity");
        }
    }

    #[test]
    fn memoized_classifier_path_matches_self_built() {
        let adder = build_exact(12, AdderTopology::Ripple);
        let ann = nominal(&adder);
        let cls = LaneClassifier::build(&adder, &ann);
        let gold = ExactAdder::new(12);
        let own = lint_adder(&adder, &ann, Some(&gold), &LintOptions::default());
        let given =
            lint_adder_with_classifier(&adder, &ann, &cls, Some(&gold), &LintOptions::default());
        assert_eq!(own.diagnostics, given.diagnostics);
        assert!(!given.has_errors());
    }

    #[test]
    fn wrong_gold_width_is_a_functional_error() {
        let adder = build_exact(8, AdderTopology::Ripple);
        let ann = nominal(&adder);
        let gold = ExactAdder::new(16);
        let report = lint_adder(&adder, &ann, Some(&gold), &LintOptions::default());
        assert!(report.has_rule(Rule::FunctionalMismatch));
    }

    #[test]
    fn bare_netlist_lint_works_without_timing() {
        let adder = build_exact(8, AdderTopology::KoggeStone);
        let report = lint_netlist(adder.netlist(), &LintOptions::default());
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(report.design, adder.netlist().name());
    }
}
