//! Structural well-formedness passes over the gate graph.
//!
//! Everything here works on the netlist alone (no timing): combinational
//! loops via iterative Tarjan SCC, single-driver / floating-net / driver
//! bookkeeping, the topological creation-order contract `evaluate_words`
//! relies on, dead-cell cone-of-influence analysis from the primary
//! outputs, pin arities, output naming and the adder I/O convention.
//!
//! Netlists built through [`NetlistBuilder`](isa_netlist::NetlistBuilder)
//! cannot violate these invariants (malformed graphs are unrepresentable);
//! the passes exist for foreign netlists ingested through
//! [`Netlist::from_raw_parts`](isa_netlist::Netlist::from_raw_parts) — and
//! for the fault-injection battery that proves each rule actually fires.

use std::collections::HashMap;

use isa_netlist::{CellId, NetDriver, NetId, Netlist};

use crate::diag::{Diagnostic, Locus, Rule};

/// Runs every structural pass and returns the findings in rule order.
#[must_use]
pub fn check(netlist: &Netlist) -> Vec<Diagnostic> {
    let mut out = check_sans_loops(netlist);
    check_loops(netlist, &mut out);
    out
}

/// Every structural pass except combinational-loop detection.
///
/// The lint pipeline proves acyclicity as a by-product of building the
/// level schedule (Kahn's algorithm), so on the happy path the Tarjan
/// pass is pure overhead; it runs `check_loops` only when levelization
/// fails, to turn "some cells are stuck" into named SCC membership.
#[must_use]
pub fn check_sans_loops(netlist: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_outputs(netlist, &mut out);
    check_arity(netlist, &mut out);
    check_drivers(netlist, &mut out);
    check_topo_order(netlist, &mut out);
    check_cone_of_influence(netlist, &mut out);
    check_output_names(netlist, &mut out);
    out
}

/// Adder I/O convention: `2 * width` primary inputs (`a` then `b`, LSB
/// first) and `width + 1` primary outputs (`sum` plus carry-out).
#[must_use]
pub fn check_adder_io(netlist: &Netlist, width: u32) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if width == 0 || width > 63 {
        out.push(Diagnostic::new(
            Rule::AdderIo,
            Locus::Design,
            format!("adder width {width} outside the supported 1..=63 range"),
        ));
    }
    let want_in = 2 * width as usize;
    if netlist.inputs().len() != want_in {
        out.push(Diagnostic::new(
            Rule::AdderIo,
            Locus::Design,
            format!(
                "adder of width {width} must have {want_in} primary inputs, found {}",
                netlist.inputs().len()
            ),
        ));
    }
    let want_out = width as usize + 1;
    if netlist.outputs().len() != want_out {
        out.push(Diagnostic::new(
            Rule::AdderIo,
            Locus::Design,
            format!(
                "adder of width {width} must have {want_out} primary outputs, found {}",
                netlist.outputs().len()
            ),
        ));
    }
    out
}

fn check_outputs(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    if netlist.outputs().is_empty() {
        out.push(Diagnostic::new(
            Rule::NoOutputs,
            Locus::Design,
            "netlist declares no primary outputs",
        ));
    }
}

fn check_arity(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    for (i, cell) in netlist.cells().iter().enumerate() {
        let expected = cell.kind.arity();
        if cell.inputs.len() != expected {
            out.push(Diagnostic::new(
                Rule::BadArity,
                Locus::Cell(CellId::from_index(i)),
                format!(
                    "{} has {} input pins, its kind takes {expected}",
                    cell.kind,
                    cell.inputs.len()
                ),
            ));
        }
    }
}

/// Single-driver and floating-net checks, plus consistency between the
/// per-net driver table and the cell list (they are redundant storage, so
/// any disagreement means one of them lies).
fn check_drivers(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let net_count = netlist.net_count();
    let cell_count = netlist.cell_count();

    // Driver counts as witnessed by the cell list itself. Flat count
    // arrays, not per-net lists: this runs on every `try_build`, and the
    // member list is only needed for the (rare) violation message, where
    // it is recomputed by a second scan.
    let mut cell_driver_count = vec![0u32; net_count];
    for cell in netlist.cells() {
        cell_driver_count[cell.output.index()] += 1;
    }
    let declared_input: Vec<bool> = {
        let mut v = vec![false; net_count];
        for n in netlist.inputs() {
            v[n.index()] = true;
        }
        v
    };
    let mut is_output = vec![false; net_count];
    for n in netlist.outputs() {
        is_output[n.index()] = true;
    }

    for index in 0..net_count {
        let net = NetId::from_index(index);
        let declared = netlist.driver(net);
        let from_cells = cell_driver_count[index] as usize;
        let driver_total = from_cells + usize::from(declared_input[index]);

        if driver_total > 1 {
            let cells = netlist
                .cells()
                .iter()
                .enumerate()
                .filter(|(_, cell)| cell.output == net)
                .map(|(i, _)| CellId::from_index(i).to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let also_input = if declared_input[index] {
                " and the primary-input list"
            } else {
                ""
            };
            out.push(Diagnostic::new(
                Rule::MultiDriven,
                Locus::Net(net),
                format!("net driven by {cells}{also_input}"),
            ));
        }

        match declared {
            NetDriver::Input => {
                if !declared_input[index] {
                    out.push(Diagnostic::new(
                        Rule::DriverBookkeeping,
                        Locus::Net(net),
                        "driver table says primary input, but the net is not in the input list",
                    ));
                }
            }
            NetDriver::Cell(id) => {
                if id.index() >= cell_count {
                    out.push(Diagnostic::new(
                        Rule::FloatingNet,
                        Locus::Net(net),
                        format!(
                            "driver table points at cell {id}, which does not exist \
                             ({cell_count} cells) — the net has no driver"
                        ),
                    ));
                } else if netlist.cell(id).output != net {
                    out.push(Diagnostic::new(
                        Rule::DriverBookkeeping,
                        Locus::Net(net),
                        format!("driver table points at {id}, whose output is a different net"),
                    ));
                }
            }
        }

        // A net nothing drives: an error as soon as anything reads it
        // (cells or a primary output sample X), a mere observation
        // otherwise — an unread undriven net is dead, not wrong.
        let undriven = from_cells == 0 && !declared_input[index];
        let declared_dangling = matches!(declared, NetDriver::Cell(id) if id.index() >= cell_count);
        if undriven && !declared_dangling {
            let read = !netlist.fanout(net).is_empty() || is_output[index];
            if read {
                out.push(Diagnostic::new(
                    Rule::FloatingNet,
                    Locus::Net(net),
                    "net is read but has no driver",
                ));
            }
        }
    }
}

/// Combinational-loop detection: iterative Tarjan SCC over the cell graph
/// (edge `p -> c` when `c` reads `p`'s output). Every SCC of size two or
/// more — and every self-reading cell — is a combinational loop.
pub(crate) fn check_loops(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let n = netlist.cell_count();
    // Successor lists from the fanout index (derived from the cells, so
    // consistent even when the driver table lies).
    let successors = |cell: usize| -> &[CellId] { netlist.fanout(netlist.cells()[cell].output) };

    const UNVISITED: u32 = u32::MAX;
    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    // Explicit DFS frames: (node, next successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index_of[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index_of[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = successors(v).get(*child) {
                *child += 1;
                let w = w.index();
                if index_of[w] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index_of[w]);
                }
                continue;
            }
            // v is exhausted: pop, propagate lowlink, emit its SCC root.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                lowlink[parent] = lowlink[parent].min(lowlink[v]);
            }
            if lowlink[v] == index_of[v] {
                let mut component = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    component.push(w);
                    if w == v {
                        break;
                    }
                }
                let self_loop = component.len() == 1
                    && successors(component[0]).contains(&CellId::from_index(component[0]));
                if component.len() > 1 || self_loop {
                    component.sort_unstable();
                    let members = component
                        .iter()
                        .map(|&c| CellId::from_index(c).to_string())
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.push(Diagnostic::new(
                        Rule::CombLoop,
                        Locus::Cell(CellId::from_index(component[0])),
                        format!(
                            "combinational loop through {} cell(s): {members}",
                            component.len()
                        ),
                    ));
                }
            }
        }
    }
}

/// The creation-order contract: every cell input's net id must be below
/// its output's, so the single forward sweep of `evaluate_words` sees
/// settled values. (A violation without a loop still silently evaluates
/// stale zeros.)
fn check_topo_order(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    for (i, cell) in netlist.cells().iter().enumerate() {
        for &input in &cell.inputs {
            if input.index() >= cell.output.index() {
                out.push(Diagnostic::new(
                    Rule::TopoOrder,
                    Locus::Cell(CellId::from_index(i)),
                    format!(
                        "cell reads {input}, which is not created before its output {} — \
                         a single forward sweep would see a stale value",
                        cell.output
                    ),
                ));
                break; // one finding per cell is enough
            }
        }
    }
}

/// Cone-of-influence from the primary outputs: cells (and primary inputs)
/// that cannot reach any output are dead — reported as warnings, since
/// dead logic is wasteful and usually unintended but computes nothing
/// wrong.
fn check_cone_of_influence(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    if netlist.outputs().is_empty() {
        return; // NoOutputs already fired; everything would be "dead".
    }
    let mut live_net = vec![false; netlist.net_count()];
    let mut worklist: Vec<NetId> = Vec::new();
    for &n in netlist.outputs() {
        if !live_net[n.index()] {
            live_net[n.index()] = true;
            worklist.push(n);
        }
    }
    while let Some(net) = worklist.pop() {
        if let NetDriver::Cell(id) = netlist.driver(net) {
            if id.index() >= netlist.cell_count() {
                continue; // dangling driver: FloatingNet already fired
            }
            for &input in &netlist.cell(id).inputs {
                if !live_net[input.index()] {
                    live_net[input.index()] = true;
                    worklist.push(input);
                }
            }
        }
    }
    // Dead cells are routine for speculative synthesis (truncated lanes
    // leave orphaned logic), so a design gets ONE aggregated warning per
    // rule rather than one per cell — cheaper to produce and far easier
    // to read than hundreds of near-identical lines. The locus is the
    // first affected cell/net so the finding still points into the graph.
    let mut dead = 0usize;
    let mut first_dead = 0usize;
    let mut members = String::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        if !live_net[cell.output.index()] {
            if dead == 0 {
                first_dead = i;
            }
            if dead < 8 {
                use std::fmt::Write as _;
                let _ = write!(
                    members,
                    "{}c{i}:{}",
                    if dead == 0 { "" } else { ", " },
                    cell.kind
                );
            }
            dead += 1;
        }
    }
    if dead > 0 {
        let more = dead.saturating_sub(8);
        let suffix = if more > 0 {
            format!(" (+{more} more)")
        } else {
            String::new()
        };
        out.push(Diagnostic::new(
            Rule::DeadCell,
            Locus::Cell(CellId::from_index(first_dead)),
            format!("{dead} cell(s) feed no primary output: {members}{suffix}"),
        ));
    }
    let mut unused = 0usize;
    let mut first_pin = 0usize;
    let mut pins = String::new();
    for (pin, &n) in netlist.inputs().iter().enumerate() {
        if !live_net[n.index()] {
            if unused == 0 {
                first_pin = pin;
            }
            if unused < 8 {
                use std::fmt::Write as _;
                let name = netlist.net_name(n).unwrap_or("?");
                let _ = write!(
                    pins,
                    "{}{pin} ({name})",
                    if unused == 0 { "" } else { ", " }
                );
            }
            unused += 1;
        }
    }
    if unused > 0 {
        let more = unused.saturating_sub(8);
        let suffix = if more > 0 {
            format!(" (+{more} more)")
        } else {
            String::new()
        };
        out.push(Diagnostic::new(
            Rule::UnusedInput,
            Locus::Net(netlist.inputs()[first_pin]),
            format!("{unused} primary input(s) reach no primary output: {pins}{suffix}"),
        ));
    }
}

fn check_output_names(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for i in 0..netlist.outputs().len() {
        let name = netlist.output_name(i);
        if let Some(&first) = seen.get(name) {
            out.push(Diagnostic::new(
                Rule::DuplicateOutputName,
                Locus::Output(i),
                format!("output name {name:?} already used by output {first}"),
            ));
        } else {
            seen.insert(name, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::NetlistBuilder;

    fn clean() -> Netlist {
        let mut b = NetlistBuilder::new("clean");
        let a = b.input("a");
        let x = b.input("b");
        let s = b.xor2(a, x);
        let c = b.and2(a, x);
        b.mark_output(s, "sum");
        b.mark_output(c, "carry");
        b.finish().unwrap()
    }

    #[test]
    fn builder_netlists_are_clean() {
        let findings = check(&clean());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn self_loop_is_detected() {
        let nl = clean();
        let (name, drivers, names, mut cells, inputs, outputs, onames) = nl.into_raw_parts();
        // Make the XOR read its own output.
        cells[0].inputs[0] = cells[0].output;
        let nl = Netlist::from_raw_parts(name, drivers, names, cells, inputs, outputs, onames);
        let findings = check(&nl);
        assert!(
            findings
                .iter()
                .any(|d| d.rule == Rule::CombLoop && d.severity == crate::Severity::Error),
            "{findings:?}"
        );
    }

    #[test]
    fn two_cell_cycle_is_one_loop_finding() {
        let nl = clean();
        let (name, drivers, names, mut cells, inputs, outputs, onames) = nl.into_raw_parts();
        // XOR reads AND's output; AND already reads... make them mutual.
        let xor_out = cells[0].output;
        let and_out = cells[1].output;
        cells[0].inputs[0] = and_out;
        cells[1].inputs[0] = xor_out;
        let nl = Netlist::from_raw_parts(name, drivers, names, cells, inputs, outputs, onames);
        let loops: Vec<_> = check(&nl)
            .into_iter()
            .filter(|d| d.rule == Rule::CombLoop)
            .collect();
        assert_eq!(loops.len(), 1, "one SCC, one finding: {loops:?}");
        assert!(loops[0].message.contains("2 cell(s)"));
    }

    #[test]
    fn dropped_driver_is_floating() {
        let nl = clean();
        let (name, drivers, names, mut cells, inputs, outputs, onames) = nl.into_raw_parts();
        cells.pop(); // drop the AND driving the carry output
        let nl = Netlist::from_raw_parts(name, drivers, names, cells, inputs, outputs, onames);
        let findings = check(&nl);
        assert!(
            findings.iter().any(|d| d.rule == Rule::FloatingNet),
            "{findings:?}"
        );
    }

    #[test]
    fn multi_driven_net_is_flagged() {
        let nl = clean();
        let (name, drivers, names, mut cells, inputs, outputs, onames) = nl.into_raw_parts();
        // Point the AND's output at the XOR's output net.
        cells[1].output = cells[0].output;
        let nl = Netlist::from_raw_parts(name, drivers, names, cells, inputs, outputs, onames);
        let findings = check(&nl);
        assert!(
            findings.iter().any(|d| d.rule == Rule::MultiDriven),
            "{findings:?}"
        );
    }

    #[test]
    fn dead_cell_and_unused_input_warn() {
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("a");
        let x = b.input("b");
        let _dead = b.and2(a, a); // never read
        let y = b.inv(a);
        b.mark_output(y, "y");
        let _ = x; // declared but unused input
        let nl = b.finish().unwrap();
        let findings = check(&nl);
        assert!(findings.iter().any(|d| d.rule == Rule::DeadCell));
        assert!(findings.iter().any(|d| d.rule == Rule::UnusedInput));
        assert!(
            findings
                .iter()
                .all(|d| d.severity != crate::Severity::Error),
            "dead logic must warn, not error: {findings:?}"
        );
    }

    #[test]
    fn duplicate_output_names_warn() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.input("a");
        let y = b.inv(a);
        b.mark_output(y, "y");
        b.mark_output(a, "y");
        let nl = b.finish().unwrap();
        let findings = check(&nl);
        assert!(findings.iter().any(|d| d.rule == Rule::DuplicateOutputName));
    }

    #[test]
    fn adder_io_checks_counts() {
        let nl = clean(); // 2 inputs, 2 outputs: a width-1 adder
        assert!(check_adder_io(&nl, 1).is_empty());
        let findings = check_adder_io(&nl, 2);
        assert_eq!(findings.len(), 2, "{findings:?}"); // wrong ins and outs
        assert!(!check_adder_io(&nl, 0).is_empty());
    }
}
