//! The diagnostics model: severities, rule identifiers, loci and the
//! [`LintReport`] every lint entry point returns, with human-readable and
//! machine-readable (JSON) rendering.

use std::fmt;
use std::time::Duration;

use isa_netlist::{CellId, NetId};

use crate::level::Levelization;

/// How bad a finding is.
///
/// [`Error`](Severity::Error) findings make a design unbuildable
/// (`DesignContext::try_build` rejects it); warnings and infos are
/// reported but do not gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational observation; never gates anything.
    Info,
    /// Suspicious but not provably wrong (dead logic, unused inputs).
    Warning,
    /// A violated invariant: simulating this design would be meaningless.
    Error,
}

impl Severity {
    /// Stable lowercase label (used in both renderings).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Every lint rule, with a stable identifier and a fixed severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    // --- structural -----------------------------------------------------
    /// The gate graph contains a combinational cycle (Tarjan SCC).
    CombLoop,
    /// A cell reads a net whose id is not below its output's (the
    /// creation-order contract `evaluate_words` relies on).
    TopoOrder,
    /// More than one driver (cell or primary input) on one net.
    MultiDriven,
    /// The per-net driver table disagrees with the cell list.
    DriverBookkeeping,
    /// A net is read (by a cell or a primary output) but nothing drives it.
    FloatingNet,
    /// A cell's pin count does not match its kind's arity.
    BadArity,
    /// The netlist declares no primary outputs.
    NoOutputs,
    /// A cell outside the cone of influence of every primary output.
    DeadCell,
    /// A primary input that reaches no primary output.
    UnusedInput,
    /// Two primary outputs share a name.
    DuplicateOutputName,
    /// Input/output counts violate the adder convention (`2w` inputs,
    /// `w + 1` outputs).
    AdderIo,
    // --- levelization ---------------------------------------------------
    /// The level schedule is not a valid topological order.
    LevelSchedule,
    /// Scheduled replay diverged from `evaluate_words` on some net.
    LevelReplay,
    // --- instruction tape -----------------------------------------------
    /// The compiled tape's shape disagrees with the netlist (op/slot
    /// counts, primary I/O slot tables).
    TapeShape,
    /// Tape execution diverged from `evaluate_words` on some net (scalar
    /// or vector-chunk path).
    TapeReplay,
    // --- timing ---------------------------------------------------------
    /// The delay annotation does not cover every cell instance.
    AnnotationCoverage,
    /// A negative or non-finite cell delay.
    BadDelay,
    /// An arrival time drops along an edge (or disagrees with the
    /// max-plus recurrence).
    ArrivalMonotone,
    /// `downstream_ps` is not a consistent longest-path labeling
    /// (dominance or tightness violated on some edge).
    DownstreamConsistency,
    /// `max(arrival + downstream)` over all nets misses the critical delay.
    CriticalIdentity,
    // --- classifier audit -----------------------------------------------
    /// Classifier shape disagrees with the design (width, span ranges).
    ClassifierShape,
    /// The `bound_fs[L]` settle table is not monotone in `L`.
    BoundMonotone,
    /// `bound_fs[width]` does not recover the recomputed critical delay.
    BoundCritical,
    /// `bound_fs[L]` falls below the independently recomputed carry-chain
    /// window bound for some run length (conservatism broken).
    BoundUnderChain,
    /// A claimed group-P/G span is not semantically true on the netlist.
    PgTyping,
    // --- functional -----------------------------------------------------
    /// The netlist disagrees with the behavioural golden model.
    FunctionalMismatch,
    // --- symbolic proofs (opt-in, offline tier) -------------------------
    /// The equivalence proof against the behavioural spec failed: the
    /// netlist computes a different function on some concrete operand
    /// pair (reported in the message).
    ProveEquiv,
    /// The symbolic settle-bound re-proof failed: the proven bound
    /// exceeded the topological one, or the waveform algebra's endpoint
    /// functions diverged from the netlist's functional semantics.
    ProveSta,
}

impl Rule {
    /// Stable machine-readable identifier (`family.name`).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::CombLoop => "structural.comb-loop",
            Rule::TopoOrder => "structural.topo-order",
            Rule::MultiDriven => "structural.multi-driven",
            Rule::DriverBookkeeping => "structural.driver-bookkeeping",
            Rule::FloatingNet => "structural.floating-net",
            Rule::BadArity => "structural.bad-arity",
            Rule::NoOutputs => "structural.no-outputs",
            Rule::DeadCell => "structural.dead-cell",
            Rule::UnusedInput => "structural.unused-input",
            Rule::DuplicateOutputName => "structural.duplicate-output-name",
            Rule::AdderIo => "structural.adder-io",
            Rule::LevelSchedule => "level.schedule",
            Rule::LevelReplay => "level.replay",
            Rule::TapeShape => "tape.shape",
            Rule::TapeReplay => "tape.replay",
            Rule::AnnotationCoverage => "timing.annotation-coverage",
            Rule::BadDelay => "timing.bad-delay",
            Rule::ArrivalMonotone => "timing.arrival-monotone",
            Rule::DownstreamConsistency => "timing.downstream-consistency",
            Rule::CriticalIdentity => "timing.critical-identity",
            Rule::ClassifierShape => "classifier.shape",
            Rule::BoundMonotone => "classifier.bound-monotone",
            Rule::BoundCritical => "classifier.bound-critical",
            Rule::BoundUnderChain => "classifier.bound-under-chain",
            Rule::PgTyping => "classifier.pg-typing",
            Rule::FunctionalMismatch => "functional.mismatch",
            Rule::ProveEquiv => "prove.equiv",
            Rule::ProveSta => "prove.sta",
        }
    }

    /// The fixed severity of findings under this rule.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Rule::DeadCell | Rule::UnusedInput | Rule::DuplicateOutputName => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Where in the design a finding is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locus {
    /// The design as a whole.
    Design,
    /// One cell instance.
    Cell(CellId),
    /// One net.
    Net(NetId),
    /// The `i`-th primary output.
    Output(usize),
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Design => f.write_str("design"),
            Locus::Cell(c) => write!(f, "{c}"),
            Locus::Net(n) => write!(f, "{n}"),
            Locus::Output(i) => write!(f, "out[{i}]"),
        }
    }
}

/// One finding: a rule violation (or observation) at a locus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is (always `rule.severity()`).
    pub severity: Severity,
    /// Which rule fired.
    pub rule: Rule,
    /// Where it is anchored.
    pub locus: Locus,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a finding with the rule's fixed severity.
    #[must_use]
    pub fn new(rule: Rule, locus: Locus, message: impl Into<String>) -> Self {
        Self {
            severity: rule.severity(),
            rule,
            locus,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.rule, self.locus, self.message
        )
    }
}

/// Everything one lint run found, plus the verified levelization IR when
/// the schedule could be built (absent on cyclic graphs).
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Name of the linted design (netlist name).
    pub design: String,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// The verified level schedule (the instruction-tape compiler's input
    /// IR), when the graph is acyclic.
    pub levelization: Option<Levelization>,
    /// Wall-clock time the lint run took (for the synthesis-overhead
    /// budget in BENCHMARKS.md).
    pub elapsed: Duration,
}

impl LintReport {
    /// Number of Error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of Warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True if any finding is an error (the design must be rejected).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// True if some finding fired under the rule.
    #[must_use]
    pub fn has_rule(&self, rule: Rule) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// The first Error-severity finding, if any.
    #[must_use]
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// Human-readable multi-line rendering (one line per finding plus a
    /// summary line).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}: {d}\n", self.design));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            self.design,
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Machine-readable JSON rendering (hand-rolled — the workspace has no
    /// serde): one object with the design name, counts and a findings
    /// array.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"design\":{},", json_string(&self.design)));
        out.push_str(&format!("\"errors\":{},", self.error_count()));
        out.push_str(&format!("\"warnings\":{},", self.warning_count()));
        out.push_str(&format!(
            "\"lint_micros\":{},",
            self.elapsed.as_micros().min(u128::from(u64::MAX))
        ));
        out.push_str("\"findings\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"rule\":\"{}\",\"locus\":\"{}\",\"message\":{}}}",
                d.severity,
                d.rule,
                d.locus,
                json_string(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn rule_ids_are_unique() {
        let rules = [
            Rule::CombLoop,
            Rule::TopoOrder,
            Rule::MultiDriven,
            Rule::DriverBookkeeping,
            Rule::FloatingNet,
            Rule::BadArity,
            Rule::NoOutputs,
            Rule::DeadCell,
            Rule::UnusedInput,
            Rule::DuplicateOutputName,
            Rule::AdderIo,
            Rule::LevelSchedule,
            Rule::LevelReplay,
            Rule::TapeShape,
            Rule::TapeReplay,
            Rule::AnnotationCoverage,
            Rule::BadDelay,
            Rule::ArrivalMonotone,
            Rule::DownstreamConsistency,
            Rule::CriticalIdentity,
            Rule::ClassifierShape,
            Rule::BoundMonotone,
            Rule::BoundCritical,
            Rule::BoundUnderChain,
            Rule::PgTyping,
            Rule::FunctionalMismatch,
            Rule::ProveEquiv,
            Rule::ProveSta,
        ];
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rules.len(), "duplicate rule id");
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_counts_and_json_shape() {
        let report = LintReport {
            design: "t".into(),
            diagnostics: vec![
                Diagnostic::new(Rule::DeadCell, Locus::Cell(CellId::from_index(3)), "dead"),
                Diagnostic::new(Rule::CombLoop, Locus::Design, "loop"),
            ],
            levelization: None,
            elapsed: Duration::from_micros(5),
        };
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has_errors());
        assert!(report.has_rule(Rule::CombLoop));
        assert!(!report.has_rule(Rule::BadDelay));
        assert_eq!(report.first_error().unwrap().rule, Rule::CombLoop);
        let json = report.to_json();
        assert!(json.contains("\"design\":\"t\""));
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("structural.comb-loop"));
        let rendered = report.render();
        assert!(rendered.contains("1 error(s), 1 warning(s)"));
    }
}
