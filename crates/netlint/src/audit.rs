//! Static conservatism audit of the lane classifier.
//!
//! The filtered backend's correctness rests on the
//! [`LaneClassifier`] settle table being an *upper* bound: a lane the
//! classifier proves safe is never event-simulated, so an unsound bound
//! would silently change results. This pass re-derives the cheap half of
//! that proof independently:
//!
//! * `bound_fs[L]` must be monotone in `L` (a larger run class contains
//!   the smaller one);
//! * `bound_fs[width]` (no run restriction) must equal the critical
//!   delay, recomputed here with an independent integer-femtosecond
//!   forward pass;
//! * for every `L`, `bound_fs[L]` must be **at least** the carry-chain
//!   window bound: an `L`-run of `p = 1` across linked ripple MAJ3 cells
//!   forces the carry through all of them, so the sum of any `L`
//!   consecutive linked chain-cell delays is a lower bound on the true
//!   worst settle time — the audit re-detects the chains itself rather
//!   than trusting the classifier's own structures;
//! * every net the classifier *typed* as a group propagate/generate over
//!   a bit span must actually compute that function — verified
//!   semantically by evaluating the whole netlist on pseudo-random
//!   64-lane batteries and folding the reference group P/G from the
//!   primary operand planes. The zero-group-P span pinning in the bound
//!   DP presupposes exactly these typings.

use isa_netlist::classify::LaneClassifier;
use isa_netlist::timing::{ps_to_fs, DelayAnnotation};
use isa_netlist::{AdderNetlist, CellKind, NetId};

use crate::diag::{Diagnostic, Locus, Rule};
use crate::Splitmix;

/// Runs the full classifier audit.
#[must_use]
pub fn check_classifier(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    classifier: &LaneClassifier,
    batteries: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let width = adder.width() as usize;
    if classifier.width() != width {
        out.push(Diagnostic::new(
            Rule::ClassifierShape,
            Locus::Design,
            format!(
                "classifier built for width {}, design has width {width}",
                classifier.width()
            ),
        ));
        return out; // every table below is indexed by width
    }

    check_bound_table(adder, annotation, classifier, &mut out);
    check_span_shapes(classifier, width, &mut out);
    if out.iter().all(|d| d.rule != Rule::ClassifierShape) {
        check_pg_semantics(adder, classifier, batteries, &mut out);
    }
    out
}

/// Monotonicity, critical-delay recovery and the chain-window lower bound.
fn check_bound_table(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    classifier: &LaneClassifier,
    out: &mut Vec<Diagnostic>,
) {
    let netlist = adder.netlist();
    let width = adder.width() as usize;

    for l in 1..=width {
        if classifier.bound_fs(l - 1) > classifier.bound_fs(l) {
            out.push(Diagnostic::new(
                Rule::BoundMonotone,
                Locus::Design,
                format!(
                    "bound_fs[{}] = {} exceeds bound_fs[{l}] = {} — a larger run class \
                     cannot settle sooner",
                    l - 1,
                    classifier.bound_fs(l - 1),
                    classifier.bound_fs(l)
                ),
            ));
        }
    }

    // Independent integer-fs forward pass for the critical delay.
    let delays_fs: Vec<u64> = annotation.as_slice().iter().map(|&d| ps_to_fs(d)).collect();
    let mut arrival = vec![0u64; netlist.net_count()];
    for (i, cell) in netlist.cells().iter().enumerate() {
        let worst = cell
            .inputs
            .iter()
            .map(|n| arrival[n.index()])
            .max()
            .unwrap_or(0);
        arrival[cell.output.index()] = worst + delays_fs[i];
    }
    let crit_fs = netlist
        .outputs()
        .iter()
        .map(|n| arrival[n.index()])
        .max()
        .unwrap_or(0);
    if classifier.critical_fs() != crit_fs {
        out.push(Diagnostic::new(
            Rule::BoundCritical,
            Locus::Design,
            format!(
                "classifier critical delay {} fs, independent recomputation {} fs",
                classifier.critical_fs(),
                crit_fs
            ),
        ));
    }
    if classifier.bound_fs(width) != crit_fs {
        out.push(Diagnostic::new(
            Rule::BoundCritical,
            Locus::Design,
            format!(
                "bound_fs[{width}] = {} must recover the unrestricted critical delay {crit_fs} fs",
                classifier.bound_fs(width)
            ),
        ));
    }

    // Chain-window lower bound, from an independent chain re-detection.
    let chains = detect_chains(adder, &delays_fs);
    for l in 0..=width {
        let lower = chain_window_lower_fs(&chains, l);
        if classifier.bound_fs(l) < lower {
            out.push(Diagnostic::new(
                Rule::BoundUnderChain,
                Locus::Design,
                format!(
                    "bound_fs[{l}] = {} fs below the carry-chain window bound {lower} fs — \
                     a run of {l} propagate bits can outlive the claimed settle time",
                    classifier.bound_fs(l)
                ),
            ));
        }
    }
}

/// One detected ripple chain cell: its bit position, delay, and the chain
/// cell (index into the same vector) its carry input comes from, if any.
struct ChainCell {
    position: usize,
    delay_fs: u64,
    predecessor: Option<usize>,
}

/// Re-detects ripple carry chains: MAJ3 cells whose two data inputs are
/// the primary pair `a[i]`, `b[i]`, linked where one chain cell's carry
/// input is another chain cell's output at the position below.
fn detect_chains(adder: &AdderNetlist, delays_fs: &[u64]) -> Vec<ChainCell> {
    let netlist = adder.netlist();
    let width = adder.width() as usize;
    let mut pin_of_net = vec![usize::MAX; netlist.net_count()];
    for (i, n) in netlist.inputs().iter().enumerate() {
        pin_of_net[n.index()] = i;
    }
    let mut chain_of_output = vec![usize::MAX; netlist.net_count()];
    let mut chains: Vec<ChainCell> = Vec::new();
    let mut carry_nets: Vec<usize> = Vec::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        if cell.kind != CellKind::Maj3 {
            continue;
        }
        for (x, y, c) in [(0, 1, 2), (0, 2, 1), (1, 2, 0)] {
            let px = pin_of_net[cell.inputs[x].index()];
            let py = pin_of_net[cell.inputs[y].index()];
            if px == usize::MAX || py == usize::MAX {
                continue;
            }
            let (lo, hi) = (px.min(py), px.max(py));
            if lo < width && hi == lo + width {
                chain_of_output[cell.output.index()] = chains.len();
                chains.push(ChainCell {
                    position: lo,
                    delay_fs: delays_fs[i],
                    predecessor: None,
                });
                carry_nets.push(cell.inputs[c].index());
                break;
            }
        }
    }
    // Link after the scan so forward references (which a foreign netlist
    // may contain) still resolve.
    for (i, &carry) in carry_nets.iter().enumerate() {
        let p = chain_of_output[carry];
        if p != usize::MAX && chains[p].position + 1 == chains[i].position {
            chains[i].predecessor = Some(p);
        }
    }
    chains
}

/// Lower bound on the worst settle time of vectors with a propagate run
/// of length `run`: the best window sum of `run` consecutive linked chain
/// delays ending at each chain cell (for `run = 0`, the single worst
/// chain-cell delay — even a zero-run vector pays one cell delay at each
/// chain position).
fn chain_window_lower_fs(chains: &[ChainCell], run: usize) -> u64 {
    let mut best = 0u64;
    for (i, cell) in chains.iter().enumerate() {
        let mut sum = cell.delay_fs;
        let mut cursor = i;
        // Walk back through up to run - 1 linked predecessors.
        for _ in 1..run.max(1) {
            match chains[cursor].predecessor {
                Some(p) => {
                    sum += chains[p].delay_fs;
                    cursor = p;
                }
                None => break,
            }
        }
        best = best.max(sum);
    }
    best
}

/// Span ranges must lie inside the operand width and be non-empty.
fn check_span_shapes(classifier: &LaneClassifier, width: usize, out: &mut Vec<Diagnostic>) {
    let check = |spans: &[(NetId, (usize, usize))], kind: &str, out: &mut Vec<Diagnostic>| {
        for &(net, (s, e)) in spans {
            if s >= e || e > width {
                out.push(Diagnostic::new(
                    Rule::ClassifierShape,
                    Locus::Net(net),
                    format!("group-{kind} span {s}..{e} is outside the 0..{width} operand range"),
                ));
            }
        }
    };
    check(classifier.typed_p_spans(), "P", out);
    check(classifier.typed_g_spans(), "G", out);
}

/// Semantic re-proof of every claimed group-P/G typing: on pseudo-random
/// 64-lane batteries, the typed net's plane must equal the group function
/// folded from the primary operand planes.
fn check_pg_semantics(
    adder: &AdderNetlist,
    classifier: &LaneClassifier,
    batteries: usize,
    out: &mut Vec<Diagnostic>,
) {
    if classifier.typed_p_spans().is_empty() && classifier.typed_g_spans().is_empty() {
        return;
    }
    let netlist = adder.netlist();
    let width = adder.width() as usize;
    let mut rng = Splitmix::new(0x5047_4155_4449_5401 ^ (width as u64) << 40);
    for battery in 0..batteries {
        let planes: Vec<u64> = (0..2 * width).map(|_| rng.next_u64()).collect();
        let values = netlist.evaluate_words(&planes);
        // Reference per-bit propagate/generate planes.
        let p: Vec<u64> = (0..width).map(|i| planes[i] ^ planes[i + width]).collect();
        let g: Vec<u64> = (0..width).map(|i| planes[i] & planes[i + width]).collect();
        for &(net, (s, e)) in classifier.typed_p_spans() {
            let reference = p[s..e].iter().fold(u64::MAX, |acc, &w| acc & w);
            if values[net.index()] != reference {
                out.push(Diagnostic::new(
                    Rule::PgTyping,
                    Locus::Net(net),
                    format!(
                        "battery {battery}: net does not compute group P over bits {s}..{e} \
                         — the zero-group-P pinning in the settle bound is unsound"
                    ),
                ));
                return; // one semantic failure invalidates the table
            }
        }
        for &(net, (s, e)) in classifier.typed_g_spans() {
            // G[s, e) = g[e-1] | (p[e-1] & G[s, e-1)), folded upward.
            let mut reference = g[s];
            for i in s + 1..e {
                reference = g[i] | (p[i] & reference);
            }
            if values[net.index()] != reference {
                out.push(Diagnostic::new(
                    Rule::PgTyping,
                    Locus::Net(net),
                    format!("battery {battery}: net does not compute group G over bits {s}..{e}"),
                ));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::{build_exact, AdderTopology};

    fn audit(width: u32, topology: AdderTopology) -> Vec<Diagnostic> {
        let adder = build_exact(width, topology);
        let ann = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
        let cls = LaneClassifier::build(&adder, &ann);
        check_classifier(&adder, &ann, &cls, 3)
    }

    #[test]
    fn exact_adders_pass_the_audit() {
        for topology in [
            AdderTopology::Ripple,
            AdderTopology::KoggeStone,
            AdderTopology::Sklansky,
        ] {
            let findings = audit(16, topology);
            assert!(findings.is_empty(), "{topology:?}: {findings:?}");
        }
    }

    #[test]
    fn chain_window_bound_is_nontrivial_on_ripple() {
        let adder = build_exact(16, AdderTopology::Ripple);
        let ann = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
        let delays_fs: Vec<u64> = ann.as_slice().iter().map(|&d| ps_to_fs(d)).collect();
        let chains = detect_chains(&adder, &delays_fs);
        assert_eq!(chains.len(), 15, "one MAJ3 per bit above the LSB");
        let w1 = chain_window_lower_fs(&chains, 1);
        let w8 = chain_window_lower_fs(&chains, 8);
        assert!(w1 > 0);
        assert!(w8 > 4 * w1, "8-windows must dwarf single cells");
        // And the real classifier respects it (the audit's core claim).
        let cls = LaneClassifier::build(&adder, &ann);
        for l in 0..=16 {
            assert!(cls.bound_fs(l) >= chain_window_lower_fs(&chains, l));
        }
    }

    #[test]
    fn prefix_adder_pg_typing_is_semantically_true() {
        let adder = build_exact(16, AdderTopology::KoggeStone);
        let ann = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
        let cls = LaneClassifier::build(&adder, &ann);
        assert!(
            !cls.typed_p_spans().is_empty(),
            "Kogge-Stone must type group-P nets"
        );
        let mut out = Vec::new();
        check_pg_semantics(&adder, &cls, 4, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
