//! Seeded fault injector for the negative-path battery.
//!
//! Each [`Mutation`] plants one specific defect in an otherwise healthy
//! design and records the [`Rule`] that must catch it. The test battery
//! (and `cargo test -p isa-netlint`) applies every mutation to every
//! seed design and asserts the full lint pipeline reports the expected
//! rule at Error severity — proving the analyzer detects real faults,
//! not just that clean designs pass.
//!
//! Mutations go through [`Netlist::into_raw_parts`] /
//! [`Netlist::from_raw_parts`], the only way to represent a malformed
//! graph (the builder API makes these states unconstructible).

use isa_netlist::timing::DelayAnnotation;
use isa_netlist::{AdderNetlist, CellKind, NetDriver, NetId, Netlist};

use crate::diag::Rule;
use crate::Splitmix;

/// One plantable defect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Rewire one input pin of a random cell to the cell's own output,
    /// creating a combinational self-loop.
    AddLoopEdge,
    /// Remove the last cell while the driver table still claims it
    /// drives its net — the net floats.
    DropDriver,
    /// Retype a propagate XOR (primary operand pair) into an AND: the
    /// graph stays perfectly well-formed, only the *function* is wrong.
    SwapPgKind,
    /// Replace one cell delay with a negative value.
    CorruptDelay,
}

/// Every mutation, for exhaustive batteries.
pub const ALL_MUTATIONS: [Mutation; 4] = [
    Mutation::AddLoopEdge,
    Mutation::DropDriver,
    Mutation::SwapPgKind,
    Mutation::CorruptDelay,
];

impl Mutation {
    /// The rule that must fire on a design carrying this defect.
    #[must_use]
    pub fn expected_rule(self) -> Rule {
        match self {
            Mutation::AddLoopEdge => Rule::CombLoop,
            Mutation::DropDriver => Rule::FloatingNet,
            Mutation::SwapPgKind => Rule::FunctionalMismatch,
            Mutation::CorruptDelay => Rule::BadDelay,
        }
    }
}

/// A mutated design plus the verdict the linter must reach on it.
#[derive(Debug, Clone)]
pub struct Mutated {
    /// The faulted adder (I/O shape is preserved by every mutation).
    pub adder: AdderNetlist,
    /// The (possibly faulted) delay annotation matching `adder`.
    pub annotation: DelayAnnotation,
    /// The rule that must appear among the lint findings.
    pub expected: Rule,
    /// Human description of exactly what was planted where.
    pub description: String,
}

/// Applies `mutation` to a copy of `adder` at a seed-chosen site.
///
/// Returns `None` only when the design offers no site for the mutation
/// (e.g. [`Mutation::SwapPgKind`] on a netlist with no propagate XOR
/// over a primary operand pair) — never for the seed designs, which all
/// contain at least one of each site.
#[must_use]
pub fn apply_mutation(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    mutation: Mutation,
    seed: u64,
) -> Option<Mutated> {
    let mut rng = Splitmix::new(seed ^ 0x4D55_5441_5445_0001);
    let width = adder.width();
    let netlist = adder.netlist().clone();
    let expected = mutation.expected_rule();
    match mutation {
        Mutation::AddLoopEdge => {
            let (name, drivers, names, mut cells, inputs, outputs, onames) =
                netlist.into_raw_parts();
            if cells.is_empty() {
                return None;
            }
            let c = (rng.next_u64() % cells.len() as u64) as usize;
            let pin = (rng.next_u64() % cells[c].inputs.len() as u64) as usize;
            cells[c].inputs[pin] = cells[c].output;
            let description = format!("cell {c} pin {pin} rewired to the cell's own output");
            let mutated =
                Netlist::from_raw_parts(name, drivers, names, cells, inputs, outputs, onames);
            Some(Mutated {
                adder: AdderNetlist::from_netlist(mutated, width),
                annotation: annotation.clone(),
                expected,
                description,
            })
        }
        Mutation::DropDriver => {
            let (name, drivers, names, mut cells, inputs, outputs, onames) =
                netlist.into_raw_parts();
            let dropped = cells.pop()?;
            let description = format!(
                "cell {} ({}) removed; driver table still claims it drives {}",
                cells.len(),
                dropped.kind,
                dropped.output
            );
            // Keep the annotation aligned with the shrunk cell list so the
            // only defect is the structural one.
            let mut delays = annotation.as_slice().to_vec();
            delays.truncate(cells.len());
            let mutated =
                Netlist::from_raw_parts(name, drivers, names, cells, inputs, outputs, onames);
            Some(Mutated {
                adder: AdderNetlist::from_netlist(mutated, width),
                annotation: DelayAnnotation::from_delays_unchecked(delays),
                expected,
                description,
            })
        }
        Mutation::SwapPgKind => {
            // Propagate XOR sites: both inputs are the primary pair
            // a[i], b[i] — and the cell must be *live* (reach a primary
            // output). Synthesized designs carry dead logic, and retyping
            // a dead cell changes no observable sum, so nothing could
            // catch it.
            let mut live = vec![false; netlist.net_count()];
            let mut work: Vec<NetId> = Vec::new();
            for &n in netlist.outputs() {
                if !live[n.index()] {
                    live[n.index()] = true;
                    work.push(n);
                }
            }
            while let Some(net) = work.pop() {
                if let NetDriver::Cell(id) = netlist.driver(net) {
                    for &input in &netlist.cell(id).inputs {
                        if !live[input.index()] {
                            live[input.index()] = true;
                            work.push(input);
                        }
                    }
                }
            }
            let mut pin_of_net = vec![usize::MAX; netlist.net_count()];
            for (i, n) in netlist.inputs().iter().enumerate() {
                pin_of_net[n.index()] = i;
            }
            let w = width as usize;
            let sites: Vec<usize> = netlist
                .cells()
                .iter()
                .enumerate()
                .filter(|(_, cell)| {
                    cell.kind == CellKind::Xor2 && live[cell.output.index()] && {
                        let px = pin_of_net[cell.inputs[0].index()];
                        let py = pin_of_net[cell.inputs[1].index()];
                        px != usize::MAX
                            && py != usize::MAX
                            && px.min(py) < w
                            && px.max(py) == px.min(py) + w
                    }
                })
                .map(|(i, _)| i)
                .collect();
            if sites.is_empty() {
                return None;
            }
            let c = sites[(rng.next_u64() % sites.len() as u64) as usize];
            let (name, drivers, names, mut cells, inputs, outputs, onames) =
                netlist.into_raw_parts();
            cells[c].kind = CellKind::And2;
            let description =
                format!("cell {c}: propagate xor2 over a primary pair retyped to and2");
            let mutated =
                Netlist::from_raw_parts(name, drivers, names, cells, inputs, outputs, onames);
            Some(Mutated {
                adder: AdderNetlist::from_netlist(mutated, width),
                annotation: annotation.clone(),
                expected,
                description,
            })
        }
        Mutation::CorruptDelay => {
            let mut delays = annotation.as_slice().to_vec();
            if delays.is_empty() {
                return None;
            }
            let c = (rng.next_u64() % delays.len() as u64) as usize;
            let value = -1.0 - (rng.next_u64() % 1000) as f64;
            delays[c] = value;
            Some(Mutated {
                adder: adder.clone(),
                annotation: DelayAnnotation::from_delays_unchecked(delays),
                expected,
                description: format!("cell {c} delay replaced with {value} ps"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::{build_exact, AdderTopology};

    #[test]
    fn every_mutation_has_a_site_on_exact_adders() {
        for topology in [
            AdderTopology::Ripple,
            AdderTopology::KoggeStone,
            AdderTopology::Sklansky,
        ] {
            let adder = build_exact(8, topology);
            let ann = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
            for (i, &m) in ALL_MUTATIONS.iter().enumerate() {
                let got = apply_mutation(&adder, &ann, m, 0xBEEF + i as u64);
                assert!(got.is_some(), "{topology:?}: no site for {m:?}");
            }
        }
    }

    #[test]
    fn mutations_are_deterministic_in_the_seed() {
        let adder = build_exact(8, AdderTopology::Ripple);
        let ann = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
        for &m in &ALL_MUTATIONS {
            let a = apply_mutation(&adder, &ann, m, 7).unwrap();
            let b = apply_mutation(&adder, &ann, m, 7).unwrap();
            assert_eq!(a.description, b.description);
            assert_eq!(a.adder.netlist(), b.adder.netlist());
        }
    }

    #[test]
    fn swap_pg_changes_function_but_not_structure() {
        let adder = build_exact(8, AdderTopology::KoggeStone);
        let ann = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
        let m = apply_mutation(&adder, &ann, Mutation::SwapPgKind, 3).unwrap();
        assert!(crate::structural::check(m.adder.netlist())
            .iter()
            .all(|d| d.severity != crate::Severity::Error));
        let broken = (0..=255u64).any(|a| m.adder.add(a, 255 - a) != adder.add(a, 255 - a));
        assert!(broken, "retyped propagate must change some sum");
    }
}
