//! # isa-netlint
//!
//! Static analysis over [`isa_netlist`] designs: every netlist and timing
//! annotation is verified *before* anything simulates it, converting a
//! whole class of silent wrong-answer bugs (combinational loops, floating
//! or multi-driven nets, corrupt delays, an unsound classifier settle
//! table) into build-time [`Diagnostic`]s.
//!
//! Four pass families compose into [`lint_adder`] (see each module):
//!
//! * [`structural`] — well-formedness of the gate graph itself: Tarjan
//!   SCC combinational-loop detection, single-driver / no-floating-net
//!   bookkeeping, dead-cell cone-of-influence analysis from the primary
//!   outputs, pin arities and the adder I/O convention;
//! * [`level`] — a **verified levelization**: a topologically scheduled
//!   level assignment (the IR the instruction-tape compiler consumes),
//!   proven consistent with [`Netlist::evaluate_words`] order by a
//!   bit-identical replay over pseudo-random 64-lane batteries;
//! * [`timing`] — sanity of the timing graph: annotation coverage,
//!   finite non-negative delays, arrival-time monotonicity along every
//!   edge, and [`StaReport::downstream_ps`] re-verified as a longest-path
//!   labeling (edge dominance + tightness + the
//!   `max(arrival + downstream) = critical` identity);
//! * [`audit`] — the conservatism audit of the lane classifier's
//!   `bound_fs[L]` settle table: monotone in `L`, at or above an
//!   independently recomputed carry-chain window bound for every run
//!   length, recovering the critical delay at full width, and every
//!   zero-group-P span typing re-proven *semantically* against the
//!   netlist on word-evaluation batteries.
//!
//! [`mutate`] provides the seeded fault injector the negative-path test
//! battery uses (each mutation must be caught by its matching rule), and
//! [`diag`] the severity/rule/locus diagnostics model with human and JSON
//! rendering.
//!
//! # Example
//!
//! ```
//! use isa_netlint::{lint_adder, LintOptions};
//! use isa_netlist::cell::CellLibrary;
//! use isa_netlist::timing::DelayAnnotation;
//! use isa_netlist::{build_exact, AdderTopology};
//!
//! let adder = build_exact(8, AdderTopology::Ripple);
//! let annotation = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
//! let report = lint_adder(&adder, &annotation, None, &LintOptions::default());
//! assert!(!report.has_errors(), "{}", report.render());
//! ```
//!
//! [`Netlist::evaluate_words`]: isa_netlist::Netlist::evaluate_words
//! [`StaReport::downstream_ps`]: isa_netlist::StaReport::downstream_ps

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod diag;
pub mod level;
pub mod lint;
pub mod mutate;
pub mod prove;
pub mod structural;
pub mod tapecheck;
pub mod timing;

pub use diag::{Diagnostic, LintReport, Locus, Rule, Severity};
pub use level::Levelization;
pub use lint::{
    lint_adder, lint_adder_proven, lint_adder_with_classifier, lint_netlist, LintOptions,
};
pub use mutate::{apply_mutation, Mutated, Mutation, ALL_MUTATIONS};
pub use tapecheck::verify_tape;

/// Deterministic 64-bit stream (SplitMix64) for the replay and audit
/// batteries — no external RNG dependency, identical across platforms.
#[derive(Debug, Clone)]
pub(crate) struct Splitmix {
    state: u64,
}

impl Splitmix {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
