//! Verified levelization: the topologically scheduled level assignment
//! that the instruction-tape compiler consumes, proven consistent with
//! [`Netlist::evaluate_words`] order by a bit-identical replay.
//!
//! A [`Levelization`] groups the cells into levels: level 0 cells read
//! only primary inputs (or nothing — constants), level `k` cells read at
//! least one level `k - 1` output and nothing deeper. All cells within a
//! level are independent, so a level is exactly one parallel "instruction
//! tape" stage; the schedule concatenates the levels with a deterministic
//! in-level order (ascending cell id).
//!
//! Building uses Kahn's algorithm over the *cell-derived* dependency
//! graph (not the creation order and not the driver table, either of
//! which a foreign netlist may get wrong), so the schedule is correct
//! even where the creation order is not — and [`Levelization::verify`]
//! then proves the two agree by replaying pseudo-random 64-lane planes
//! through the schedule and through `evaluate_words` and comparing every
//! net.

use isa_netlist::{CellId, Netlist};

use crate::diag::{Diagnostic, Locus, Rule};
use crate::Splitmix;

/// A verified level schedule over a netlist's cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    /// Level of each cell, indexed by cell.
    level_of: Vec<u32>,
    /// All cells, sorted by `(level, id)`.
    schedule: Vec<CellId>,
    /// CSR offsets into `schedule`: level `k` is
    /// `schedule[starts[k]..starts[k + 1]]`.
    starts: Vec<usize>,
}

impl Levelization {
    /// Builds the level assignment via Kahn's algorithm over the cell
    /// dependency graph.
    ///
    /// # Errors
    ///
    /// Returns a [`Rule::CombLoop`] diagnostic when the graph is cyclic
    /// (no topological schedule exists).
    pub fn build(netlist: &Netlist) -> Result<Self, Diagnostic> {
        let n = netlist.cell_count();
        // Producer of each net, from the cell list itself.
        let mut producer = vec![usize::MAX; netlist.net_count()];
        for (i, cell) in netlist.cells().iter().enumerate() {
            producer[cell.output.index()] = i;
        }
        // Dependency edges p -> c (per reading pin, duplicates included so
        // indegree bookkeeping stays symmetric), in flat CSR form — this
        // runs on every `try_build`, so no per-cell list allocations.
        let mut indegree = vec![0usize; n];
        let mut out_count = vec![0usize; n];
        for (c, cell) in netlist.cells().iter().enumerate() {
            for input in &cell.inputs {
                let p = producer[input.index()];
                if p != usize::MAX && p != c {
                    out_count[p] += 1;
                    indegree[c] += 1;
                } else if p == c {
                    // A self-reading cell is a cycle Kahn would miss only
                    // by never decrementing it; give it an edge to itself
                    // so it stays unscheduled.
                    indegree[c] += 1;
                }
            }
        }
        let mut edge_start = vec![0usize; n + 1];
        for c in 0..n {
            edge_start[c + 1] = edge_start[c] + out_count[c];
        }
        let mut edges = vec![0usize; edge_start[n]];
        let mut fill = edge_start.clone();
        for (c, cell) in netlist.cells().iter().enumerate() {
            for input in &cell.inputs {
                let p = producer[input.index()];
                if p != usize::MAX && p != c {
                    edges[fill[p]] = c;
                    fill[p] += 1;
                }
            }
        }

        let mut level_of = vec![0u32; n];
        let mut ready: Vec<usize> = (0..n).filter(|&c| indegree[c] == 0).collect();
        let mut scheduled = 0usize;
        while let Some(c) = ready.pop() {
            scheduled += 1;
            for &next in &edges[edge_start[c]..edge_start[c + 1]] {
                level_of[next] = level_of[next].max(level_of[c] + 1);
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    ready.push(next);
                }
            }
        }
        if scheduled != n {
            let stuck = (0..n)
                .filter(|&c| indegree[c] > 0)
                .take(8)
                .map(|c| CellId::from_index(c).to_string())
                .collect::<Vec<_>>()
                .join(", ");
            return Err(Diagnostic::new(
                Rule::CombLoop,
                Locus::Design,
                format!(
                    "levelization failed: {} cell(s) are on cycles (e.g. {stuck})",
                    n - scheduled
                ),
            ));
        }

        let depth = level_of.iter().copied().max().map_or(0, |d| d as usize + 1);
        let mut starts = vec![0usize; depth + 1];
        for &l in &level_of {
            starts[l as usize + 1] += 1;
        }
        for k in 0..depth {
            starts[k + 1] += starts[k];
        }
        let mut cursor = starts.clone();
        let mut schedule = vec![CellId::from_index(0); n];
        // Ascending cell id within each level: deterministic, and cheap to
        // produce by a single ordered sweep.
        for (c, &level) in level_of.iter().enumerate() {
            let l = level as usize;
            schedule[cursor[l]] = CellId::from_index(c);
            cursor[l] += 1;
        }
        Ok(Self {
            level_of,
            schedule,
            starts,
        })
    }

    /// Number of levels (the design's logic depth in cells).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.starts.len() - 1
    }

    /// Level of one cell.
    #[must_use]
    pub fn level(&self, cell: CellId) -> u32 {
        self.level_of[cell.index()]
    }

    /// The full schedule: every cell once, level by level, ascending id
    /// within a level.
    #[must_use]
    pub fn schedule(&self) -> &[CellId] {
        &self.schedule
    }

    /// The cells of one level.
    ///
    /// # Panics
    ///
    /// Panics if `level >= depth()`.
    #[must_use]
    pub fn cells_at(&self, level: usize) -> &[CellId] {
        &self.schedule[self.starts[level]..self.starts[level + 1]]
    }

    /// Iterates the levels in order, each as a slice of independent cells.
    pub fn levels(&self) -> impl Iterator<Item = &[CellId]> + '_ {
        (0..self.depth()).map(move |l| self.cells_at(l))
    }

    /// Bit-sliced evaluation following the *schedule* order instead of
    /// creation order — the reference semantics of the instruction tape.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the primary input count.
    #[must_use]
    pub fn evaluate_words(&self, netlist: &Netlist, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            input_words.len(),
            netlist.inputs().len(),
            "expected {} input words, got {}",
            netlist.inputs().len(),
            input_words.len()
        );
        let mut values = vec![0u64; netlist.net_count()];
        for (net, &w) in netlist.inputs().iter().zip(input_words) {
            values[net.index()] = w;
        }
        let mut pins = [0u64; 3];
        for &id in &self.schedule {
            let cell = netlist.cell(id);
            for (slot, n) in pins.iter_mut().zip(&cell.inputs) {
                *slot = values[n.index()];
            }
            values[cell.output.index()] = cell.kind.eval_word(&pins[..cell.inputs.len()]);
        }
        values
    }

    /// Verifies the schedule against the netlist:
    ///
    /// * it is a permutation of the cells in which every producer runs
    ///   before its consumers, with consistent level numbers
    ///   ([`Rule::LevelSchedule`]);
    /// * replaying `batteries` pseudo-random 64-lane input planes through
    ///   the schedule produces **bit-identical** values on every net to
    ///   [`Netlist::evaluate_words`]'s creation-order sweep
    ///   ([`Rule::LevelReplay`]) — the proof that the tape IR and the
    ///   simulator agree on functional semantics.
    #[must_use]
    pub fn verify(&self, netlist: &Netlist, batteries: usize) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let n = netlist.cell_count();

        // Permutation + topological-position check.
        let mut position = vec![usize::MAX; n];
        for (pos, &id) in self.schedule.iter().enumerate() {
            if id.index() >= n || position[id.index()] != usize::MAX {
                out.push(Diagnostic::new(
                    Rule::LevelSchedule,
                    Locus::Cell(id),
                    "schedule is not a permutation of the cells",
                ));
                return out;
            }
            position[id.index()] = pos;
        }
        if self.schedule.len() != n {
            out.push(Diagnostic::new(
                Rule::LevelSchedule,
                Locus::Design,
                format!("schedule has {} entries for {n} cells", self.schedule.len()),
            ));
            return out;
        }
        let mut producer = vec![usize::MAX; netlist.net_count()];
        for (i, cell) in netlist.cells().iter().enumerate() {
            producer[cell.output.index()] = i;
        }
        for (c, cell) in netlist.cells().iter().enumerate() {
            let mut expected_level = 0u32;
            for input in &cell.inputs {
                let p = producer[input.index()];
                if p == usize::MAX || p == c {
                    continue;
                }
                expected_level = expected_level.max(self.level_of[p] + 1);
                if position[p] >= position[c] {
                    out.push(Diagnostic::new(
                        Rule::LevelSchedule,
                        Locus::Cell(CellId::from_index(c)),
                        format!("scheduled before its producer {}", CellId::from_index(p)),
                    ));
                }
            }
            if self.level_of[c] != expected_level {
                out.push(Diagnostic::new(
                    Rule::LevelSchedule,
                    Locus::Cell(CellId::from_index(c)),
                    format!(
                        "level {} but its deepest producer implies {expected_level}",
                        self.level_of[c]
                    ),
                ));
            }
        }
        if !out.is_empty() {
            return out;
        }

        // Replay check: schedule order vs creation order, every net.
        let pins = netlist.inputs().len();
        let mut rng = Splitmix::new(0x4C45_5645_4C00_0001 ^ (pins as u64) << 32);
        for battery in 0..batteries {
            let planes: Vec<u64> = (0..pins).map(|_| rng.next_u64()).collect();
            let scheduled = self.evaluate_words(netlist, &planes);
            let creation = netlist.evaluate_words(&planes);
            if let Some(net) = (0..scheduled.len()).find(|&i| scheduled[i] != creation[i]) {
                out.push(Diagnostic::new(
                    Rule::LevelReplay,
                    Locus::Net(isa_netlist::NetId::from_index(net)),
                    format!(
                        "battery {battery}: scheduled replay disagrees with evaluate_words \
                         ({:#018x} vs {:#018x})",
                        scheduled[net], creation[net]
                    ),
                ));
                return out;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::{build_exact, AdderTopology, NetlistBuilder};

    #[test]
    fn levels_partition_and_respect_dependencies() {
        let adder = build_exact(16, AdderTopology::KoggeStone);
        let nl = adder.netlist();
        let lv = Levelization::build(nl).unwrap();
        assert_eq!(lv.schedule().len(), nl.cell_count());
        assert_eq!(
            lv.levels().map(<[CellId]>::len).sum::<usize>(),
            nl.cell_count()
        );
        assert!(lv.verify(nl, 2).is_empty());
        // Depth of a Kogge-Stone adder is logarithmic-ish, far below the
        // cell count.
        assert!(lv.depth() >= 3 && lv.depth() < nl.cell_count());
    }

    #[test]
    fn ripple_depth_is_linear_in_width() {
        let a8 = build_exact(8, AdderTopology::Ripple);
        let a32 = build_exact(32, AdderTopology::Ripple);
        let d8 = Levelization::build(a8.netlist()).unwrap().depth();
        let d32 = Levelization::build(a32.netlist()).unwrap().depth();
        assert!(d32 > d8 + 16, "ripple depth must grow with width");
    }

    #[test]
    fn replay_matches_on_every_net() {
        for topology in [AdderTopology::Ripple, AdderTopology::KoggeStone] {
            let adder = build_exact(12, topology);
            let lv = Levelization::build(adder.netlist()).unwrap();
            let findings = lv.verify(adder.netlist(), 4);
            assert!(findings.is_empty(), "{topology:?}: {findings:?}");
        }
    }

    #[test]
    fn cyclic_graph_fails_to_levelize() {
        let mut b = NetlistBuilder::new("loop");
        let a = b.input("a");
        let x = b.inv(a);
        let y = b.inv(x);
        b.mark_output(y, "y");
        let nl = b.finish().unwrap();
        let (name, drivers, names, mut cells, inputs, outputs, onames) = nl.into_raw_parts();
        // First INV now reads the second INV's output: a 2-cycle.
        cells[0].inputs[0] = cells[1].output;
        let nl = Netlist::from_raw_parts(name, drivers, names, cells, inputs, outputs, onames);
        let err = Levelization::build(&nl).unwrap_err();
        assert_eq!(err.rule, Rule::CombLoop);
    }

    #[test]
    fn constants_sit_at_level_zero() {
        let mut b = NetlistBuilder::new("const");
        let a = b.input("a");
        let one = b.const1();
        let y = b.and2(a, one);
        b.mark_output(y, "y");
        let nl = b.finish().unwrap();
        let lv = Levelization::build(&nl).unwrap();
        assert_eq!(lv.level(CellId::from_index(0)), 0, "const cell");
        assert_eq!(lv.level(CellId::from_index(1)), 1, "AND after const");
        assert!(lv.verify(&nl, 2).is_empty());
    }
}
