//! Instruction-tape verification: shape and replay rules.
//!
//! The tape compiler (`isa_netlist::tape`) lowers a netlist to the flat op
//! list the word hot path executes; a defect there corrupts *every*
//! backend result while the graph interpreter stays healthy. This pass
//! re-proves each compiled tape against the netlist it claims to
//! implement:
//!
//! * **`tape.shape`** — the tape must have one op per cell, one arena slot
//!   per net, and primary I/O slot tables matching the netlist's input and
//!   output nets in declaration order.
//! * **`tape.replay`** — seeded random 64-lane batteries through the
//!   scalar (`u64`) executor *and* the `[u64; CHUNK]` vector-chunk
//!   executor must reproduce `Netlist::evaluate_words` on every net. Like
//!   `level.replay`, divergence is reported with the first offending net.

use isa_netlist::tape::{InstructionTape, CHUNK};
use isa_netlist::{NetId, Netlist};

use crate::diag::{Diagnostic, Locus, Rule};
use crate::Splitmix;

/// Checks a compiled tape against its netlist: shape first, then (only on
/// a well-shaped tape) `batteries` seeded replay batteries through both
/// executor widths.
#[must_use]
pub fn verify_tape(netlist: &Netlist, tape: &InstructionTape, batteries: usize) -> Vec<Diagnostic> {
    let mut diagnostics = check_shape(netlist, tape);
    if diagnostics.is_empty() {
        diagnostics.extend(check_replay(netlist, tape, batteries));
    }
    diagnostics
}

fn check_shape(netlist: &Netlist, tape: &InstructionTape) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let mut report = |message: String| {
        diagnostics.push(Diagnostic::new(Rule::TapeShape, Locus::Design, message));
    };
    if tape.op_count() != netlist.cell_count() {
        report(format!(
            "tape has {} ops for {} cells",
            tape.op_count(),
            netlist.cell_count()
        ));
    }
    if tape.slot_count() != netlist.net_count() {
        report(format!(
            "tape arena has {} slots for {} nets",
            tape.slot_count(),
            netlist.net_count()
        ));
    }
    let want_inputs: Vec<u32> = netlist.inputs().iter().map(|n| n.index() as u32).collect();
    if tape.input_slots() != want_inputs {
        report("tape input slots disagree with the netlist's input nets".into());
    }
    let want_outputs: Vec<u32> = netlist.outputs().iter().map(|n| n.index() as u32).collect();
    if tape.output_slots() != want_outputs {
        report("tape output slots disagree with the netlist's output nets".into());
    }
    diagnostics
}

fn check_replay(netlist: &Netlist, tape: &InstructionTape, batteries: usize) -> Vec<Diagnostic> {
    let pins = netlist.inputs().len();
    let mut rng = Splitmix::new(0x5441_5045_0000_0001 ^ ((pins as u64) << 32));
    let mut diagnostics = Vec::new();
    let mut arena = Vec::new();
    let mut chunk_arena: Vec<[u64; CHUNK]> = Vec::new();
    for battery in 0..batteries {
        // Scalar path: the arena must equal evaluate_words element for
        // element (both are net-indexed).
        let planes: Vec<u64> = (0..pins).map(|_| rng.next_u64()).collect();
        let expected = netlist.evaluate_words(&planes);
        tape.execute_into(&planes, &mut arena);
        if let Some(net) = (0..expected.len()).find(|&i| arena[i] != expected[i]) {
            diagnostics.push(Diagnostic::new(
                Rule::TapeReplay,
                Locus::Net(NetId::from_index(net)),
                format!(
                    "battery {battery}: scalar tape replay diverged \
                     (tape {:#018x}, evaluate_words {:#018x})",
                    arena[net], expected[net]
                ),
            ));
            return diagnostics;
        }

        // Vector path: CHUNK independent plane sets per sweep; element j
        // of every chunk must equal a scalar evaluation of set j.
        let sets: Vec<Vec<u64>> = (0..CHUNK)
            .map(|_| (0..pins).map(|_| rng.next_u64()).collect())
            .collect();
        let chunks: Vec<[u64; CHUNK]> = (0..pins)
            .map(|i| std::array::from_fn(|j| sets[j][i]))
            .collect();
        tape.execute_into(&chunks, &mut chunk_arena);
        for (j, set) in sets.iter().enumerate() {
            let expected = netlist.evaluate_words(set);
            if let Some(net) = (0..expected.len()).find(|&i| chunk_arena[i][j] != expected[i]) {
                diagnostics.push(Diagnostic::new(
                    Rule::TapeReplay,
                    Locus::Net(NetId::from_index(net)),
                    format!(
                        "battery {battery}: chunked tape replay diverged in chunk element {j} \
                         (tape {:#018x}, evaluate_words {:#018x})",
                        chunk_arena[net][j], expected[net]
                    ),
                ));
                return diagnostics;
            }
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::{build_exact, AdderTopology};

    fn tape16() -> (Netlist, InstructionTape) {
        let adder = build_exact(16, AdderTopology::KoggeStone);
        let netlist = adder.netlist().clone();
        let tape = InstructionTape::compile(&netlist);
        (netlist, tape)
    }

    #[test]
    fn clean_tape_verifies() {
        let (netlist, tape) = tape16();
        assert!(verify_tape(&netlist, &tape, 2).is_empty());
    }

    #[test]
    fn corrupted_op_operand_is_caught_by_replay() {
        // Fault injection: retarget one op's first operand to a different
        // (valid) arena slot. The tape still executes memory-safely and
        // keeps its shape, so only the replay rule can catch it.
        let (netlist, tape) = tape16();
        let (mut ops, runs, inputs, outputs, slots) = tape.into_raw_parts();
        let victim = ops.len() / 2;
        let original = ops[victim].a;
        ops[victim].a = (original + 1) % slots as u32;
        assert_ne!(ops[victim].a, original);
        let corrupted = InstructionTape::from_raw_parts(ops, runs, inputs, outputs, slots);
        let diagnostics = verify_tape(&netlist, &corrupted, 2);
        assert!(
            diagnostics.iter().any(|d| d.rule == Rule::TapeReplay),
            "corrupted operand must fail tape.replay: {diagnostics:?}"
        );
    }

    #[test]
    fn corrupted_output_slot_is_caught_by_replay() {
        // Redirect one op's *output* to another slot: later consumers read
        // a stale plane.
        let (netlist, tape) = tape16();
        let (mut ops, runs, inputs, outputs, slots) = tape.into_raw_parts();
        let victim = ops.len() / 3;
        ops[victim].out = (ops[victim].out + 1) % slots as u32;
        let corrupted = InstructionTape::from_raw_parts(ops, runs, inputs, outputs, slots);
        let diagnostics = verify_tape(&netlist, &corrupted, 2);
        assert!(diagnostics.iter().any(|d| d.rule == Rule::TapeReplay));
    }

    #[test]
    fn wrong_shape_is_caught_without_replay() {
        let (netlist, tape) = tape16();
        let (mut ops, mut runs, inputs, outputs, slots) = tape.into_raw_parts();
        // Drop the last op entirely: op count no longer matches the cell
        // count.
        ops.pop();
        if let Some(last) = runs.last_mut() {
            last.len -= 1;
        }
        let truncated = InstructionTape::from_raw_parts(ops, runs, inputs, outputs, slots);
        let diagnostics = verify_tape(&netlist, &truncated, 1);
        assert!(diagnostics.iter().any(|d| d.rule == Rule::TapeShape));
    }
}
