//! Timing-graph sanity passes.
//!
//! Two layers: [`check_annotation`] validates the raw delay data
//! (coverage and finite non-negative values — the precondition of every
//! simulator and of STA itself), and [`check_timing_graph`] re-verifies
//! the production STA results: arrival times must satisfy the max-plus
//! recurrence edge by edge (monotonicity falls out), and
//! [`StaReport::downstream_ps`] must be a genuine longest-path labeling —
//! *dominance* (`downstream[in] >= delay + downstream[out]` on every
//! edge), *tightness* (equality is achieved on some edge of every read
//! net), and zero at sinks. A labeling with those three properties **is**
//! the longest-path function, so the check is an independent proof, not a
//! re-run of the same code. Finally `max(arrival + downstream)` over all
//! nets must hit the critical delay exactly (every net on a critical path
//! witnesses it).

use isa_netlist::timing::DelayAnnotation;
use isa_netlist::{CellId, NetId, Netlist, StaReport};

use crate::diag::{Diagnostic, Locus, Rule};

/// Absolute picosecond tolerance for f64 path-sum comparisons (delays are
/// tens of ps; accumulated rounding over a few hundred additions stays
/// far below this).
const EPS_PS: f64 = 1e-6;

/// Validates coverage and the delay values themselves.
#[must_use]
pub fn check_annotation(netlist: &Netlist, annotation: &DelayAnnotation) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if annotation.len() != netlist.cell_count() {
        out.push(Diagnostic::new(
            Rule::AnnotationCoverage,
            Locus::Design,
            format!(
                "annotation covers {} cells, netlist has {}",
                annotation.len(),
                netlist.cell_count()
            ),
        ));
        return out; // per-cell indexing below would be misaligned
    }
    for (i, &d) in annotation.as_slice().iter().enumerate() {
        if !d.is_finite() || d < 0.0 {
            out.push(Diagnostic::new(
                Rule::BadDelay,
                Locus::Cell(CellId::from_index(i)),
                format!("delay {d} ps is not finite and non-negative"),
            ));
        }
    }
    out
}

/// Re-verifies the STA arrival times and the downstream-exposure labeling.
///
/// Precondition: [`check_annotation`] returned no findings (callers gate
/// on that; running this on corrupt delays would drown the real cause in
/// arithmetic noise).
#[must_use]
pub fn check_timing_graph(netlist: &Netlist, annotation: &DelayAnnotation) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let sta = StaReport::analyze(netlist, annotation);
    let downstream = StaReport::downstream_ps(netlist, annotation);

    // Arrival recurrence: arrival[out] = max(arrival[in]) + delay. This
    // implies monotonicity along every edge (delays are >= 0 by the
    // annotation pass).
    for (i, cell) in netlist.cells().iter().enumerate() {
        let id = CellId::from_index(i);
        let input_arrival = cell
            .inputs
            .iter()
            .map(|n| sta.arrival_ps(*n))
            .fold(0.0f64, f64::max);
        let expected = input_arrival + annotation.delay_ps(id);
        let actual = sta.arrival_ps(cell.output);
        if (actual - expected).abs() > EPS_PS {
            out.push(Diagnostic::new(
                Rule::ArrivalMonotone,
                Locus::Cell(id),
                format!(
                    "arrival {actual:.6} ps at {} does not equal worst input {input_arrival:.6} \
                     + delay {:.6}",
                    cell.output,
                    annotation.delay_ps(id)
                ),
            ));
        }
    }

    // Downstream as a longest-path labeling: dominance + tightness + zero
    // at sinks.
    let mut is_output = vec![false; netlist.net_count()];
    for &n in netlist.outputs() {
        is_output[n.index()] = true;
    }
    let mut read_by_cell = vec![false; netlist.net_count()];
    let mut best_edge = vec![f64::NEG_INFINITY; netlist.net_count()];
    for (i, cell) in netlist.cells().iter().enumerate() {
        let id = CellId::from_index(i);
        let through = annotation.delay_ps(id) + downstream[cell.output.index()];
        for input in &cell.inputs {
            let down_in = downstream[input.index()];
            if down_in + EPS_PS < through {
                out.push(Diagnostic::new(
                    Rule::DownstreamConsistency,
                    Locus::Net(*input),
                    format!("downstream {down_in:.6} ps below the {through:.6} ps path via {id}"),
                ));
            }
            read_by_cell[input.index()] = true;
            if through > best_edge[input.index()] {
                best_edge[input.index()] = through;
            }
        }
    }
    for index in 0..netlist.net_count() {
        let net = NetId::from_index(index);
        if read_by_cell[index] {
            // Tightness: the label must be achieved by some outgoing edge
            // (a primary-output connection contributes 0 and can only
            // lower the requirement, never raise it).
            let achieved = best_edge[index].max(if is_output[index] {
                0.0
            } else {
                f64::NEG_INFINITY
            });
            if (downstream[index] - achieved).abs() > EPS_PS {
                out.push(Diagnostic::new(
                    Rule::DownstreamConsistency,
                    Locus::Net(net),
                    format!(
                        "downstream {:.6} ps is not achieved by any outgoing edge \
                         (best {achieved:.6})",
                        downstream[index]
                    ),
                ));
            }
        } else if downstream[index].abs() > EPS_PS {
            // Sinks (nets no cell reads) must carry zero exposure.
            out.push(Diagnostic::new(
                Rule::DownstreamConsistency,
                Locus::Net(net),
                format!(
                    "net is read by no cell but carries downstream {:.6} ps",
                    downstream[index]
                ),
            ));
        }
    }

    // Critical identities. The critical delay is defined over the primary
    // outputs, so it must equal their worst arrival directly. The labeling
    // identity `max(arrival + downstream) = max sink arrival` must instead
    // range over *all* complete paths: synthesized netlists may carry dead
    // cells (warned above) whose paths end at non-output sinks beyond the
    // output-defined critical delay.
    let worst_output = netlist
        .outputs()
        .iter()
        .map(|&n| sta.arrival_ps(n))
        .fold(0.0f64, f64::max);
    if (worst_output - sta.critical_ps()).abs() > EPS_PS {
        out.push(Diagnostic::new(
            Rule::CriticalIdentity,
            Locus::Design,
            format!(
                "worst primary-output arrival is {worst_output:.6} ps but the reported \
                 critical delay is {:.6} ps",
                sta.critical_ps()
            ),
        ));
    }
    let worst_through = (0..netlist.net_count())
        .map(|i| sta.arrival_ps(NetId::from_index(i)) + downstream[i])
        .fold(0.0f64, f64::max);
    let worst_sink = (0..netlist.net_count())
        .filter(|&i| !read_by_cell[i])
        .map(|i| sta.arrival_ps(NetId::from_index(i)))
        .fold(0.0f64, f64::max);
    if (worst_through - worst_sink).abs() > EPS_PS {
        out.push(Diagnostic::new(
            Rule::CriticalIdentity,
            Locus::Design,
            format!(
                "max(arrival + downstream) = {worst_through:.6} ps but the worst complete \
                 path ends at {worst_sink:.6} ps"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::{build_exact, AdderTopology};

    #[test]
    fn nominal_annotations_pass() {
        for topology in [AdderTopology::Ripple, AdderTopology::KoggeStone] {
            let adder = build_exact(16, topology);
            let ann = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
            assert!(check_annotation(adder.netlist(), &ann).is_empty());
            let findings = check_timing_graph(adder.netlist(), &ann);
            assert!(findings.is_empty(), "{topology:?}: {findings:?}");
        }
    }

    #[test]
    fn corrupt_delay_is_flagged_with_locus() {
        let adder = build_exact(8, AdderTopology::Ripple);
        let ann = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
        let mut delays = ann.as_slice().to_vec();
        delays[3] = -5.0;
        let bad = DelayAnnotation::from_delays_unchecked(delays);
        let findings = check_annotation(adder.netlist(), &bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::BadDelay);
        assert_eq!(findings[0].locus, Locus::Cell(CellId::from_index(3)));
    }

    #[test]
    fn nan_delay_is_flagged() {
        let adder = build_exact(4, AdderTopology::Ripple);
        let ann = DelayAnnotation::nominal(adder.netlist(), &CellLibrary::industrial_65nm());
        let mut delays = ann.as_slice().to_vec();
        delays[0] = f64::NAN;
        let bad = DelayAnnotation::from_delays_unchecked(delays);
        assert!(check_annotation(adder.netlist(), &bad)
            .iter()
            .any(|d| d.rule == Rule::BadDelay));
    }

    #[test]
    fn short_annotation_is_a_coverage_error() {
        let adder = build_exact(4, AdderTopology::Ripple);
        let bad = DelayAnnotation::from_delays(vec![1.0, 2.0]);
        let findings = check_annotation(adder.netlist(), &bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::AnnotationCoverage);
    }
}
