//! Property tests of the Pareto-front container and its dominance order:
//! dominance is a strict partial order (irreflexive, antisymmetric,
//! transitive), merge is commutative, and the emitted front is invariant
//! under insertion order.

use isa_explore::{FrontEntry, ParetoFront};
use isa_metrics::ObjectiveVector;
use proptest::prelude::*;

/// Small integer-valued components so random vectors frequently tie and
/// dominate each other (the interesting cases).
fn vector_from(seed: (u8, u8, u8)) -> ObjectiveVector {
    ObjectiveVector::new(
        f64::from(seed.0 % 5),
        f64::from(seed.1 % 5),
        f64::from(seed.2 % 5),
    )
}

fn entries_from(seeds: &[(u8, u8, u8)]) -> Vec<FrontEntry<usize>> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| FrontEntry {
            objectives: vector_from(s),
            key: format!("p{i}"),
            payload: i,
        })
        .collect()
}

/// Deterministic rendering of a front for equality checks.
fn render(front: &ParetoFront<usize>) -> Vec<(String, [u64; 3])> {
    front
        .entries()
        .iter()
        .map(|e| {
            let [a, b, c] = e.objectives.components();
            (e.key.clone(), [a.to_bits(), b.to_bits(), c.to_bits()])
        })
        .collect()
}

proptest! {
    /// Dominance is irreflexive and antisymmetric.
    #[test]
    fn dominance_antisymmetry(a in any::<(u8, u8, u8)>(), b in any::<(u8, u8, u8)>()) {
        let (va, vb) = (vector_from(a), vector_from(b));
        prop_assert!(!va.dominates(&va));
        prop_assert!(!(va.dominates(&vb) && vb.dominates(&va)));
    }

    /// Dominance is transitive.
    #[test]
    fn dominance_transitivity(
        a in any::<(u8, u8, u8)>(),
        b in any::<(u8, u8, u8)>(),
        c in any::<(u8, u8, u8)>(),
    ) {
        let (va, vb, vc) = (vector_from(a), vector_from(b), vector_from(c));
        if va.dominates(&vb) && vb.dominates(&vc) {
            prop_assert!(va.dominates(&vc));
        }
    }

    /// The emitted front does not depend on insertion order: inserting the
    /// same entries forward, reversed, or rotated yields byte-identical
    /// fronts.
    #[test]
    fn insertion_order_invariance(
        seeds in prop::collection::vec(any::<(u8, u8, u8)>(), 1..24),
        rotation in any::<u8>(),
    ) {
        let entries = entries_from(&seeds);
        let mut forward = ParetoFront::new();
        for e in entries.clone() {
            forward.insert(e);
        }
        let mut reversed = ParetoFront::new();
        for e in entries.iter().rev().cloned() {
            reversed.insert(e);
        }
        let mut rotated = ParetoFront::new();
        let pivot = rotation as usize % entries.len();
        for e in entries[pivot..].iter().chain(&entries[..pivot]).cloned() {
            rotated.insert(e);
        }
        prop_assert_eq!(render(&forward), render(&reversed));
        prop_assert_eq!(render(&forward), render(&rotated));
    }

    /// merge(A, B) == merge(B, A), and both equal the front of the union.
    #[test]
    fn merge_commutativity(
        left in prop::collection::vec(any::<(u8, u8, u8)>(), 0..12),
        right in prop::collection::vec(any::<(u8, u8, u8)>(), 0..12),
    ) {
        // Distinct key namespaces so the two sides never collide.
        let mut a = ParetoFront::new();
        for (i, &s) in left.iter().enumerate() {
            a.insert(FrontEntry { objectives: vector_from(s), key: format!("l{i}"), payload: i });
        }
        let mut b = ParetoFront::new();
        for (i, &s) in right.iter().enumerate() {
            b.insert(FrontEntry { objectives: vector_from(s), key: format!("r{i}"), payload: i });
        }
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b.clone();
        ba.merge(a.clone());
        prop_assert_eq!(render(&ab), render(&ba));

        // And both equal the front built from all entries directly.
        let mut union = ParetoFront::new();
        for (i, &s) in left.iter().enumerate() {
            union.insert(FrontEntry { objectives: vector_from(s), key: format!("l{i}"), payload: i });
        }
        for (i, &s) in right.iter().enumerate() {
            union.insert(FrontEntry { objectives: vector_from(s), key: format!("r{i}"), payload: i });
        }
        prop_assert_eq!(render(&ab), render(&union));
    }

    /// Front invariant: entries are mutually non-dominated, and every
    /// inserted entry is either on the front or strictly dominated by a
    /// front entry.
    #[test]
    fn front_is_maximal_set(seeds in prop::collection::vec(any::<(u8, u8, u8)>(), 1..24)) {
        let entries = entries_from(&seeds);
        let mut front = ParetoFront::new();
        for e in entries.clone() {
            front.insert(e);
        }
        for (i, a) in front.entries().iter().enumerate() {
            for (j, b) in front.entries().iter().enumerate() {
                if i != j {
                    prop_assert!(!a.objectives.dominates(&b.objectives));
                }
            }
        }
        for e in &entries {
            let on_front = front.entries().iter().any(|f| f.key == e.key);
            prop_assert!(
                on_front || front.dominates(&e.objectives),
                "dropped entry {} is not dominated",
                e.key
            );
        }
    }
}
