//! The two-tier candidate evaluator.
//!
//! **Tier A (structural, no gate-level simulation of the workload):** for
//! each candidate design the evaluator synthesizes once (memoized in the
//! engine's artifact cache), reads the die's critical delay (topological,
//! or the tighter false-path-aware proven bound under
//! [`EvalSettings::proven_sta`]), characterizes energy per addition from a
//! short switching-activity run at the safe clock, and computes the
//! design's **exact structural error in objective units**: for stream
//! workloads the behavioural model runs over the actual operand stream
//! (structural-only, so a few plane passes per design) and yields the
//! very RMS-relative-error the objective measures, with zero timing
//! error; for application workloads the behavioural kernel run yields the
//! exact structural PSNR ceiling. The exact full-input-space error RMS
//! (`[isa_prove::ErrorDistribution]`, model counting over all `2^(2W)`
//! operand pairs) is recorded alongside for reports — it replaced the
//! approximate analytical RMS as the design-level characterization and
//! covers every design, including speculate-at-1 and overlapping
//! compensation, which the analytical model could not. Candidates whose
//! structural bound is already dominated by a *certain* configuration
//! (one provably free of timing errors: clock period above the die's
//! critical delay) are pruned without ever simulating them.
//!
//! **Tier B (simulation):** surviving candidates are scored by the engine
//! on the filtered gate-level backend over the full workload, yielding
//! exact (error, delay, energy) objective vectors.
//!
//! ## Pruning soundness
//!
//! Two pruning rules apply, both against *certain* references only:
//!
//! * **Same design, certain at a strictly faster clock:** the candidate
//!   has the identical structural error, a slower clock, and higher
//!   energy (more leakage per op) — it is dominated outright. This
//!   collapses the clock column of every design that stays timing-safe
//!   at deep clock-period reductions.
//! * **Cross design:** a certain reference whose exact structural bound
//!   is no worse than the candidate's, no slower and no more energy
//!   (with at least one strict), optionally widened by the
//!   [`EvalSettings::safety`] margin. Because the bounds are computed on
//!   the *actual* workload, this rule applies to every stream —
//!   narrow-operand streams (sine/walk/accumulate) included — where the
//!   old analytical bound was only validated for uniform operands.
//!
//! A pruned candidate can never reach the Pareto front, under **one**
//! documented assumption:
//!
//! 1. **Timing errors do not reduce error:** a candidate's simulated error
//!    is never below its structural-only error. For kernel workloads this
//!    is the overclocking-monotonicity the apps tests pin (PSNR at an
//!    overclocked point never exceeds the structural ceiling). A certain
//!    reference has zero timing error by construction, so its measured
//!    objective *equals* its structural bound; a candidate's measured
//!    objective is at least its structural bound. Reference bound ≤
//!    candidate bound therefore implies reference measurement ≤ candidate
//!    measurement — no model margin is needed, and the default
//!    [`EvalSettings::safety`] is 1.0. (The pre-PR8 evaluator bounded
//!    streams with the *approximate* analytical RMS instead, which forced
//!    a ≥ 2× margin and restricted cross-design pruning to uniform
//!    streams; the exact-on-stream bound retired both caveats. The
//!    timing side still rests on assumption 1 — the structural side rests
//!    on none.) The margin-1.0/margin-2.0 front equality is pinned by a
//!    test, and the `--bench-json` front-equality check reruns the search
//!    without the pre-filter and fails on any difference.
//!
//! Baseline configurations (anything at the safe clock, and the exact
//! adder at every clock) are exempt from pruning so quality queries and
//! the combined-thesis comparison always rest on measured numbers. The
//! with/without-pre-filter benchmark (`explore --bench-json`) additionally
//! checks that both paths produce identical fronts.

use std::collections::HashMap;
use std::sync::Arc;

use isa_apps::{run_behavioural, run_exact, run_on_substrate, score, Kernel, KernelRun};
use isa_core::{
    structural_errors, Adder, CombinedErrorStats, Design, ExactAdder, OutputTriple, Substrate,
};
use isa_engine::{Engine, ExperimentConfig, GateLevelSubstrate, WorkloadSpec};
use isa_metrics::ObjectiveVector;
use isa_netlist::cell::CellLibrary;
use isa_prove::ErrorDistribution;
use isa_timing_sim::measure_clocked_batch;
use isa_workloads::{take_pairs, UniformWorkload};

use crate::space::DesignPoint;

/// What the error objective measures.
#[derive(Clone)]
pub enum EvalMode {
    /// Joint RMS relative error (percent) over an operand stream.
    Stream {
        /// Workload name for reports.
        name: String,
        /// The cycle-ordered operand pairs every candidate sees.
        inputs: Arc<Vec<(u64, u64)>>,
    },
    /// Negated PSNR (dB) of an application kernel, so quality-constrained
    /// queries ("≥ 30 dB on Sobel") become objective-space constraints.
    Kernel {
        /// The kernel whose additions run through each candidate.
        kernel: Arc<dyn Kernel>,
    },
}

impl EvalMode {
    /// A uniform stream of `cycles` operand pairs (the default context).
    #[must_use]
    pub fn uniform_stream(width: u32, cycles: usize, seed: u64) -> Self {
        Self::Stream {
            name: "uniform".to_owned(),
            inputs: Arc::new(take_pairs(UniformWorkload::new(width, seed), cycles)),
        }
    }

    /// The workload label reports carry.
    #[must_use]
    pub fn workload_name(&self) -> String {
        match self {
            Self::Stream { name, .. } => name.clone(),
            Self::Kernel { kernel } => kernel.name().to_owned(),
        }
    }
}

/// Evaluator knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSettings {
    /// Run the structural pre-filter (tier A pruning). Disabling it
    /// simulates every candidate — same front, more wall time.
    pub prefilter: bool,
    /// Stream-mode pruning margin: a certain reference must beat a
    /// candidate's structural bound by this factor to prune it. Must be
    /// ≥ 1. The bound is exact on the workload (see the module docs), so
    /// 1.0 — the default — is already sound; raising it only makes the
    /// pre-filter more conservative.
    pub safety: f64,
    /// Cycles of the switching-activity run characterizing each design's
    /// energy per addition.
    pub energy_cycles: usize,
    /// Tighten each die's critical delay with the symbolic false-path
    /// proof ([`isa_engine::DesignContext::proven_critical_ps`]): clock
    /// periods above the *proven* settle bound are certain even when they
    /// undercut the topological one. Off by default — the proof costs a
    /// BDD sweep per design at first use.
    pub proven_sta: bool,
}

impl Default for EvalSettings {
    fn default() -> Self {
        Self {
            prefilter: true,
            safety: 1.0,
            energy_cycles: 512,
            proven_sta: false,
        }
    }
}

/// Per-design tier-A characterization (clock independent).
#[derive(Debug, Clone)]
struct DesignInfo {
    area: f64,
    die_critical_ps: f64,
    dyn_fj_per_op: f64,
    leak_fj_per_op_safe: f64,
    /// Exact structural error in objective units: the behavioural model
    /// run over the actual workload (stream: joint RMS relative-error
    /// percent with zero timing error; kernel: negated structural PSNR
    /// dB). This *is* the candidate's objective when no timing errors
    /// occur, for every design — guess-One and overlapping compensation
    /// included.
    model_error: f64,
    /// Exact full-input-space structural error RMS from the symbolic
    /// [`isa_prove::ErrorDistribution`] (model counting over all
    /// `2^(2W)` operand pairs) — the workload-independent design
    /// characterization reports carry.
    exact_struct_rms: f64,
}

/// A configuration provably free of timing errors, used as a pruning
/// reference.
#[derive(Debug, Clone, Copy)]
struct CertainRef {
    design: Design,
    clock_ps: f64,
    energy_fj: f64,
    model_error: f64,
}

/// One evaluated (or pruned) candidate.
#[derive(Debug, Clone)]
pub struct CandidateEval {
    /// The candidate.
    pub point: DesignPoint,
    /// Absolute clock period in picoseconds.
    pub clock_ps: f64,
    /// Synthesized area in NAND2-equivalent units.
    pub area: f64,
    /// The die's critical delay (process variation included):
    /// topological, or the false-path-aware proven settle bound under
    /// [`EvalSettings::proven_sta`].
    pub die_critical_ps: f64,
    /// True when the clock period exceeds the die critical delay: the
    /// configuration cannot produce timing errors.
    pub timing_safe: bool,
    /// Energy per addition at this clock (dynamic + leakage scaled to the
    /// shortened period), femtojoules.
    pub energy_fj: f64,
    /// Tier-A structural error in objective units, exact on the actual
    /// workload (stream: joint RMS relative-error percent with zero
    /// timing error; kernel: negated structural PSNR dB). Equals the
    /// simulated error whenever the candidate is timing-safe.
    pub model_error: f64,
    /// Exact full-input-space structural error RMS (absolute output
    /// units) from the symbolic error distribution — workload-independent
    /// design characterization for reports.
    pub exact_struct_rms: f64,
    /// True if tier A pruned the candidate (no simulation performed).
    pub pruned: bool,
    /// Simulated error objective (`None` when pruned).
    pub error: Option<f64>,
    /// Quality in dB — SNR of the joint relative error (stream) or PSNR
    /// (kernel); infinite when error-free. `None` when pruned.
    pub quality_db: Option<f64>,
}

impl CandidateEval {
    /// The exact objective vector, for simulated candidates.
    #[must_use]
    pub fn objectives(&self) -> Option<ObjectiveVector> {
        self.error
            .map(|e| ObjectiveVector::new(e, self.clock_ps, self.energy_fj))
    }

    /// The optimistic objective vector every candidate has (structural
    /// error bound, exact delay and energy) — what tier-A pruning
    /// compares, and what the evolutionary search ranks pruned candidates
    /// by. The bound is exact on the workload for every design, so it
    /// ranks faithfully.
    #[must_use]
    pub fn bound_objectives(&self) -> ObjectiveVector {
        ObjectiveVector::new(self.model_error, self.clock_ps, self.energy_fj)
    }
}

/// The two-tier evaluator (see the module docs).
pub struct Evaluator<'e> {
    engine: &'e Engine,
    config: ExperimentConfig,
    mode: EvalMode,
    settings: EvalSettings,
    /// Per-design tier-A info; `Err` records an infeasible design (cannot
    /// meet the synthesis constraint).
    design_info: HashMap<Design, Result<DesignInfo, String>>,
    /// Kernel mode: the exact reference output and its PSNR peak.
    kernel_reference: Option<(KernelRun, u64)>,
    certain_refs: Vec<CertainRef>,
    /// Labels of designs that cannot meet the timing constraint.
    pub infeasible: Vec<String>,
    /// Candidates pruned by tier A so far.
    pub pruned_count: usize,
    /// Candidates simulated by tier B so far.
    pub simulated_count: usize,
}

impl<'e> Evaluator<'e> {
    /// Creates an evaluator over one workload context.
    ///
    /// # Panics
    ///
    /// Panics if `settings.safety < 1.0` (a sub-unity margin would prune
    /// candidates the model cannot rule out).
    #[must_use]
    pub fn new(
        engine: &'e Engine,
        config: ExperimentConfig,
        mode: EvalMode,
        settings: EvalSettings,
    ) -> Self {
        assert!(settings.safety >= 1.0, "pruning safety factor must be >= 1");
        let kernel_reference = match &mode {
            EvalMode::Kernel { kernel } => {
                let reference = run_exact(kernel.as_ref());
                let peak = reference.output.iter().copied().max().unwrap_or(1).max(1);
                Some((reference, peak))
            }
            EvalMode::Stream { .. } => None,
        };
        Self {
            engine,
            config,
            mode,
            settings,
            design_info: HashMap::new(),
            kernel_reference,
            certain_refs: Vec::new(),
            infeasible: Vec::new(),
            pruned_count: 0,
            simulated_count: 0,
        }
    }

    /// The experiment configuration candidates run under.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The workload context.
    #[must_use]
    pub fn mode(&self) -> &EvalMode {
        &self.mode
    }

    /// Evaluates a batch of candidate points: tier-A characterization and
    /// pruning for all, tier-B simulation for the survivors (in parallel
    /// on the engine's worker pool). Results come back in input order;
    /// points whose design cannot meet the timing constraint are dropped
    /// (recorded in [`Evaluator::infeasible`]).
    pub fn evaluate(&mut self, points: &[DesignPoint]) -> Vec<CandidateEval> {
        // Tier A: per-design characterization, in first-use order.
        for p in points {
            self.ensure_design_info(&p.design);
        }

        // Optimistic candidate records.
        let mut evals: Vec<CandidateEval> = Vec::with_capacity(points.len());
        for p in points {
            let Some(Ok(info)) = self.design_info.get(&p.design) else {
                continue;
            };
            let clock_ps = self.config.clock_ps(p.cpr);
            // Mirror the filtered backend's tier-0 rule: strictly longer
            // than the die's critical delay means no event can cross the
            // sampling edge.
            let timing_safe = clock_ps > info.die_critical_ps;
            evals.push(CandidateEval {
                point: *p,
                clock_ps,
                area: info.area,
                die_critical_ps: info.die_critical_ps,
                timing_safe,
                energy_fj: info.dyn_fj_per_op + info.leak_fj_per_op_safe * (1.0 - p.cpr),
                model_error: info.model_error,
                exact_struct_rms: info.exact_struct_rms,
                pruned: false,
                error: None,
                quality_db: None,
            });
        }

        // Tier A pruning against certain references (previous batches and
        // this one).
        if self.settings.prefilter {
            // The stream bound is a nonnegative RMS percent, where a
            // user-raised margin is a meaningful conservatism knob; the
            // kernel bound is a negated-dB scale where scaling has no
            // meaning (and a sign flip would invert it) — there the exact
            // comparison is used directly.
            let safety = match &self.mode {
                EvalMode::Kernel { .. } => 1.0,
                EvalMode::Stream { .. } => self.settings.safety,
            };
            for e in &evals {
                if e.timing_safe {
                    self.certain_refs.push(CertainRef {
                        design: e.point.design,
                        clock_ps: e.clock_ps,
                        energy_fj: e.energy_fj,
                        model_error: e.model_error,
                    });
                }
            }
            for e in &mut evals {
                // Baselines stay measured: safe-clock points and the exact
                // adder anchor queries and the thesis comparison.
                if e.point.cpr == 0.0 || e.point.design.is_exact() {
                    continue;
                }
                let prunable = self.certain_refs.iter().any(|r| {
                    // Same design, certain at a strictly faster clock: the
                    // candidate's structural error is *identical* and its
                    // error can only grow with timing errors (assumption 1
                    // in the module docs), while delay and energy are
                    // strictly worse.
                    if r.design == e.point.design {
                        return r.clock_ps < e.clock_ps && r.energy_fj <= e.energy_fj;
                    }
                    // Cross-design: the reference's measured error equals
                    // its exact structural bound (it is certain), the
                    // candidate's is at least its bound (assumption 1), so
                    // bound dominance — equality included — carries over
                    // to the measured objectives. Requires strictness in
                    // at least one dimension, like Pareto dominance.
                    r.model_error * safety <= e.model_error
                        && r.clock_ps <= e.clock_ps
                        && r.energy_fj <= e.energy_fj
                        && (r.clock_ps < e.clock_ps
                            || r.energy_fj < e.energy_fj
                            || r.model_error * safety < e.model_error)
                });
                if prunable {
                    e.pruned = true;
                    self.pruned_count += 1;
                }
            }
        }

        // Tier B: simulate the survivors on the filtered backend.
        let survivors: Vec<usize> = (0..evals.len()).filter(|&i| !evals[i].pruned).collect();
        let sparse: Vec<(Design, f64)> = survivors
            .iter()
            .map(|&i| (evals[i].point.design, evals[i].point.cpr))
            .collect();
        let gate = GateLevelSubstrate::new(self.engine.cache(), self.config.clone());
        let workload = match &self.mode {
            EvalMode::Stream { name, inputs } => WorkloadSpec {
                name: name.clone(),
                inputs: Arc::clone(inputs),
            },
            EvalMode::Kernel { kernel } => WorkloadSpec {
                name: kernel.name().to_owned(),
                inputs: Arc::new(Vec::new()),
            },
        };
        let mode = self.mode.clone();
        let reference = self.kernel_reference.clone();
        let scored: Vec<(f64, f64)> =
            self.engine
                .map_points(&self.config, &sparse, &workload, |unit| match &mode {
                    EvalMode::Stream { .. } => {
                        let silvers = gate.run_batch(&unit.design, unit.clock_ps, unit.inputs);
                        let golds = unit.context().gold.add_batch(unit.inputs);
                        let exact = ExactAdder::new(unit.design.width());
                        let mut stats = CombinedErrorStats::new();
                        for ((&(a, b), &silver), &gold) in
                            unit.inputs.iter().zip(&silvers).zip(&golds)
                        {
                            stats.push(&OutputTriple::new(exact.add(a, b), gold, silver));
                        }
                        let (_, _, joint_pct) = stats.rms_re_percent();
                        (joint_pct, snr_db_of_rms_pct(joint_pct))
                    }
                    EvalMode::Kernel { kernel } => {
                        let (reference, peak) =
                            reference.as_ref().expect("kernel mode has a reference");
                        let run =
                            run_on_substrate(kernel.as_ref(), &gate, &unit.design, unit.clock_ps);
                        let psnr = score(reference, &run).psnr_db(*peak);
                        (-psnr, psnr)
                    }
                });
        for (&i, (error, quality)) in survivors.iter().zip(scored) {
            evals[i].error = Some(error);
            evals[i].quality_db = Some(quality);
        }
        self.simulated_count += survivors.len();
        evals
    }

    /// Builds (once) the tier-A characterization of a design.
    fn ensure_design_info(&mut self, design: &Design) {
        if self.design_info.contains_key(design) {
            return;
        }
        let info = self.characterize(design);
        if let Err(reason) = &info {
            self.infeasible.push(format!("{design}: {reason}"));
        }
        self.design_info.insert(*design, info);
    }

    /// Tier-A characterization: synthesis feasibility, die STA (false-path
    /// tightened under [`EvalSettings::proven_sta`]), energy per op at the
    /// safe clock, and the exact structural error bounds.
    fn characterize(&self, design: &Design) -> Result<DesignInfo, String> {
        // Fallible cache entry: arbitrary grid points (unlike the paper's
        // twelve) may miss the timing constraint, and the infallible
        // `Engine::context` would panic on them. Feasible designs
        // synthesize exactly once, straight into the shared cache.
        let ctx = self
            .engine
            .try_context(design, &self.config)
            .map_err(|e| e.to_string())?;
        let lib = CellLibrary::industrial_65nm();

        // Energy per addition from a short activity run at the safe clock.
        let cycles = self.settings.energy_cycles.max(1);
        let inputs = take_pairs(
            UniformWorkload::new(design.width(), self.config.workload_seed ^ 0xEC0),
            cycles,
        );
        let report = measure_clocked_batch(
            &ctx.synthesized.adder,
            &ctx.annotation,
            self.config.period_ps,
            &inputs,
            &lib,
        );
        let n = cycles as f64;

        let model_error = match &self.mode {
            // The behavioural model over the actual stream, silver = gold:
            // the exact structural side of the joint RMS relative error —
            // the very objective tier B measures, minus timing errors.
            EvalMode::Stream { inputs, .. } => {
                structural_errors(ctx.gold.as_ref(), inputs.iter().copied())
                    .rms_re_percent()
                    .2
            }
            EvalMode::Kernel { kernel } => {
                let (reference, peak) = self
                    .kernel_reference
                    .as_ref()
                    .expect("kernel mode has a reference");
                let run = run_behavioural(kernel.as_ref(), design);
                -score(reference, &run).psnr_db(*peak)
            }
        };
        // The symbolic full-space RMS (no PMF needed): milliseconds per
        // design at width 32, exact for every design.
        let exact_struct_rms = ErrorDistribution::analyze_with_pmf_cap(design, 0).rms_error();
        Ok(DesignInfo {
            area: ctx.synthesized.area,
            die_critical_ps: if self.settings.proven_sta {
                ctx.proven_critical_ps()
            } else {
                ctx.die_critical_ps()
            },
            dyn_fj_per_op: report.dynamic_fj / n,
            leak_fj_per_op_safe: report.leakage_fj / n,
            model_error,
            exact_struct_rms,
        })
    }
}

/// SNR (dB) of a joint RMS relative error expressed in percent; infinite
/// when error-free.
#[must_use]
pub fn snr_db_of_rms_pct(rms_pct: f64) -> f64 {
    if rms_pct <= 0.0 {
        f64::INFINITY
    } else {
        isa_metrics::snr_db(rms_pct / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_core::{IsaConfig, SpecGuess};

    fn point(quad: (u32, u32, u32, u32), cpr: f64) -> DesignPoint {
        DesignPoint {
            design: Design::Isa(IsaConfig::new(32, quad.0, quad.1, quad.2, quad.3).unwrap()),
            cpr,
        }
    }

    fn stream_evaluator(engine: &Engine, cycles: usize) -> Evaluator<'_> {
        let config = ExperimentConfig::default();
        let mode = EvalMode::uniform_stream(32, cycles, config.workload_seed);
        Evaluator::new(engine, config, mode, EvalSettings::default())
    }

    #[test]
    fn safe_points_have_zero_timing_excess_and_exact_structural_error() {
        let engine = Engine::with_threads(1);
        let mut eval = stream_evaluator(&engine, 1500);
        // (8,0,0,0) die crit 251 ps: safe at 0 % and 15 % CPR alike.
        let evals = eval.evaluate(&[point((8, 0, 0, 0), 0.0), point((8, 0, 0, 0), 0.15)]);
        assert_eq!(evals.len(), 2);
        assert!(evals[0].timing_safe && evals[1].timing_safe);
        // Safe at both clocks: identical measured error, cheaper energy
        // and faster clock at 15 % — the combined point dominates.
        assert_eq!(evals[0].error, evals[1].error);
        assert!(evals[1].energy_fj < evals[0].energy_fj);
        let (a, b) = (
            evals[1].objectives().unwrap(),
            evals[0].objectives().unwrap(),
        );
        assert!(a.dominates(&b));
    }

    #[test]
    fn prefilter_prunes_only_combined_points_and_keeps_fronts_identical() {
        let engine = Engine::with_threads(1);
        let config = ExperimentConfig::default();
        let points: Vec<DesignPoint> = [
            (8, 0, 0, 0),
            (8, 0, 0, 2),
            (8, 0, 0, 4),
            (16, 1, 0, 0),
            (16, 7, 0, 8),
        ]
        .into_iter()
        .flat_map(|q| [point(q, 0.0), point(q, 0.05), point(q, 0.10)])
        .collect();

        let mode = EvalMode::uniform_stream(32, 1200, config.workload_seed);
        let mut with = Evaluator::new(
            &engine,
            config.clone(),
            mode.clone(),
            EvalSettings::default(),
        );
        let with_evals = with.evaluate(&points);
        let mut without = Evaluator::new(
            &engine,
            config,
            mode,
            EvalSettings {
                prefilter: false,
                ..EvalSettings::default()
            },
        );
        let without_evals = without.evaluate(&points);
        assert_eq!(without.pruned_count, 0);

        // Pruning must never touch baselines.
        for e in &with_evals {
            if e.point.cpr == 0.0 {
                assert!(!e.pruned, "{} is a baseline", e.point.label());
            }
        }
        // Soundness: every pruned candidate's simulated objectives (from
        // the no-prefilter run) are strictly dominated by some simulated
        // candidate, so fronts agree.
        let all_objectives: Vec<ObjectiveVector> = without_evals
            .iter()
            .map(|e| e.objectives().unwrap())
            .collect();
        for (w, wo) in with_evals.iter().zip(&without_evals) {
            assert_eq!(w.point.label(), wo.point.label());
            if w.pruned {
                let objectives = wo.objectives().unwrap();
                assert!(
                    all_objectives.iter().any(|o| o.dominates(&objectives)),
                    "pruned {} would reach the front",
                    w.point.label()
                );
            } else {
                assert_eq!(w.error, wo.error, "{}", w.point.label());
            }
        }
    }

    #[test]
    fn infeasible_designs_are_reported_not_evaluated() {
        let engine = Engine::with_threads(1);
        // At a 100 ps constraint nothing in the library fits: every
        // design must be reported infeasible instead of panicking in the
        // artifact cache.
        let config = ExperimentConfig {
            period_ps: 100.0,
            ..ExperimentConfig::default()
        };
        let mode = EvalMode::uniform_stream(32, 64, config.workload_seed);
        let mut eval = Evaluator::new(&engine, config, mode, EvalSettings::default());
        let evals = eval.evaluate(&[
            point((8, 0, 0, 0), 0.0),
            DesignPoint {
                design: Design::Exact { width: 32 },
                cpr: 0.0,
            },
        ]);
        assert!(evals.is_empty());
        assert_eq!(eval.infeasible.len(), 2);
        assert!(eval.infeasible[0].contains("(8,0,0,0)"));
        assert!(eval.infeasible[1].contains("exact"));
    }

    #[test]
    fn kernel_mode_bound_is_the_structural_ceiling() {
        let engine = Engine::with_threads(1);
        let config = ExperimentConfig::default();
        let kernel: Arc<dyn Kernel> =
            Arc::from(isa_apps::kernel_by_name("conv2d-sobel", 1, config.workload_seed).unwrap());
        let mut eval = Evaluator::new(
            &engine,
            config,
            EvalMode::Kernel { kernel },
            EvalSettings::default(),
        );
        let evals = eval.evaluate(&[point((8, 0, 0, 4), 0.0), point((8, 0, 0, 4), 0.15)]);
        // Safe-clock PSNR equals the structural ceiling; overclocked PSNR
        // cannot exceed it.
        let ceiling = -evals[0].model_error;
        assert_eq!(evals[0].quality_db.unwrap(), ceiling);
        if let Some(q) = evals[1].quality_db {
            assert!(q <= ceiling + 1e-9);
        }
    }

    #[test]
    fn bounds_are_exact_for_every_design_including_former_model_gaps() {
        // Pre-PR8 the analytical model could not bound speculate-at-1 or
        // overlapping-compensation designs and fell back to an untrusted
        // 0. The stream bound is now the behavioural model on the actual
        // workload and the full-space RMS comes from the symbolic error
        // distribution — both exact for *every* design.
        let engine = Engine::with_threads(1);
        let mut eval = stream_evaluator(&engine, 600);
        let guess_one = DesignPoint {
            design: Design::Isa(IsaConfig::with_guess(32, 8, 0, 0, 0, SpecGuess::One).unwrap()),
            cpr: 0.0,
        };
        let overlapping = DesignPoint {
            // C + R = 9 > B = 8: overlapping compensation, feasible at
            // the default 300 ps constraint.
            design: Design::Isa(IsaConfig::new(32, 8, 0, 2, 7).unwrap()),
            cpr: 0.0,
        };
        let exact = DesignPoint {
            design: Design::Exact { width: 32 },
            cpr: 0.0,
        };
        let evals = eval.evaluate(&[guess_one, overlapping, exact]);
        assert_eq!(evals.len(), 3);
        for e in &evals[..2] {
            assert!(
                e.model_error > 0.0 && e.exact_struct_rms > 0.0,
                "{}: formerly out-of-domain design must get a real bound",
                e.point.label()
            );
            // Timing-safe at the safe clock: the measured error IS the
            // structural bound.
            assert!(e.timing_safe);
            assert!((e.error.unwrap() - e.model_error).abs() < 1e-9);
        }
        assert_eq!(evals[2].model_error, 0.0);
        assert_eq!(evals[2].exact_struct_rms, 0.0);
    }

    #[test]
    fn inaccurate_certain_reference_cannot_prune_accurate_candidates() {
        let engine = Engine::with_threads(1);
        let mut eval = stream_evaluator(&engine, 800);
        // Speculate-at-1 (8,0,0,0) was the pre-PR8 poison case: outside
        // the analytical model's domain, its bound fell back to 0, and
        // only a `model_trusted` flag kept it from pruning everything
        // behind it. Its bound is now its *exact* on-stream error — which
        // is enormous (every block boundary guesses a spurious carry) —
        // so the cross-design rule rejects it arithmetically, no flag
        // needed. It is cheap, timing-safe and evaluated FIRST.
        let inaccurate = DesignPoint {
            design: Design::Isa(IsaConfig::with_guess(32, 8, 0, 0, 0, SpecGuess::One).unwrap()),
            // Die crit 257.3 ps: certain at 10 % CPR (270 ps).
            cpr: 0.10,
        };
        let evals = eval.evaluate(&[
            inaccurate,
            point((16, 7, 0, 8), 0.10),
            point((16, 2, 1, 6), 0.05),
        ]);
        assert_eq!(evals.len(), 3);
        assert!(
            evals[0].timing_safe,
            "premise: the inaccurate design must be a certain reference"
        );
        for e in &evals[1..] {
            assert!(
                e.model_error < evals[0].model_error,
                "premise: {} must be more accurate than the reference",
                e.point.label()
            );
            assert!(
                !e.pruned,
                "{} was pruned by a less accurate reference",
                e.point.label()
            );
            assert!(e.error.is_some());
        }
    }

    #[test]
    fn margin_one_prunes_at_least_as_much_and_keeps_the_front() {
        // The exactness claim behind the PR: dropping the old 2x model
        // margin to the default 1.0 can only prune MORE (a superset), and
        // everything it prunes is still strictly dominated by a simulated
        // candidate — the front is unchanged.
        let engine = Engine::with_threads(1);
        let config = ExperimentConfig::default();
        let points: Vec<DesignPoint> = [(8, 0, 0, 0), (8, 0, 0, 4), (16, 7, 0, 8)]
            .into_iter()
            .flat_map(|q| [point(q, 0.0), point(q, 0.05), point(q, 0.10)])
            .collect();
        let mode = EvalMode::uniform_stream(32, 800, config.workload_seed);

        let run = |safety: f64, prefilter: bool| {
            let mut eval = Evaluator::new(
                &engine,
                config.clone(),
                mode.clone(),
                EvalSettings {
                    prefilter,
                    safety,
                    ..EvalSettings::default()
                },
            );
            let evals = eval.evaluate(&points);
            (evals, eval.pruned_count)
        };
        let (tight, pruned_tight) = run(1.0, true);
        let (wide, pruned_wide) = run(2.0, true);
        let (unpruned, zero) = run(1.0, false);
        assert_eq!(zero, 0);

        // Margin 1.0 pruning is a superset of margin 2.0 pruning.
        assert!(pruned_tight >= pruned_wide);
        for (t, w) in tight.iter().zip(&wide) {
            assert_eq!(t.point.label(), w.point.label());
            assert!(
                t.pruned || !w.pruned,
                "{} pruned at margin 2 but not at margin 1",
                t.point.label()
            );
        }
        // Soundness at margin 1.0: every pruned candidate's simulated
        // objectives (from the no-prefilter run) are strictly dominated
        // by some simulated candidate — the front is identical.
        let all_objectives: Vec<ObjectiveVector> =
            unpruned.iter().map(|e| e.objectives().unwrap()).collect();
        for (t, u) in tight.iter().zip(&unpruned) {
            if t.pruned {
                let objectives = u.objectives().unwrap();
                assert!(
                    all_objectives.iter().any(|o| o.dominates(&objectives)),
                    "pruned {} would reach the front",
                    t.point.label()
                );
            } else {
                assert_eq!(t.error, u.error, "{}", t.point.label());
            }
        }
    }

    #[test]
    fn proven_sta_tightens_die_critical_without_changing_safe_errors() {
        let engine = Engine::with_threads(1);
        let config = ExperimentConfig::default();
        let mode = EvalMode::uniform_stream(32, 400, config.workload_seed);
        let run = |proven_sta: bool| {
            let mut eval = Evaluator::new(
                &engine,
                config.clone(),
                mode.clone(),
                EvalSettings {
                    proven_sta,
                    prefilter: false,
                    ..EvalSettings::default()
                },
            );
            eval.evaluate(&[point((8, 2, 1, 4), 0.0)]).remove(0)
        };
        let topo = run(false);
        let proven = run(true);
        // The proof can only tighten (or match) the topological bound,
        // and tier-B simulation is untouched by it.
        assert!(proven.die_critical_ps <= topo.die_critical_ps);
        assert!(proven.die_critical_ps > 0.0);
        assert_eq!(proven.error, topo.error);
    }

    #[test]
    fn snr_conversion_handles_error_free() {
        assert_eq!(snr_db_of_rms_pct(0.0), f64::INFINITY);
        assert!((snr_db_of_rms_pct(1.0) - 40.0).abs() < 1e-9);
    }
}
