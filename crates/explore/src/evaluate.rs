//! The two-tier candidate evaluator.
//!
//! **Tier A (analytical, no gate-level simulation of the workload):** for
//! each candidate design the evaluator synthesizes once (memoized in the
//! engine's artifact cache), reads the die's exact critical delay from the
//! classifier's femtosecond STA, characterizes energy per addition from a
//! short switching-activity run at the safe clock, and computes a cheap
//! *optimistic error bound* — the analytical structural-error model
//! ([`isa_core::DesignAnalysis`], validated against exhaustive behavioural
//! statistics in `crates/core/tests/analysis_exhaustive.rs`) for stream
//! workloads, or the behavioural (structural-only) kernel quality for
//! application workloads. Candidates whose optimistic bound is already
//! strictly dominated by a *certain* configuration (one provably free of
//! timing errors: clock period above the die's critical delay) are pruned
//! without ever simulating them.
//!
//! **Tier B (simulation):** surviving candidates are scored by the engine
//! on the filtered gate-level backend over the full workload, yielding
//! exact (error, delay, energy) objective vectors.
//!
//! ## Pruning soundness
//!
//! Two pruning rules apply, both against *certain* references only:
//!
//! * **Same design, certain at a strictly faster clock:** the candidate
//!   has the identical structural error, a slower clock, and higher
//!   energy (more leakage per op) — it is dominated outright. This
//!   collapses the clock column of every design that stays timing-safe
//!   at deep clock-period reductions.
//! * **Cross design:** a certain reference at least `safety`× more
//!   accurate by the analytical model, no slower and no more energy —
//!   applied only where the model's ordering is validated: the uniform
//!   stream workload and kernel mode (whose ceilings are workload-exact).
//!   Narrow-operand streams (sine/walk/accumulate) sensitize carry chains
//!   very differently from uniform operands, so there tier A uses the
//!   same-design rule alone.
//!
//! A pruned candidate can never reach the Pareto front, under two
//! documented model assumptions:
//!
//! 1. **Timing errors do not reduce error:** a candidate's simulated error
//!    is never below its structural-only error. For kernel workloads this
//!    is the overclocking-monotonicity the apps tests pin (PSNR at an
//!    overclocked point never exceeds the structural ceiling), and the
//!    structural ceiling is computed *exactly* on the actual workload, so
//!    kernel-mode pruning needs no margin. For stream workloads the bound
//!    is the analytical RMS under uniform operands, so
//! 2. **the safety factor** ([`EvalSettings::safety`], default 2.0,
//!    clamped up to [`MIN_CROSS_DESIGN_SAFETY`]) absorbs the documented
//!    cross-boundary independence approximation of the analytical RMS
//!    (validated to stay within [0.7, 1.35] of exhaustive truth): a
//!    candidate is pruned only when a certain configuration is at least
//!    `safety`× more accurate by the analytical model *and* no worse on
//!    delay and energy. The validation band is in absolute-RMS units
//!    while the objective is relative RMS, so the margin is backed
//!    empirically too: the `--bench-json` front-equality check reruns the
//!    search without the pre-filter and fails on any difference.
//!
//! Baseline configurations (anything at the safe clock, and the exact
//! adder at every clock) are exempt from pruning so quality queries and
//! the combined-thesis comparison always rest on measured numbers. The
//! with/without-pre-filter benchmark (`explore --bench-json`) additionally
//! checks that both paths produce identical fronts.

use std::collections::HashMap;
use std::sync::Arc;

use isa_apps::{run_behavioural, run_exact, run_on_substrate, score, Kernel, KernelRun};
use isa_core::{
    Adder, CombinedErrorStats, Design, DesignAnalysis, ExactAdder, OutputTriple, SpecGuess,
    Substrate,
};
use isa_engine::{Engine, ExperimentConfig, GateLevelSubstrate, WorkloadSpec};
use isa_metrics::ObjectiveVector;
use isa_netlist::cell::CellLibrary;
use isa_timing_sim::measure_clocked_batch;
use isa_workloads::{take_pairs, UniformWorkload};

use crate::space::DesignPoint;

/// What the error objective measures.
#[derive(Clone)]
pub enum EvalMode {
    /// Joint RMS relative error (percent) over an operand stream.
    Stream {
        /// Workload name for reports.
        name: String,
        /// The cycle-ordered operand pairs every candidate sees.
        inputs: Arc<Vec<(u64, u64)>>,
    },
    /// Negated PSNR (dB) of an application kernel, so quality-constrained
    /// queries ("≥ 30 dB on Sobel") become objective-space constraints.
    Kernel {
        /// The kernel whose additions run through each candidate.
        kernel: Arc<dyn Kernel>,
    },
}

impl EvalMode {
    /// A uniform stream of `cycles` operand pairs (the default context).
    #[must_use]
    pub fn uniform_stream(width: u32, cycles: usize, seed: u64) -> Self {
        Self::Stream {
            name: "uniform".to_owned(),
            inputs: Arc::new(take_pairs(UniformWorkload::new(width, seed), cycles)),
        }
    }

    /// The workload label reports carry.
    #[must_use]
    pub fn workload_name(&self) -> String {
        match self {
            Self::Stream { name, .. } => name.clone(),
            Self::Kernel { kernel } => kernel.name().to_owned(),
        }
    }
}

/// The smallest admissible cross-design safety factor: the analytical RMS
/// is validated to diverge by at most [0.7, 1.35] from exhaustive truth
/// across arbitrary valid configurations
/// (`crates/core/tests/analysis_exhaustive.rs`'s property band), so two
/// modelled values only order the true values beyond a ratio of
/// 1.35 / 0.7. [`EvalSettings::safety`] values below this are clamped up
/// to it. The band bounds *absolute*-RMS divergence while the objective
/// is relative RMS, so the margin remains partly empirical — which is why
/// the `explore --bench-json` front-equality check (run in CI at the
/// BENCH_PR5 counts) backs it at run time.
pub const MIN_CROSS_DESIGN_SAFETY: f64 = 1.35 / 0.7;

/// Evaluator knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSettings {
    /// Run the analytical pre-filter (tier A pruning). Disabling it
    /// simulates every candidate — same front, more wall time.
    pub prefilter: bool,
    /// Stream-mode pruning margin: a certain reference must beat a
    /// candidate's analytical bound by this factor to prune it. Must be
    /// ≥ 1; values below [`MIN_CROSS_DESIGN_SAFETY`] are clamped up to it
    /// (the model cannot order true errors below that ratio).
    pub safety: f64,
    /// Cycles of the switching-activity run characterizing each design's
    /// energy per addition.
    pub energy_cycles: usize,
}

impl Default for EvalSettings {
    fn default() -> Self {
        Self {
            prefilter: true,
            safety: 2.0,
            energy_cycles: 512,
        }
    }
}

/// Per-design tier-A characterization (clock independent).
#[derive(Debug, Clone)]
struct DesignInfo {
    area: f64,
    die_critical_ps: f64,
    dyn_fj_per_op: f64,
    leak_fj_per_op_safe: f64,
    /// Optimistic error bound in objective units (stream: analytical
    /// structural RMS ≈ relative-error percent; kernel: negated structural
    /// PSNR dB — exact on the actual workload, so kernel-mode pruning
    /// applies no safety factor).
    model_error: f64,
    /// Whether the bound can serve as a *reference* in cross-design
    /// pruning. Designs outside the analytical model's domain get a
    /// conservative bound of 0 — sound for the candidate role (never
    /// pruned) but meaningless as a reference (their true error may be
    /// anything), so they must never prune others.
    model_trusted: bool,
}

/// A configuration provably free of timing errors, used as a pruning
/// reference.
#[derive(Debug, Clone, Copy)]
struct CertainRef {
    design: Design,
    clock_ps: f64,
    energy_fj: f64,
    model_error: f64,
    /// False when the design's error bound is a domain fallback (see
    /// [`DesignInfo::model_trusted`]): such references may only prune via
    /// the exact same-design rule, never the cross-design one.
    trusted_error: bool,
}

/// One evaluated (or pruned) candidate.
#[derive(Debug, Clone)]
pub struct CandidateEval {
    /// The candidate.
    pub point: DesignPoint,
    /// Absolute clock period in picoseconds.
    pub clock_ps: f64,
    /// Synthesized area in NAND2-equivalent units.
    pub area: f64,
    /// The die's exact critical delay (process variation included).
    pub die_critical_ps: f64,
    /// True when the clock period exceeds the die critical delay: the
    /// configuration cannot produce timing errors.
    pub timing_safe: bool,
    /// Energy per addition at this clock (dynamic + leakage scaled to the
    /// shortened period), femtojoules.
    pub energy_fj: f64,
    /// Tier-A optimistic error bound in objective units (stream:
    /// analytical structural RMS ≈ relative-error percent; kernel:
    /// negated structural PSNR dB, exact on the actual workload).
    pub model_error: f64,
    /// True when the bound is genuinely modelled (false for designs
    /// outside the analytical model's domain, whose bound is a
    /// conservative 0 fallback).
    pub model_trusted: bool,
    /// True if tier A pruned the candidate (no simulation performed).
    pub pruned: bool,
    /// Simulated error objective (`None` when pruned).
    pub error: Option<f64>,
    /// Quality in dB — SNR of the joint relative error (stream) or PSNR
    /// (kernel); infinite when error-free. `None` when pruned.
    pub quality_db: Option<f64>,
}

impl CandidateEval {
    /// The exact objective vector, for simulated candidates.
    #[must_use]
    pub fn objectives(&self) -> Option<ObjectiveVector> {
        self.error
            .map(|e| ObjectiveVector::new(e, self.clock_ps, self.energy_fj))
    }

    /// The optimistic objective vector every candidate has (bound error,
    /// exact delay and energy) — what tier-A pruning compares, and what
    /// the evolutionary search ranks pruned candidates by. An untrusted
    /// bound ranks as *infinitely bad* error, not 0: a domain-fallback
    /// zero must keep a candidate unprunable, but it must not make the
    /// search breed around a design whose true error is unmodelled.
    #[must_use]
    pub fn bound_objectives(&self) -> ObjectiveVector {
        let error = if self.model_trusted {
            self.model_error
        } else {
            f64::INFINITY
        };
        ObjectiveVector::new(error, self.clock_ps, self.energy_fj)
    }
}

/// The two-tier evaluator (see the module docs).
pub struct Evaluator<'e> {
    engine: &'e Engine,
    config: ExperimentConfig,
    mode: EvalMode,
    settings: EvalSettings,
    /// Per-design tier-A info; `Err` records an infeasible design (cannot
    /// meet the synthesis constraint).
    design_info: HashMap<Design, Result<DesignInfo, String>>,
    /// Kernel mode: the exact reference output and its PSNR peak.
    kernel_reference: Option<(KernelRun, u64)>,
    certain_refs: Vec<CertainRef>,
    /// Labels of designs that cannot meet the timing constraint.
    pub infeasible: Vec<String>,
    /// Candidates pruned by tier A so far.
    pub pruned_count: usize,
    /// Candidates simulated by tier B so far.
    pub simulated_count: usize,
}

impl<'e> Evaluator<'e> {
    /// Creates an evaluator over one workload context.
    ///
    /// # Panics
    ///
    /// Panics if `settings.safety < 1.0` (a sub-unity margin would prune
    /// candidates the model cannot rule out).
    #[must_use]
    pub fn new(
        engine: &'e Engine,
        config: ExperimentConfig,
        mode: EvalMode,
        settings: EvalSettings,
    ) -> Self {
        assert!(settings.safety >= 1.0, "pruning safety factor must be >= 1");
        let kernel_reference = match &mode {
            EvalMode::Kernel { kernel } => {
                let reference = run_exact(kernel.as_ref());
                let peak = reference.output.iter().copied().max().unwrap_or(1).max(1);
                Some((reference, peak))
            }
            EvalMode::Stream { .. } => None,
        };
        Self {
            engine,
            config,
            mode,
            settings,
            design_info: HashMap::new(),
            kernel_reference,
            certain_refs: Vec::new(),
            infeasible: Vec::new(),
            pruned_count: 0,
            simulated_count: 0,
        }
    }

    /// The experiment configuration candidates run under.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The workload context.
    #[must_use]
    pub fn mode(&self) -> &EvalMode {
        &self.mode
    }

    /// Evaluates a batch of candidate points: tier-A characterization and
    /// pruning for all, tier-B simulation for the survivors (in parallel
    /// on the engine's worker pool). Results come back in input order;
    /// points whose design cannot meet the timing constraint are dropped
    /// (recorded in [`Evaluator::infeasible`]).
    pub fn evaluate(&mut self, points: &[DesignPoint]) -> Vec<CandidateEval> {
        // Tier A: per-design characterization, in first-use order.
        for p in points {
            self.ensure_design_info(&p.design);
        }

        // Optimistic candidate records.
        let mut evals: Vec<CandidateEval> = Vec::with_capacity(points.len());
        for p in points {
            let Some(Ok(info)) = self.design_info.get(&p.design) else {
                continue;
            };
            let clock_ps = self.config.clock_ps(p.cpr);
            // Mirror the filtered backend's tier-0 rule: strictly longer
            // than the die's critical delay means no event can cross the
            // sampling edge.
            let timing_safe = clock_ps > info.die_critical_ps;
            evals.push(CandidateEval {
                point: *p,
                clock_ps,
                area: info.area,
                die_critical_ps: info.die_critical_ps,
                timing_safe,
                energy_fj: info.dyn_fj_per_op + info.leak_fj_per_op_safe * (1.0 - p.cpr),
                model_error: info.model_error,
                model_trusted: info.model_trusted,
                pruned: false,
                error: None,
                quality_db: None,
            });
        }

        // Tier A pruning against certain references (previous batches and
        // this one).
        if self.settings.prefilter {
            let model_exact = matches!(self.mode, EvalMode::Kernel { .. });
            // Cross-design pruning leans on the analytical ordering, which
            // is validated for *uniform* operands only — narrow-operand
            // streams (sine/walk/accumulate) can sit arbitrarily far below
            // their uniform bounds, in either order, so there the
            // pre-filter restricts itself to the exact same-design rule.
            let cross_design_ok = match &self.mode {
                EvalMode::Kernel { .. } => true,
                EvalMode::Stream { name, .. } => name == "uniform",
            };
            // The user may raise the margin, never lower it below the
            // validated divergence band of the analytical RMS ([0.7,
            // 1.35] in crates/core/tests/analysis_exhaustive.rs ⇒ minimum
            // admissible ratio 1.35 / 0.7).
            let safety = if model_exact {
                1.0
            } else {
                self.settings.safety.max(MIN_CROSS_DESIGN_SAFETY)
            };
            for e in &evals {
                if e.timing_safe {
                    self.certain_refs.push(CertainRef {
                        design: e.point.design,
                        clock_ps: e.clock_ps,
                        energy_fj: e.energy_fj,
                        model_error: e.model_error,
                        trusted_error: e.model_trusted,
                    });
                }
            }
            for e in &mut evals {
                // Baselines stay measured: safe-clock points and the exact
                // adder anchor queries and the thesis comparison.
                if e.point.cpr == 0.0 || e.point.design.is_exact() {
                    continue;
                }
                let prunable = self.certain_refs.iter().any(|r| {
                    // Same design, certain at a strictly faster clock: the
                    // candidate's structural error is *identical* and its
                    // error can only grow with timing errors (assumption 1
                    // in the module docs), while delay and energy are
                    // strictly worse — no model margin needed.
                    if r.design == e.point.design {
                        return r.clock_ps < e.clock_ps && r.energy_fj <= e.energy_fj;
                    }
                    // Cross-design: trust the analytical ordering only
                    // where it is validated (uniform operands / exact
                    // kernel ceilings), beyond the safety margin, and only
                    // for references whose bound is genuinely modelled (a
                    // domain-fallback bound of 0 must never prune others).
                    if !cross_design_ok || !r.trusted_error {
                        return false;
                    }
                    let err_ok = if model_exact {
                        r.model_error <= e.model_error
                    } else {
                        e.model_error > 0.0 && r.model_error * safety <= e.model_error
                    };
                    err_ok
                        && r.clock_ps <= e.clock_ps
                        && r.energy_fj <= e.energy_fj
                        && (r.clock_ps < e.clock_ps
                            || r.energy_fj < e.energy_fj
                            || (if model_exact {
                                r.model_error < e.model_error
                            } else {
                                r.model_error * safety < e.model_error
                            }))
                });
                if prunable {
                    e.pruned = true;
                    self.pruned_count += 1;
                }
            }
        }

        // Tier B: simulate the survivors on the filtered backend.
        let survivors: Vec<usize> = (0..evals.len()).filter(|&i| !evals[i].pruned).collect();
        let sparse: Vec<(Design, f64)> = survivors
            .iter()
            .map(|&i| (evals[i].point.design, evals[i].point.cpr))
            .collect();
        let gate = GateLevelSubstrate::new(self.engine.cache(), self.config.clone());
        let workload = match &self.mode {
            EvalMode::Stream { name, inputs } => WorkloadSpec {
                name: name.clone(),
                inputs: Arc::clone(inputs),
            },
            EvalMode::Kernel { kernel } => WorkloadSpec {
                name: kernel.name().to_owned(),
                inputs: Arc::new(Vec::new()),
            },
        };
        let mode = self.mode.clone();
        let reference = self.kernel_reference.clone();
        let scored: Vec<(f64, f64)> =
            self.engine
                .map_points(&self.config, &sparse, &workload, |unit| match &mode {
                    EvalMode::Stream { .. } => {
                        let silvers = gate.run_batch(&unit.design, unit.clock_ps, unit.inputs);
                        let golds = unit.context().gold.add_batch(unit.inputs);
                        let exact = ExactAdder::new(unit.design.width());
                        let mut stats = CombinedErrorStats::new();
                        for ((&(a, b), &silver), &gold) in
                            unit.inputs.iter().zip(&silvers).zip(&golds)
                        {
                            stats.push(&OutputTriple::new(exact.add(a, b), gold, silver));
                        }
                        let (_, _, joint_pct) = stats.rms_re_percent();
                        (joint_pct, snr_db_of_rms_pct(joint_pct))
                    }
                    EvalMode::Kernel { kernel } => {
                        let (reference, peak) =
                            reference.as_ref().expect("kernel mode has a reference");
                        let run =
                            run_on_substrate(kernel.as_ref(), &gate, &unit.design, unit.clock_ps);
                        let psnr = score(reference, &run).psnr_db(*peak);
                        (-psnr, psnr)
                    }
                });
        for (&i, (error, quality)) in survivors.iter().zip(scored) {
            evals[i].error = Some(error);
            evals[i].quality_db = Some(quality);
        }
        self.simulated_count += survivors.len();
        evals
    }

    /// Builds (once) the tier-A characterization of a design.
    fn ensure_design_info(&mut self, design: &Design) {
        if self.design_info.contains_key(design) {
            return;
        }
        let info = self.characterize(design);
        if let Err(reason) = &info {
            self.infeasible.push(format!("{design}: {reason}"));
        }
        self.design_info.insert(*design, info);
    }

    /// Tier-A characterization: synthesis feasibility, die STA, energy
    /// per op at the safe clock, and the analytical error bound.
    fn characterize(&self, design: &Design) -> Result<DesignInfo, String> {
        // Fallible cache entry: arbitrary grid points (unlike the paper's
        // twelve) may miss the timing constraint, and the infallible
        // `Engine::context` would panic on them. Feasible designs
        // synthesize exactly once, straight into the shared cache.
        let ctx = self.engine.try_context(design, &self.config)?;
        let lib = CellLibrary::industrial_65nm();

        // Energy per addition from a short activity run at the safe clock.
        let cycles = self.settings.energy_cycles.max(1);
        let inputs = take_pairs(
            UniformWorkload::new(design.width(), self.config.workload_seed ^ 0xEC0),
            cycles,
        );
        let report = measure_clocked_batch(
            &ctx.synthesized.adder,
            &ctx.annotation,
            self.config.period_ps,
            &inputs,
            &lib,
        );
        let n = cycles as f64;

        let (model_error, model_trusted) = match &self.mode {
            EvalMode::Stream { .. } => structural_model_error(design),
            EvalMode::Kernel { kernel } => {
                let (reference, peak) = self
                    .kernel_reference
                    .as_ref()
                    .expect("kernel mode has a reference");
                let run = run_behavioural(kernel.as_ref(), design);
                // The behavioural ceiling is workload-exact for every
                // design — always a trustworthy reference.
                (-score(reference, &run).psnr_db(*peak), true)
            }
        };
        Ok(DesignInfo {
            area: ctx.synthesized.area,
            die_critical_ps: ctx.die_critical_ps(),
            dyn_fj_per_op: report.dynamic_fj / n,
            leak_fj_per_op_safe: report.leakage_fj / n,
            model_error,
            model_trusted,
        })
    }
}

/// Stream-mode analytical bound: the validated structural-error model's
/// RMS, normalized to ≈ relative-error percent (`rms(E) / 2^width × 100`,
/// the uniform-operand scale every candidate shares), plus whether the
/// bound is genuinely modelled. Designs outside the model's domain
/// (speculate-at-1, overlapping compensation) get `(0.0, false)`: the
/// zero bound keeps them unprunable as candidates, and the `false` keeps
/// them out of cross-design pruning as references (their true error may
/// be anything). The exact adder's zero is exact, hence trusted.
fn structural_model_error(design: &Design) -> (f64, bool) {
    match design {
        Design::Exact { .. } => (0.0, true),
        Design::Isa(cfg) => {
            if cfg.guess() != SpecGuess::Zero
                || cfg.correction() + cfg.reduction() > cfg.block_size()
            {
                return (0.0, false);
            }
            let analysis = DesignAnalysis::analyze(cfg);
            (
                analysis.rms_error_approx() / (cfg.width() as f64).exp2() * 100.0,
                true,
            )
        }
    }
}

/// SNR (dB) of a joint RMS relative error expressed in percent; infinite
/// when error-free.
#[must_use]
pub fn snr_db_of_rms_pct(rms_pct: f64) -> f64 {
    if rms_pct <= 0.0 {
        f64::INFINITY
    } else {
        isa_metrics::snr_db(rms_pct / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_core::IsaConfig;

    fn point(quad: (u32, u32, u32, u32), cpr: f64) -> DesignPoint {
        DesignPoint {
            design: Design::Isa(IsaConfig::new(32, quad.0, quad.1, quad.2, quad.3).unwrap()),
            cpr,
        }
    }

    fn stream_evaluator(engine: &Engine, cycles: usize) -> Evaluator<'_> {
        let config = ExperimentConfig::default();
        let mode = EvalMode::uniform_stream(32, cycles, config.workload_seed);
        Evaluator::new(engine, config, mode, EvalSettings::default())
    }

    #[test]
    fn safe_points_have_zero_timing_excess_and_exact_structural_error() {
        let engine = Engine::with_threads(1);
        let mut eval = stream_evaluator(&engine, 1500);
        // (8,0,0,0) die crit 251 ps: safe at 0 % and 15 % CPR alike.
        let evals = eval.evaluate(&[point((8, 0, 0, 0), 0.0), point((8, 0, 0, 0), 0.15)]);
        assert_eq!(evals.len(), 2);
        assert!(evals[0].timing_safe && evals[1].timing_safe);
        // Safe at both clocks: identical measured error, cheaper energy
        // and faster clock at 15 % — the combined point dominates.
        assert_eq!(evals[0].error, evals[1].error);
        assert!(evals[1].energy_fj < evals[0].energy_fj);
        let (a, b) = (
            evals[1].objectives().unwrap(),
            evals[0].objectives().unwrap(),
        );
        assert!(a.dominates(&b));
    }

    #[test]
    fn prefilter_prunes_only_combined_points_and_keeps_fronts_identical() {
        let engine = Engine::with_threads(1);
        let config = ExperimentConfig::default();
        let points: Vec<DesignPoint> = [
            (8, 0, 0, 0),
            (8, 0, 0, 2),
            (8, 0, 0, 4),
            (16, 1, 0, 0),
            (16, 7, 0, 8),
        ]
        .into_iter()
        .flat_map(|q| [point(q, 0.0), point(q, 0.05), point(q, 0.10)])
        .collect();

        let mode = EvalMode::uniform_stream(32, 1200, config.workload_seed);
        let mut with = Evaluator::new(
            &engine,
            config.clone(),
            mode.clone(),
            EvalSettings::default(),
        );
        let with_evals = with.evaluate(&points);
        let mut without = Evaluator::new(
            &engine,
            config,
            mode,
            EvalSettings {
                prefilter: false,
                ..EvalSettings::default()
            },
        );
        let without_evals = without.evaluate(&points);
        assert_eq!(without.pruned_count, 0);

        // Pruning must never touch baselines.
        for e in &with_evals {
            if e.point.cpr == 0.0 {
                assert!(!e.pruned, "{} is a baseline", e.point.label());
            }
        }
        // Soundness: every pruned candidate's simulated objectives (from
        // the no-prefilter run) are strictly dominated by some simulated
        // candidate, so fronts agree.
        let all_objectives: Vec<ObjectiveVector> = without_evals
            .iter()
            .map(|e| e.objectives().unwrap())
            .collect();
        for (w, wo) in with_evals.iter().zip(&without_evals) {
            assert_eq!(w.point.label(), wo.point.label());
            if w.pruned {
                let objectives = wo.objectives().unwrap();
                assert!(
                    all_objectives.iter().any(|o| o.dominates(&objectives)),
                    "pruned {} would reach the front",
                    w.point.label()
                );
            } else {
                assert_eq!(w.error, wo.error, "{}", w.point.label());
            }
        }
    }

    #[test]
    fn infeasible_designs_are_reported_not_evaluated() {
        let engine = Engine::with_threads(1);
        // At a 100 ps constraint nothing in the library fits: every
        // design must be reported infeasible instead of panicking in the
        // artifact cache.
        let config = ExperimentConfig {
            period_ps: 100.0,
            ..ExperimentConfig::default()
        };
        let mode = EvalMode::uniform_stream(32, 64, config.workload_seed);
        let mut eval = Evaluator::new(&engine, config, mode, EvalSettings::default());
        let evals = eval.evaluate(&[
            point((8, 0, 0, 0), 0.0),
            DesignPoint {
                design: Design::Exact { width: 32 },
                cpr: 0.0,
            },
        ]);
        assert!(evals.is_empty());
        assert_eq!(eval.infeasible.len(), 2);
        assert!(eval.infeasible[0].contains("(8,0,0,0)"));
        assert!(eval.infeasible[1].contains("exact"));
    }

    #[test]
    fn kernel_mode_bound_is_the_structural_ceiling() {
        let engine = Engine::with_threads(1);
        let config = ExperimentConfig::default();
        let kernel: Arc<dyn Kernel> =
            Arc::from(isa_apps::kernel_by_name("conv2d-sobel", 1, config.workload_seed).unwrap());
        let mut eval = Evaluator::new(
            &engine,
            config,
            EvalMode::Kernel { kernel },
            EvalSettings::default(),
        );
        let evals = eval.evaluate(&[point((8, 0, 0, 4), 0.0), point((8, 0, 0, 4), 0.15)]);
        // Safe-clock PSNR equals the structural ceiling; overclocked PSNR
        // cannot exceed it.
        let ceiling = -evals[0].model_error;
        assert_eq!(evals[0].quality_db.unwrap(), ceiling);
        if let Some(q) = evals[1].quality_db {
            assert!(q <= ceiling + 1e-9);
        }
    }

    #[test]
    fn model_error_is_zero_outside_the_analytical_domain() {
        assert_eq!(
            structural_model_error(&Design::Exact { width: 32 }),
            (0.0, true),
            "exact adder genuinely has no structural error"
        );
        let overlapping = Design::Isa(IsaConfig::new(32, 8, 0, 4, 6).unwrap());
        assert_eq!(structural_model_error(&overlapping), (0.0, false));
        let (bound, trusted) =
            structural_model_error(&Design::Isa(IsaConfig::new(32, 8, 0, 0, 4).unwrap()));
        assert!(bound > 0.0 && trusted);
    }

    #[test]
    fn out_of_domain_safe_design_never_prunes_others() {
        let engine = Engine::with_threads(1);
        let mut eval = stream_evaluator(&engine, 800);
        // Speculate-at-1 (8,0,0,0) is outside the analytical model's
        // domain, so its stream bound is the untrusted fallback 0 — while
        // its *true* error is enormous (every boundary guesses a spurious
        // carry). It is cheap and timing-safe deep into the sweep, and it
        // is evaluated FIRST: were its zero bound trusted, it would prune
        // the slower, pricier, genuinely accurate candidates behind it.
        let out_of_domain = DesignPoint {
            design: Design::Isa(IsaConfig::with_guess(32, 8, 0, 0, 0, SpecGuess::One).unwrap()),
            // Die crit 257.3 ps: certain at 10 % CPR (270 ps).
            cpr: 0.10,
        };
        let evals = eval.evaluate(&[
            out_of_domain,
            point((16, 7, 0, 8), 0.10),
            point((16, 2, 1, 6), 0.05),
        ]);
        assert_eq!(evals.len(), 3);
        assert!(
            evals[0].timing_safe,
            "premise: the out-of-domain design must be a certain reference"
        );
        for e in &evals[1..] {
            // These may only fall to the *same-design* rule, which needs a
            // faster certain sibling — absent here, so they simulate.
            assert!(
                !e.pruned,
                "{} was pruned by an out-of-domain reference",
                e.point.label()
            );
            assert!(e.error.is_some());
        }
    }

    #[test]
    fn snr_conversion_handles_error_free() {
        assert_eq!(snr_db_of_rms_pct(0.0), f64::INFINITY);
        assert!((snr_db_of_rms_pct(1.0) - 40.0).abs() < 1e-9);
    }
}
