//! The explorable design space: structural parameters × clock.
//!
//! A [`DesignPoint`] is one hardware configuration the explorer can
//! realize — an adder design run at a clock-period reduction. The
//! workload is deliberately *not* a point axis: two configurations are
//! only Pareto-comparable under the same input statistics, so a front is
//! always computed for one workload context (see
//! [`EvalMode`](crate::evaluate::EvalMode)) and workload sensitivity is
//! explored by re-running the search per workload.

use isa_core::{paper_designs, quadruple_grid, Design, PAPER_WIDTH};

/// One explorable configuration: a design at a clock-period reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// The structural configuration.
    pub design: Design,
    /// Clock-period reduction (0.0 = the safe synthesis clock).
    pub cpr: f64,
}

impl DesignPoint {
    /// Display label, e.g. `(8,0,0,4)@10%`. The percentage is rounded —
    /// use [`DesignPoint::id`] wherever identity matters.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}@{:.0}%", self.design, self.cpr * 100.0)
    }

    /// Canonical identity string, e.g. `(8,0,0,4)@0.1`. Collision-free
    /// across distinct points (Rust's shortest-roundtrip float `Display`
    /// is injective per bit pattern), used as the front key and for
    /// candidate lookups.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}@{}", self.design, self.cpr)
    }

    /// Stable sort/dedup key (design label plus the cpr bit pattern).
    #[must_use]
    pub(crate) fn key(&self) -> (String, u64) {
        (self.design.to_string(), self.cpr.to_bits())
    }

    /// True for a *pure-structural* configuration: an inexact design at
    /// the safe clock (approximation without overclocking).
    #[must_use]
    pub fn is_pure_structural(&self) -> bool {
        !self.design.is_exact() && self.cpr == 0.0
    }

    /// True for a *pure-overclocking* configuration: the exact adder past
    /// the safe clock (overclocking without approximation).
    #[must_use]
    pub fn is_pure_overclocking(&self) -> bool {
        self.design.is_exact() && self.cpr > 0.0
    }

    /// True for a *combined* configuration: an inexact design overclocked
    /// past the safe clock — the paper's thesis region.
    #[must_use]
    pub fn is_combined(&self) -> bool {
        !self.design.is_exact() && self.cpr > 0.0
    }
}

/// A materialized design space: the cross product `designs × cprs`.
///
/// Construction is deterministic; [`SpaceSpec::enumerate`] lists points
/// designs-outermost in the stored order, which search strategies rely on
/// (evolutionary mutation moves through *adjacent* designs, and the grids
/// are lexicographic in `(B, S, C, R)` so adjacency is structural
/// locality).
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSpec {
    /// Operand width of every design in the space.
    pub width: u32,
    /// The structural axis.
    pub designs: Vec<Design>,
    /// The clock axis (clock-period reductions; include 0.0 for the safe
    /// clock so pure-structural baselines exist).
    pub cprs: Vec<f64>,
}

/// The paper's clock axis: safe clock plus 5/10/15 % reductions.
pub const DEFAULT_CPRS: [f64; 4] = [0.0, 0.05, 0.10, 0.15];

impl SpaceSpec {
    /// The paper's twelve designs (eleven ISAs + exact) over the default
    /// clock axis: 48 points, small enough for exhaustive search.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            width: PAPER_WIDTH,
            designs: paper_designs(),
            cprs: DEFAULT_CPRS.to_vec(),
        }
    }

    /// A compact 32-bit grid around the paper's designs: blocks {8, 16},
    /// SPEC {0, 1, 2, 4, 7}, correction {0, 1}, reduction
    /// {0, 2, 4, 6, 8}, plus the exact baseline — 96 designs × 4 clocks =
    /// 384 points. Large enough that the analytical pre-filter matters,
    /// small enough to enumerate when asked.
    #[must_use]
    pub fn compact() -> Self {
        Self::from_grid(
            PAPER_WIDTH,
            &[8, 16],
            &[0, 1, 2, 4, 7],
            &[0, 1],
            &[0, 2, 4, 6, 8],
        )
    }

    /// The full valid non-overlapping structural space for `width` (every
    /// block size dividing the width, every SPEC window, every
    /// `C + R <= B` compensation pair) over the default clock axis. For
    /// 32-bit adders this is several thousand designs — evolutionary
    /// territory.
    #[must_use]
    pub fn full(width: u32) -> Self {
        let designs: Vec<Design> = isa_core::enumerate_quadruples(width)
            .into_iter()
            .map(Design::Isa)
            .chain([Design::Exact { width }])
            .collect();
        Self {
            width,
            designs,
            cprs: DEFAULT_CPRS.to_vec(),
        }
    }

    /// A space from explicit parameter-axis grids (plus the exact
    /// baseline) over the default clock axis.
    #[must_use]
    pub fn from_grid(
        width: u32,
        blocks: &[u32],
        specs: &[u32],
        corrections: &[u32],
        reductions: &[u32],
    ) -> Self {
        let designs: Vec<Design> = quadruple_grid(width, blocks, specs, corrections, reductions)
            .into_iter()
            .map(Design::Isa)
            .chain([Design::Exact { width }])
            .collect();
        Self {
            width,
            designs,
            cprs: DEFAULT_CPRS.to_vec(),
        }
    }

    /// Replaces the clock axis.
    #[must_use]
    pub fn with_cprs(mut self, cprs: impl IntoIterator<Item = f64>) -> Self {
        self.cprs = cprs.into_iter().collect();
        self
    }

    /// Number of points in the space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.designs.len() * self.cprs.len()
    }

    /// True if the space has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All points, designs outermost, in deterministic order.
    #[must_use]
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        let mut out = Vec::with_capacity(self.len());
        for &design in &self.designs {
            for &cpr in &self.cprs {
                out.push(DesignPoint { design, cpr });
            }
        }
        out
    }

    /// The point at grid coordinates (design index, cpr index), if valid.
    #[must_use]
    pub fn point(&self, design_idx: usize, cpr_idx: usize) -> Option<DesignPoint> {
        Some(DesignPoint {
            design: *self.designs.get(design_idx)?,
            cpr: *self.cprs.get(cpr_idx)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_has_48_points_with_baselines() {
        let space = SpaceSpec::paper();
        assert_eq!(space.len(), 48);
        let points = space.enumerate();
        assert_eq!(points.len(), 48);
        assert!(points.iter().any(DesignPoint::is_pure_structural));
        assert!(points.iter().any(DesignPoint::is_pure_overclocking));
        assert!(points.iter().any(DesignPoint::is_combined));
        // The exact adder at the safe clock is none of the three classes.
        let baseline = DesignPoint {
            design: Design::Exact { width: 32 },
            cpr: 0.0,
        };
        assert!(!baseline.is_pure_structural());
        assert!(!baseline.is_pure_overclocking());
        assert!(!baseline.is_combined());
    }

    #[test]
    fn compact_space_matches_its_documented_size() {
        let space = SpaceSpec::compact();
        // B=8: S×C×R with C+R<=8 → 5×(5+4) = 45; B=16: 5×2×5 = 50; +exact.
        assert_eq!(space.designs.len(), 45 + 50 + 1);
        assert_eq!(space.len(), 96 * 4);
    }

    #[test]
    fn full_space_contains_compact_and_paper() {
        let full = SpaceSpec::full(32);
        for d in SpaceSpec::paper().designs {
            assert!(full.designs.contains(&d), "{d} missing");
        }
        assert!(full.designs.len() > 500);
    }

    #[test]
    fn enumeration_is_deterministic_and_labels_are_stable() {
        let a = SpaceSpec::compact().enumerate();
        let b = SpaceSpec::compact().enumerate();
        assert_eq!(a, b);
        let p = DesignPoint {
            design: Design::Isa(isa_core::IsaConfig::new(32, 8, 0, 0, 4).unwrap()),
            cpr: 0.10,
        };
        assert_eq!(p.label(), "(8,0,0,4)@10%");
    }

    #[test]
    fn grid_coordinates_roundtrip() {
        let space = SpaceSpec::paper();
        let p = space.point(1, 2).unwrap();
        assert_eq!(p.design, space.designs[1]);
        assert_eq!(p.cpr, space.cprs[2]);
        assert!(space.point(99, 0).is_none());
        assert!(space.point(0, 99).is_none());
    }
}
