//! Pareto-front container with deterministic, insertion-order-invariant
//! semantics.
//!
//! A [`ParetoFront`] holds mutually non-dominated entries. The surviving
//! *set* is a pure function of the inserted multiset: an entry survives
//! iff no inserted entry strictly dominates it (strict dominance is a
//! strict partial order, so survivors are exactly the maximal elements),
//! and exact duplicates — same key *and* bit-identical objectives — are
//! kept once. Emission order is the total lexicographic objective order
//! with the entry key as tie-break, so two fronts built from the same
//! entries in any order render identically, byte for byte.

use isa_metrics::ObjectiveVector;

/// One non-dominated entry: an objective vector plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEntry<T> {
    /// The entry's objective values (all minimized).
    pub objectives: ObjectiveVector,
    /// Stable identity used for deduplication and deterministic
    /// tie-breaking (e.g. a design-point label).
    pub key: String,
    /// Arbitrary payload carried alongside.
    pub payload: T,
}

/// A set of mutually non-dominated entries (see the module docs for the
/// exact survival and ordering semantics).
///
/// # Examples
///
/// ```
/// use isa_explore::{FrontEntry, ParetoFront};
/// use isa_metrics::ObjectiveVector;
///
/// let mut front = ParetoFront::new();
/// front.insert(FrontEntry {
///     objectives: ObjectiveVector::new(1.0, 300.0, 50.0),
///     key: "slow".into(),
///     payload: (),
/// });
/// front.insert(FrontEntry {
///     objectives: ObjectiveVector::new(1.0, 270.0, 50.0),
///     key: "fast".into(),
///     payload: (),
/// });
/// // The faster entry dominates the slower one.
/// assert_eq!(front.len(), 1);
/// assert_eq!(front.entries()[0].key, "fast");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront<T> {
    entries: Vec<FrontEntry<T>>,
}

impl<T> Default for ParetoFront<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ParetoFront<T> {
    /// Creates an empty front.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Inserts an entry, keeping the front mutually non-dominated.
    /// Returns `true` if the entry joined the front (`false` if it was
    /// dominated by an incumbent or is an exact duplicate).
    pub fn insert(&mut self, entry: FrontEntry<T>) -> bool {
        for incumbent in &self.entries {
            if incumbent.objectives.dominates(&entry.objectives) {
                return false;
            }
            if incumbent.key == entry.key
                && objective_bits(&incumbent.objectives) == objective_bits(&entry.objectives)
            {
                return false;
            }
        }
        self.entries
            .retain(|incumbent| !entry.objectives.dominates(&incumbent.objectives));
        let at = self.entries.partition_point(|incumbent| {
            entry_order(incumbent, &entry) == std::cmp::Ordering::Less
        });
        self.entries.insert(at, entry);
        true
    }

    /// Merges another front into this one. The result is the front of the
    /// union of both entry sets, so merging is commutative and
    /// associative up to the (deterministic) emission order.
    pub fn merge(&mut self, other: ParetoFront<T>) {
        for entry in other.entries {
            self.insert(entry);
        }
    }

    /// The entries in deterministic order (lexicographic objectives, then
    /// key).
    #[must_use]
    pub fn entries(&self) -> &[FrontEntry<T>] {
        &self.entries
    }

    /// Number of entries on the front.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the front is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if some entry strictly dominates the given vector.
    #[must_use]
    pub fn dominates(&self, objectives: &ObjectiveVector) -> bool {
        self.entries
            .iter()
            .any(|e| e.objectives.dominates(objectives))
    }
}

/// Bit patterns of the components, for exact-duplicate detection.
fn objective_bits(v: &ObjectiveVector) -> [u64; 3] {
    let [e, d, j] = v.components();
    [e.to_bits(), d.to_bits(), j.to_bits()]
}

/// The deterministic emission order.
fn entry_order<T>(a: &FrontEntry<T>, b: &FrontEntry<T>) -> std::cmp::Ordering {
    a.objectives
        .lex_cmp(&b.objectives)
        .then_with(|| a.key.cmp(&b.key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, e: f64, d: f64, j: f64) -> FrontEntry<u32> {
        FrontEntry {
            objectives: ObjectiveVector::new(e, d, j),
            key: key.to_owned(),
            payload: 0,
        }
    }

    #[test]
    fn dominated_insertions_are_rejected_and_dominators_evict() {
        let mut front = ParetoFront::new();
        assert!(front.insert(entry("a", 1.0, 1.0, 1.0)));
        assert!(!front.insert(entry("b", 2.0, 1.0, 1.0)), "dominated");
        assert!(front.insert(entry("c", 0.5, 0.5, 0.5)), "dominates a");
        assert_eq!(front.len(), 1);
        assert_eq!(front.entries()[0].key, "c");
    }

    #[test]
    fn incomparable_entries_coexist_in_lex_order() {
        let mut front = ParetoFront::new();
        front.insert(entry("high-acc", 0.1, 300.0, 80.0));
        front.insert(entry("fast", 1.0, 255.0, 80.0));
        front.insert(entry("cheap", 1.0, 300.0, 20.0));
        assert_eq!(front.len(), 3);
        let keys: Vec<&str> = front.entries().iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["high-acc", "fast", "cheap"]);
    }

    #[test]
    fn objective_ties_keep_both_unless_exact_duplicates() {
        let mut front = ParetoFront::new();
        assert!(front.insert(entry("x", 1.0, 2.0, 3.0)));
        // Same objectives, different key: neither dominates — both stay,
        // ordered by key.
        assert!(front.insert(entry("w", 1.0, 2.0, 3.0)));
        assert_eq!(front.len(), 2);
        assert_eq!(front.entries()[0].key, "w");
        // Exact duplicate (same key and objectives): idempotent.
        assert!(!front.insert(entry("x", 1.0, 2.0, 3.0)));
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn merge_unions_the_fronts() {
        let mut a = ParetoFront::new();
        a.insert(entry("a", 1.0, 2.0, 3.0));
        a.insert(entry("b", 2.0, 1.0, 3.0));
        let mut b = ParetoFront::new();
        b.insert(entry("c", 0.5, 3.0, 3.0));
        b.insert(entry("d", 0.9, 1.9, 2.9)); // dominates "a"
        a.merge(b);
        let keys: Vec<&str> = a.entries().iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["c", "d", "b"]);
    }

    #[test]
    fn dominates_query() {
        let mut front = ParetoFront::new();
        front.insert(entry("a", 1.0, 2.0, 3.0));
        assert!(front.dominates(&ObjectiveVector::new(1.0, 2.0, 4.0)));
        assert!(!front.dominates(&ObjectiveVector::new(1.0, 2.0, 3.0)));
        assert!(!front.dominates(&ObjectiveVector::new(0.5, 9.0, 9.0)));
    }
}
