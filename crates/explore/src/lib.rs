//! # isa-explore
//!
//! Multi-objective design-space exploration over the *combined* structural
//! × timing × workload space of overclocked inexact speculative adders.
//!
//! The paper samples that space at twelve hand-picked designs and three
//! clock-period reductions; this crate *searches* it. A
//! [`SpaceSpec`] materializes the candidate space (structural quadruples ×
//! clock reductions), a two-tier [`Evaluator`] scores candidates — exact
//! structural-error bounds and femtosecond STA prune provably-dominated
//! configurations before the engine simulates the survivors on the
//! filtered gate-level backend — and a search
//! [`Strategy`] (exhaustive for small spaces, seeded NSGA-II-style
//! evolutionary for large ones) assembles a deterministic
//! [`ParetoFront`] over (error, delay, energy) [`ObjectiveVector`]s.
//!
//! Quality-constrained queries ("the cheapest design meeting ≥ 30 dB PSNR
//! on Sobel at clock X") run against the outcome via
//! [`SearchOutcome::cheapest`], and
//! [`SearchOutcome::thesis_witness`] reproduces the paper's central claim
//! as a search result: a combined (inexact **and** overclocked)
//! configuration that strictly dominates every measured pure-structural
//! and pure-overclocking configuration at its quality level.
//!
//! ```no_run
//! use isa_engine::{Engine, ExperimentConfig};
//! use isa_explore::{
//!     explore, EvalMode, EvalSettings, SearchSettings, SpaceSpec, Strategy,
//! };
//!
//! let engine = Engine::new();
//! let config = ExperimentConfig::default();
//! let mode = EvalMode::uniform_stream(32, 20_000, config.workload_seed);
//! let outcome = explore(
//!     &engine,
//!     config,
//!     &SpaceSpec::paper(),
//!     mode,
//!     EvalSettings::default(),
//!     SearchSettings {
//!         strategy: Strategy::Exhaustive,
//!         ..SearchSettings::default()
//!     },
//! );
//! for entry in outcome.front.entries() {
//!     println!("{}: {:?}", entry.key, entry.objectives);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evaluate;
pub mod pareto;
pub mod search;
pub mod space;

pub use evaluate::{snr_db_of_rms_pct, CandidateEval, EvalMode, EvalSettings, Evaluator};
pub use isa_metrics::ObjectiveVector;
pub use pareto::{FrontEntry, ParetoFront};
pub use search::{
    explore, EvolutionSettings, Query, SearchOutcome, SearchSettings, SearchStats, Strategy,
    ThesisWitness,
};
pub use space::{DesignPoint, SpaceSpec, DEFAULT_CPRS};
