//! Search strategies over the design space, plus front queries.
//!
//! Two strategies share the two-tier [`Evaluator`]:
//!
//! * [`Strategy::Exhaustive`] — every point of the space, one evaluator
//!   batch. Right for spaces up to a few hundred points (the paper and
//!   compact spaces).
//! * [`Strategy::Evolutionary`] — an NSGA-II-style seeded genetic search
//!   for large spaces: genomes are grid coordinates (design index, clock
//!   index), ranked by non-dominated sorting with crowding-distance
//!   tie-breaks, varied by axis crossover and ±1 neighbourhood mutation
//!   (the design axis is lexicographic in `(B, S, C, R)`, so neighbours
//!   are structurally similar). The initial population is seeded with the
//!   baseline configurations (every sampled design at the safe clock, the
//!   exact adder at every clock) so pure-structural and pure-overclocking
//!   references are always measured. Fully deterministic for a given
//!   `--seed`.
//!
//! [`Strategy::Auto`] picks exhaustive when the space fits the budget and
//! evolutionary otherwise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::evaluate::{CandidateEval, EvalMode, EvalSettings, Evaluator};
use crate::pareto::{FrontEntry, ParetoFront};
use crate::space::{DesignPoint, SpaceSpec};
use isa_engine::{Engine, ExperimentConfig};

/// Evolutionary-search knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvolutionSettings {
    /// Population size per generation.
    pub population: usize,
    /// Maximum generations (the budget may stop the search earlier).
    pub generations: usize,
}

impl Default for EvolutionSettings {
    fn default() -> Self {
        Self {
            population: 48,
            generations: 24,
        }
    }
}

/// How to traverse the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive when the space fits the budget, evolutionary otherwise.
    Auto,
    /// Enumerate every point (ignores the budget).
    Exhaustive,
    /// NSGA-II-style seeded genetic search.
    Evolutionary(EvolutionSettings),
}

/// Search-level settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSettings {
    /// Traversal strategy.
    pub strategy: Strategy,
    /// RNG seed: same seed, same space, same settings → byte-identical
    /// results.
    pub seed: u64,
    /// Maximum distinct candidates characterized (tier A + tier B
    /// combined). Exhaustive search ignores it.
    pub budget: usize,
}

impl Default for SearchSettings {
    fn default() -> Self {
        Self {
            strategy: Strategy::Auto,
            seed: 0x5EA2C4,
            budget: 256,
        }
    }
}

/// Aggregate counters of one search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchStats {
    /// Points in the space.
    pub space_points: usize,
    /// Distinct candidates characterized (tier A).
    pub considered: usize,
    /// Candidates pruned by the analytical pre-filter.
    pub pruned: usize,
    /// Candidates simulated on the gate-level backend (tier B).
    pub simulated: usize,
    /// Designs rejected as unable to meet the timing constraint.
    pub infeasible: usize,
    /// Strategy actually used (`exhaustive` / `evolutionary`).
    pub strategy: &'static str,
    /// Generations run (0 for exhaustive).
    pub generations: usize,
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Every candidate characterized, in first-consideration order
    /// (deterministic).
    pub evaluated: Vec<CandidateEval>,
    /// The Pareto front over the simulated candidates.
    pub front: ParetoFront<DesignPoint>,
    /// Search counters.
    pub stats: SearchStats,
    /// Workload label the objectives were measured on.
    pub workload: String,
}

/// A quality-constrained front query: "the cheapest configuration meeting
/// at least `min_quality_db`, no slower than `max_clock_ps`".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Minimum quality in dB (SNR of the joint relative error for stream
    /// workloads, PSNR for kernels).
    pub min_quality_db: f64,
    /// Optional clock-period cap in picoseconds.
    pub max_clock_ps: Option<f64>,
}

/// A combined configuration reproducing the paper's thesis as a search
/// result: at its own quality level it strictly dominates every measured
/// pure-structural and pure-overclocking configuration of that quality.
#[derive(Debug, Clone)]
pub struct ThesisWitness {
    /// The witnessing combined (inexact + overclocked) point.
    pub combined: DesignPoint,
    /// The quality constraint it witnesses (its own quality, dB).
    pub quality_db: f64,
    /// Pure-structural configurations meeting the constraint, all
    /// strictly dominated.
    pub dominated_structural: usize,
    /// Pure-overclocking configurations meeting the constraint, all
    /// strictly dominated.
    pub dominated_overclocking: usize,
}

impl SearchOutcome {
    /// The cheapest (lowest energy, then delay, then label) simulated
    /// candidate satisfying the query, if any.
    #[must_use]
    pub fn cheapest(&self, query: &Query) -> Option<&CandidateEval> {
        self.evaluated
            .iter()
            .filter(|e| {
                e.quality_db
                    .is_some_and(|quality| quality >= query.min_quality_db)
                    && query.max_clock_ps.is_none_or(|cap| e.clock_ps <= cap)
            })
            .min_by(|a, b| {
                a.energy_fj
                    .total_cmp(&b.energy_fj)
                    .then(a.clock_ps.total_cmp(&b.clock_ps))
                    .then_with(|| a.point.id().cmp(&b.point.id()))
            })
    }

    /// Searches the front for a combined-errors thesis witness: a
    /// combined front point whose quality level is met by at least one
    /// pure configuration, with every such pure configuration strictly
    /// dominated by it.
    #[must_use]
    pub fn thesis_witness(&self) -> Option<ThesisWitness> {
        for entry in self.front.entries() {
            if !entry.payload.is_combined() {
                continue;
            }
            // `continue`, not `?`: a front entry without a matching
            // candidate (possible after a caller-side front merge) must
            // not abort the scan — later entries can still witness.
            let Some(combined) = self.evaluated.iter().find(|e| e.point.id() == entry.key) else {
                continue;
            };
            let Some(quality) = combined.quality_db else {
                continue;
            };
            let objectives = entry.objectives;
            let mut dominated_structural = 0usize;
            let mut dominated_overclocking = 0usize;
            let mut all_dominated = true;
            for pure in self.evaluated.iter().filter(|e| {
                (e.point.is_pure_structural() || e.point.is_pure_overclocking())
                    && e.quality_db.is_some_and(|q| q >= quality)
            }) {
                let Some(pure_objectives) = pure.objectives() else {
                    continue;
                };
                if objectives.dominates(&pure_objectives) {
                    if pure.point.is_pure_structural() {
                        dominated_structural += 1;
                    } else {
                        dominated_overclocking += 1;
                    }
                } else {
                    all_dominated = false;
                    break;
                }
            }
            if all_dominated && dominated_structural + dominated_overclocking > 0 {
                return Some(ThesisWitness {
                    combined: combined.point,
                    quality_db: quality,
                    dominated_structural,
                    dominated_overclocking,
                });
            }
        }
        None
    }
}

/// Runs one exploration: strategy resolution, candidate traversal through
/// the two-tier evaluator, front assembly.
#[must_use]
pub fn explore(
    engine: &Engine,
    config: ExperimentConfig,
    space: &SpaceSpec,
    mode: EvalMode,
    eval_settings: EvalSettings,
    search: SearchSettings,
) -> SearchOutcome {
    let workload = mode.workload_name();
    let mut evaluator = Evaluator::new(engine, config, mode, eval_settings);
    let (evaluated, strategy, generations) = match search.strategy {
        Strategy::Exhaustive => (exhaustive(&mut evaluator, space), "exhaustive", 0),
        Strategy::Evolutionary(evo) => {
            let (evals, gens) = evolutionary(&mut evaluator, space, evo, &search);
            (evals, "evolutionary", gens)
        }
        Strategy::Auto => {
            if space.len() <= search.budget {
                (exhaustive(&mut evaluator, space), "exhaustive", 0)
            } else {
                let (evals, gens) =
                    evolutionary(&mut evaluator, space, EvolutionSettings::default(), &search);
                (evals, "evolutionary", gens)
            }
        }
    };

    let mut front = ParetoFront::new();
    for e in &evaluated {
        if let Some(objectives) = e.objectives() {
            front.insert(FrontEntry {
                objectives,
                key: e.point.id(),
                payload: e.point,
            });
        }
    }
    let stats = SearchStats {
        space_points: space.len(),
        considered: evaluated.len(),
        pruned: evaluator.pruned_count,
        simulated: evaluator.simulated_count,
        infeasible: evaluator.infeasible.len(),
        strategy,
        generations,
    };
    SearchOutcome {
        evaluated,
        front,
        stats,
        workload,
    }
}

/// One evaluator batch over the whole space.
fn exhaustive(evaluator: &mut Evaluator<'_>, space: &SpaceSpec) -> Vec<CandidateEval> {
    evaluator.evaluate(&space.enumerate())
}

/// NSGA-II-style loop over grid coordinates.
fn evolutionary(
    evaluator: &mut Evaluator<'_>,
    space: &SpaceSpec,
    evo: EvolutionSettings,
    search: &SearchSettings,
) -> (Vec<CandidateEval>, usize) {
    let designs = space.designs.len();
    let clocks = space.cprs.len();
    assert!(designs > 0 && clocks > 0, "cannot search an empty space");
    let mut rng = StdRng::seed_from_u64(search.seed);
    // Cap at the space size: the seeding loop dedups grid coordinates,
    // so a population larger than the space could never fill.
    let population = evo.population.max(4).min(space.len());

    // Seed: baselines first (safe-clock column of a design stride plus
    // the exact adder at every clock), then an even design stride across
    // clocks, then random fill.
    let safe_idx = space.cprs.iter().position(|&c| c == 0.0);
    let mut genomes: Vec<(usize, usize)> = Vec::new();
    let push = |genomes: &mut Vec<(usize, usize)>, g: (usize, usize)| {
        if !genomes.contains(&g) {
            genomes.push(g);
        }
    };
    if let Some(exact_idx) = space.designs.iter().position(|d| d.is_exact()) {
        for c in 0..clocks {
            push(&mut genomes, (exact_idx, c));
        }
    }
    let stride = (designs / population.min(designs)).max(1);
    for (i, d) in (0..designs).step_by(stride).enumerate() {
        if genomes.len() >= population {
            break;
        }
        if let Some(s) = safe_idx {
            push(&mut genomes, (d, s));
        }
        push(&mut genomes, (d, i % clocks));
    }
    while genomes.len() < population {
        push(
            &mut genomes,
            (rng.gen_range(0..designs), rng.gen_range(0..clocks)),
        );
    }
    genomes.truncate(population);

    // Memoized evaluations, in first-consideration order.
    let mut evaluated: Vec<CandidateEval> = Vec::new();
    let mut eval_of: std::collections::HashMap<(usize, usize), Option<usize>> =
        std::collections::HashMap::new();
    let mut budget_left = search.budget;
    let evaluate_new = |genomes: &[(usize, usize)],
                        evaluator: &mut Evaluator<'_>,
                        evaluated: &mut Vec<CandidateEval>,
                        eval_of: &mut std::collections::HashMap<(usize, usize), Option<usize>>,
                        budget_left: &mut usize| {
        let mut fresh: Vec<(usize, usize)> = Vec::new();
        for &g in genomes {
            if fresh.len() == *budget_left {
                break;
            }
            if !eval_of.contains_key(&g) && !fresh.contains(&g) {
                fresh.push(g);
            }
        }
        if fresh.is_empty() {
            return;
        }
        *budget_left -= fresh.len();
        let points: Vec<DesignPoint> = fresh
            .iter()
            .map(|&(d, c)| space.point(d, c).expect("genomes stay in the grid"))
            .collect();
        let batch = evaluator.evaluate(&points);
        // Evaluations come back in order but infeasible designs are
        // dropped; align by point key.
        let mut by_key: std::collections::HashMap<(String, u64), CandidateEval> =
            batch.into_iter().map(|e| (e.point.key(), e)).collect();
        for (g, p) in fresh.iter().zip(&points) {
            match by_key.remove(&p.key()) {
                Some(e) => {
                    eval_of.insert(*g, Some(evaluated.len()));
                    evaluated.push(e);
                }
                None => {
                    eval_of.insert(*g, None);
                }
            }
        }
    };

    evaluate_new(
        &genomes,
        evaluator,
        &mut evaluated,
        &mut eval_of,
        &mut budget_left,
    );

    let mut generations = 0usize;
    for _ in 0..evo.generations {
        if budget_left == 0 {
            break;
        }
        generations += 1;
        // Parents: current population ranked by NSGA order.
        let ranked = nsga_order(&genomes, &eval_of, &evaluated);

        // Offspring: tournament selection + crossover + mutation.
        let mut offspring: Vec<(usize, usize)> = Vec::with_capacity(population);
        while offspring.len() < population {
            let a = tournament(&ranked, &mut rng);
            let b = tournament(&ranked, &mut rng);
            let (mut d, mut c) = if rng.gen_range(0.0..1.0) < 0.9 {
                // Axis crossover: one parent's design, the other's clock.
                (a.0, b.1)
            } else {
                a
            };
            // Neighbourhood mutation on each axis, with a rare random
            // jump to keep the search ergodic.
            if rng.gen_range(0.0..1.0) < 0.5 {
                d = step(d, designs, &mut rng);
            }
            if rng.gen_range(0.0..1.0) < 0.4 {
                c = step(c, clocks, &mut rng);
            }
            if rng.gen_range(0.0..1.0) < 0.1 {
                d = rng.gen_range(0..designs);
            }
            offspring.push((d, c));
        }
        evaluate_new(
            &offspring,
            evaluator,
            &mut evaluated,
            &mut eval_of,
            &mut budget_left,
        );

        // Elitist survival: NSGA order over parents ∪ offspring.
        let mut union = genomes.clone();
        for g in offspring {
            if !union.contains(&g) {
                union.push(g);
            }
        }
        let ordered = nsga_order(&union, &eval_of, &evaluated);
        genomes = ordered.into_iter().take(population).collect();
    }
    (evaluated, generations)
}

/// ±1 neighbourhood move on one axis.
fn step(i: usize, len: usize, rng: &mut StdRng) -> usize {
    if len <= 1 {
        return i;
    }
    if rng.gen_range(0..2usize) == 0 {
        i.saturating_sub(1)
    } else {
        (i + 1).min(len - 1)
    }
}

/// Binary tournament over an NSGA-ordered list (earlier = better): the
/// better of two uniform picks.
fn tournament(ranked: &[(usize, usize)], rng: &mut StdRng) -> (usize, usize) {
    let a = rng.gen_range(0..ranked.len());
    let b = rng.gen_range(0..ranked.len());
    ranked[a.min(b)]
}

/// Orders genomes by (non-domination rank, crowding distance): the NSGA-II
/// survival and tournament criterion. Unevaluated (infeasible) genomes go
/// last; pruned candidates rank by their optimistic bound vectors.
fn nsga_order(
    genomes: &[(usize, usize)],
    eval_of: &std::collections::HashMap<(usize, usize), Option<usize>>,
    evaluated: &[CandidateEval],
) -> Vec<(usize, usize)> {
    let mut feasible: Vec<((usize, usize), isa_metrics::ObjectiveVector)> = Vec::new();
    let mut infeasible: Vec<(usize, usize)> = Vec::new();
    for &g in genomes {
        match eval_of.get(&g).copied().flatten() {
            Some(idx) => {
                let e = &evaluated[idx];
                feasible.push((g, e.objectives().unwrap_or_else(|| e.bound_objectives())));
            }
            None => infeasible.push(g),
        }
    }

    // Non-dominated ranks, O(n²).
    let n = feasible.len();
    let mut rank = vec![0usize; n];
    for i in 0..n {
        rank[i] = (0..n)
            .filter(|&j| feasible[j].1.dominates(&feasible[i].1))
            .count();
    }
    // Crowding distance per objective across the whole pool (rank-local
    // crowding matters little at these population sizes and this keeps
    // the implementation compact and deterministic).
    let mut crowding = vec![0.0f64; n];
    for axis in 0..3 {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            feasible[a].1.components()[axis].total_cmp(&feasible[b].1.components()[axis])
        });
        if let (Some(&first), Some(&last)) = (idx.first(), idx.last()) {
            crowding[first] = f64::INFINITY;
            crowding[last] = f64::INFINITY;
            let span = feasible[last].1.components()[axis] - feasible[first].1.components()[axis];
            if span > 0.0 && span.is_finite() {
                for w in idx.windows(3) {
                    let gap =
                        feasible[w[2]].1.components()[axis] - feasible[w[0]].1.components()[axis];
                    crowding[w[1]] += gap / span;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        rank[a]
            .cmp(&rank[b])
            .then_with(|| crowding[b].total_cmp(&crowding[a]))
            .then_with(|| feasible[a].1.lex_cmp(&feasible[b].1))
            .then_with(|| feasible[a].0.cmp(&feasible[b].0))
    });
    order
        .into_iter()
        .map(|i| feasible[i].0)
        .chain(infeasible)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_core::{Design, IsaConfig};

    fn mini_space() -> SpaceSpec {
        let quads = [(8, 0, 0, 0), (8, 0, 0, 4), (16, 1, 0, 0), (16, 7, 0, 8)];
        SpaceSpec {
            width: 32,
            designs: quads
                .into_iter()
                .map(|(b, s, c, r)| Design::Isa(IsaConfig::new(32, b, s, c, r).unwrap()))
                .chain([Design::Exact { width: 32 }])
                .collect(),
            cprs: vec![0.0, 0.05, 0.10],
        }
    }

    fn run(strategy: Strategy, seed: u64, budget: usize) -> SearchOutcome {
        let engine = Engine::with_threads(1);
        let config = ExperimentConfig::default();
        let mode = EvalMode::uniform_stream(32, 1200, config.workload_seed);
        explore(
            &engine,
            config,
            &mini_space(),
            mode,
            EvalSettings::default(),
            SearchSettings {
                strategy,
                seed,
                budget,
            },
        )
    }

    #[test]
    fn exhaustive_covers_the_space_and_finds_a_thesis_witness() {
        let outcome = run(Strategy::Exhaustive, 1, usize::MAX);
        assert_eq!(outcome.stats.considered, 15);
        assert_eq!(outcome.stats.strategy, "exhaustive");
        assert!(outcome.stats.simulated + outcome.stats.pruned == 15);
        assert!(!outcome.front.is_empty());
        // The front is mutually non-dominated by construction; every
        // front point must be a simulated candidate.
        for entry in outcome.front.entries() {
            assert!(outcome
                .evaluated
                .iter()
                .any(|e| e.point.id() == entry.key && !e.pruned));
        }
        // The paper's thesis, as a search result: (16,7,0,8) is safe at
        // 10 % CPR, so its combined point dominates its own safe-clock
        // configuration (and whatever else reaches its quality).
        let witness = outcome.thesis_witness().expect("thesis witness exists");
        assert!(witness.combined.is_combined());
        assert!(witness.dominated_structural >= 1);
    }

    #[test]
    fn same_seed_same_outcome_different_seed_may_differ() {
        let a = run(Strategy::Evolutionary(EvolutionSettings::default()), 7, 10);
        let b = run(Strategy::Evolutionary(EvolutionSettings::default()), 7, 10);
        let labels = |o: &SearchOutcome| -> Vec<String> {
            o.evaluated.iter().map(|e| e.point.label()).collect()
        };
        assert_eq!(labels(&a), labels(&b), "same seed, same traversal");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.front.len(), b.front.len());
    }

    #[test]
    fn budget_caps_evolutionary_evaluations() {
        let outcome = run(Strategy::Evolutionary(EvolutionSettings::default()), 3, 8);
        assert!(outcome.stats.considered <= 8);
        assert_eq!(outcome.stats.strategy, "evolutionary");
        // Baseline seeding puts the exact adder's clock column first.
        assert!(outcome.evaluated.iter().any(|e| e.point.design.is_exact()));
    }

    #[test]
    fn auto_picks_exhaustive_for_small_spaces() {
        let outcome = run(Strategy::Auto, 1, 100);
        assert_eq!(outcome.stats.strategy, "exhaustive");
        let outcome = run(Strategy::Auto, 1, 10);
        assert_eq!(outcome.stats.strategy, "evolutionary");
    }

    #[test]
    fn cheapest_query_respects_constraints() {
        let outcome = run(Strategy::Exhaustive, 1, usize::MAX);
        // A very lax constraint: the cheapest design overall wins.
        let lax = outcome
            .cheapest(&Query {
                min_quality_db: 0.0,
                max_clock_ps: None,
            })
            .expect("some candidate qualifies");
        // A tight quality floor excludes the cheap inaccurate designs.
        let tight = outcome
            .cheapest(&Query {
                min_quality_db: 80.0,
                max_clock_ps: None,
            })
            .expect("accurate candidates exist");
        assert!(tight.quality_db.unwrap() >= 80.0);
        assert!(tight.energy_fj >= lax.energy_fj);
        // An impossible constraint yields nothing.
        assert!(outcome
            .cheapest(&Query {
                min_quality_db: f64::INFINITY,
                max_clock_ps: Some(100.0),
            })
            .is_none());
    }
}
