//! The operand-adaptive **filtered** backend: classify, fast-path, and
//! simulate only the unsafe minority.
//!
//! The bit-sliced backend ([`run_clocked_batch`]) still pays full
//! event-driven simulation for all 64 lanes of every cycle, although
//! overclocking errors are rare events — most operand pairs do not
//! sensitize a carry chain longer than the clock period. This runner
//! exploits that:
//!
//! 1. **Classify** (word ops only): a
//!    [`LaneClassifier`] proves,
//!    per lane per cycle, that the sampled outputs will equal the settled
//!    (functional) outputs — see `isa_netlist::classify` for the
//!    conservative bounds. The safe/unsafe schedule depends only on the
//!    input stream, so it is computed in one simulation-free pass.
//! 2. **Fast path**: safe cycles take a single functional plane
//!    evaluation ([`Netlist::evaluate_output_planes`](isa_netlist::Netlist::evaluate_output_planes)) — identical by
//!    construction to the settled event-simulation result.
//! 3. **Compacted slow path**: the remaining unsafe cycles form, per
//!    lane, maximal *runs* of consecutive cycles. Each run starts from a
//!    proven-settled state (its predecessor cycle was safe, or the lane's
//!    segment reset), so runs are independent simulation tasks: seed a
//!    fresh [`BitClockedCore`] lane already settled at the predecessor
//!    operands ([`BitClockedCore::with_settled_planes`]), then clock the
//!    run's cycles.
//!    Runs from all lanes are packed dense, longest first, into waves of
//!    up to 64 — the event simulator only ever runs on compacted batches
//!    of genuinely at-risk lanes.
//!
//! The composition is **bit-identical** to [`run_clocked_batch`] on every
//! stream (enforced by parity tests at every figure clock point and an
//! exhaustive 8-bit conservatism test). Two shortcuts preserve that
//! contract trivially: when the period exceeds the die's critical delay
//! no lane can ever violate and the whole stream is one functional
//! evaluation (tier-0); when the classifier proves too few lanes safe to
//! amortize the classification, the runner falls back to the plain
//! bit-sliced event run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use isa_core::batch::{pack_planes_into_slices, segment_len, LaneBatch, LANES};
use isa_netlist::builders::AdderNetlist;
use isa_netlist::classify::LaneClassifier;
use isa_netlist::tape::{InstructionTape, CHUNK};
use isa_netlist::timing::{ps_to_fs, DelayAnnotation};
use isa_obs::Counter;

use crate::bitsim::{run_clocked_batch, BitClockedCore};
use crate::timedtape::{run_clocked_batch_timed, TimedTape, TimedTapeCore};

/// Below this fraction of classifier-proven safe cycles the filtered
/// two-pass evaluation would only add overhead on top of the event
/// simulation it cannot avoid; the runner then takes the plain bit-sliced
/// path (identical results either way).
const MIN_SAFE_FRACTION: f64 = 0.25;

/// What one filtered run did — the observability half of the backend's
/// contract (the results half is bit-identity, which needs no reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Stream cycles evaluated.
    pub cycles: u64,
    /// Cycles the classifier proved safe (settled at the sampling edge).
    pub classified_safe: u64,
    /// Cycles actually served by the functional fast path (equals
    /// `classified_safe` unless the runner fell back).
    pub fast_path: u64,
    /// Whole stream proven safe statically (period above critical delay).
    pub tier0: bool,
    /// Classifier yield too low — plain bit-sliced run used instead.
    pub fell_back: bool,
    /// Compacted slow-path waves simulated.
    pub waves: u64,
}

impl FilterStats {
    /// Fraction of cycles served by the functional fast path.
    #[must_use]
    pub fn safe_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fast_path as f64 / self.cycles as f64
        }
    }
}

/// Process-wide accumulation of [`FilterStats`], for benchmark harnesses
/// that observe pipelines through several layers of engine plumbing
/// (`bench_backends` resets around each timed component and reports the
/// safe-lane fraction per pipeline).
static TOTAL_CYCLES: AtomicU64 = AtomicU64::new(0);
static FAST_PATH_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Resets the process-wide filtered-backend counters.
pub fn reset_counters() {
    TOTAL_CYCLES.store(0, Ordering::Relaxed);
    FAST_PATH_CYCLES.store(0, Ordering::Relaxed);
}

/// Snapshot of the process-wide counters: `(fast-path cycles, total
/// cycles)` accumulated by every filtered run since the last reset.
#[must_use]
pub fn counters() -> (u64, u64) {
    (
        FAST_PATH_CYCLES.load(Ordering::Relaxed),
        TOTAL_CYCLES.load(Ordering::Relaxed),
    )
}

/// `sim.filtered.*` counters in the global [`isa_obs`] registry — the
/// per-backend view the metrics exposition and the serve `metrics` op
/// report. Strictly out-of-band: bumped from [`record`] alongside the
/// legacy counter pair, never consulted by the simulation itself.
struct SimMetrics {
    runs: Counter,
    cycles: Counter,
    fast_path_cycles: Counter,
    simulated_cycles: Counter,
    waves: Counter,
    tier0_runs: Counter,
    fallback_runs: Counter,
}

fn sim_metrics() -> &'static SimMetrics {
    static METRICS: OnceLock<SimMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = isa_obs::global();
        SimMetrics {
            runs: registry.counter("sim.filtered.runs"),
            cycles: registry.counter("sim.filtered.cycles"),
            fast_path_cycles: registry.counter("sim.filtered.fast_path_cycles"),
            simulated_cycles: registry.counter("sim.filtered.simulated_cycles"),
            waves: registry.counter("sim.filtered.waves"),
            tier0_runs: registry.counter("sim.filtered.tier0_runs"),
            fallback_runs: registry.counter("sim.filtered.fallback_runs"),
        }
    })
}

fn record(stats: &FilterStats) {
    TOTAL_CYCLES.fetch_add(stats.cycles, Ordering::Relaxed);
    FAST_PATH_CYCLES.fetch_add(stats.fast_path, Ordering::Relaxed);
    let metrics = sim_metrics();
    metrics.runs.inc();
    metrics.cycles.add(stats.cycles);
    metrics.fast_path_cycles.add(stats.fast_path);
    metrics.simulated_cycles.add(stats.cycles - stats.fast_path);
    metrics.waves.add(stats.waves);
    if stats.tier0 {
        metrics.tier0_runs.inc();
    }
    if stats.fell_back {
        metrics.fallback_runs.inc();
    }
}

/// Runs an adder's operand stream on the filtered backend, returning the
/// sampled (`ysilver`) outputs in stream order — bit-identical to
/// [`run_clocked_batch`] with the same arguments.
///
/// The classifier must have been built for this `(adder, annotation)`
/// pair (it is period independent, so callers memoize it per design).
///
/// # Panics
///
/// Panics if the period is not positive/finite or the annotation does not
/// cover the netlist.
#[must_use]
pub fn run_filtered_batch(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    classifier: &LaneClassifier,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> Vec<u64> {
    run_filtered_batch_with_stats(adder, annotation, classifier, period_ps, inputs).0
}

/// [`run_filtered_batch`] with every functional evaluation — tier-0
/// batches, the safe-cycle fast path and the wave seeding pass — routed
/// through a precompiled [`InstructionTape`]. The fast path evaluates
/// [`CHUNK`] safe steps per topological sweep on `[u64; CHUNK]` vector
/// planes. Bit-identical to [`run_filtered_batch`] on every stream.
///
/// # Panics
///
/// Panics like [`run_filtered_batch`]; the tape must have been compiled
/// from this adder's netlist.
#[must_use]
pub fn run_filtered_batch_tape(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    classifier: &LaneClassifier,
    tape: &InstructionTape,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> Vec<u64> {
    filtered_inner(adder, annotation, classifier, Some(tape), period_ps, inputs).0
}

/// Like [`run_filtered_batch_tape`], but also reports what the run did.
#[must_use]
pub fn run_filtered_batch_with_stats_tape(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    classifier: &LaneClassifier,
    tape: &InstructionTape,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> (Vec<u64>, FilterStats) {
    filtered_inner(adder, annotation, classifier, Some(tape), period_ps, inputs)
}

/// Like [`run_filtered_batch`], but also reports what the run did.
#[must_use]
pub fn run_filtered_batch_with_stats(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    classifier: &LaneClassifier,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> (Vec<u64>, FilterStats) {
    filtered_inner(adder, annotation, classifier, None, period_ps, inputs)
}

fn filtered_inner(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    classifier: &LaneClassifier,
    tape: Option<&InstructionTape>,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> (Vec<u64>, FilterStats) {
    let n = inputs.len();
    let mut stats = FilterStats {
        cycles: n as u64,
        ..FilterStats::default()
    };
    if n == 0 {
        return (Vec::new(), stats);
    }

    // Tier-0: the period covers the die's critical delay, so every cycle
    // of every lane settles before its sampling edge — the stream is one
    // functional (bit-sliced) evaluation.
    if classifier.critical_fs() < ps_to_fs(period_ps).max(1) {
        stats.tier0 = true;
        stats.classified_safe = n as u64;
        stats.fast_path = n as u64;
        record(&stats);
        let settled = match tape {
            Some(tape) => adder.add_batch_with_tape(tape, inputs),
            None => adder.add_batch(inputs),
        };
        return (settled, stats);
    }

    let netlist = adder.netlist();
    let width = adder.width();
    let w = width as usize;
    let seg = segment_len(n);

    // Pass 1 — classification only. The schedule is a pure function of
    // the input stream; lanes deal the stream in the same contiguous
    // segments as the bit-sliced backend, exhausted lanes holding their
    // last operands (no input change, hence no activity).
    let mut stream_cls = classifier.stream_classifier(period_ps);
    let mut lane_pairs = [(0u64, 0u64); LANES];
    let mut a_planes = vec![0u64; seg * w];
    let mut b_planes = vec![0u64; seg * w];
    let mut safe_masks = vec![0u64; seg];
    let mut active_masks = vec![0u64; seg];
    for t in 0..seg {
        let mut active = 0u64;
        for (l, lane) in lane_pairs.iter_mut().enumerate() {
            let idx = l * seg + t;
            if idx < n {
                *lane = inputs[idx];
                active |= 1u64 << l;
            }
        }
        let (a_t, b_t) = (
            &mut a_planes[t * w..(t + 1) * w],
            &mut b_planes[t * w..(t + 1) * w],
        );
        pack_planes_into_slices(width, &lane_pairs, a_t, b_t);
        let (a_t, b_t) = (&a_planes[t * w..(t + 1) * w], &b_planes[t * w..(t + 1) * w]);
        safe_masks[t] = stream_cls.step(a_t, b_t);
        active_masks[t] = active;
        stats.classified_safe += u64::from((safe_masks[t] & active).count_ones());
    }

    // Adaptive fallback: identical results, without the two-pass overhead,
    // when the classifier yield is too low to pay for itself.
    if (stats.classified_safe as f64) < MIN_SAFE_FRACTION * n as f64 {
        stats.fell_back = true;
        record(&stats);
        let r = match tape {
            Some(tape) => {
                let program = TimedTape::new(netlist, tape, annotation);
                run_clocked_batch_timed(adder, &program, tape, period_ps, inputs)
            }
            None => run_clocked_batch(adder, annotation, period_ps, inputs),
        };
        return (r, stats);
    }
    stats.fast_path = stats.classified_safe;

    // Pass 2a — functional fast path for every safe cycle (scratch
    // buffers reused across steps).
    let mut out = vec![0u64; n];
    if let Some(tape) = tape {
        // Tape path: gather CHUNK served steps into `[u64; CHUNK]` vector
        // planes and settle them all in one topological sweep.
        let served_steps: Vec<usize> = (0..seg)
            .filter(|&t| safe_masks[t] & active_masks[t] != 0)
            .collect();
        let mut chunk_in = vec![[0u64; CHUNK]; 2 * w];
        let mut arena: Vec<[u64; CHUNK]> = Vec::new();
        let mut settled = Vec::with_capacity(w + 1);
        for group in served_steps.chunks(CHUNK) {
            chunk_in.fill([0; CHUNK]);
            for (j, &t) in group.iter().enumerate() {
                for i in 0..w {
                    chunk_in[i][j] = a_planes[t * w + i];
                    chunk_in[w + i][j] = b_planes[t * w + i];
                }
            }
            tape.execute_into(&chunk_in, &mut arena);
            for (j, &t) in group.iter().enumerate() {
                settled.clear();
                settled.extend(tape.output_slots().iter().map(|&s| arena[s as usize][j]));
                let lanes = LaneBatch::unpack_lanes(&settled, LANES);
                let mut m = safe_masks[t] & active_masks[t];
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    out[l * seg + t] = lanes[l];
                    m &= m - 1;
                }
            }
        }
    } else {
        let mut planes_buf = Vec::with_capacity(2 * w);
        let mut values_scratch = Vec::new();
        let mut settled = Vec::new();
        for t in 0..seg {
            let served = safe_masks[t] & active_masks[t];
            if served == 0 {
                continue;
            }
            planes_buf.clear();
            planes_buf.extend_from_slice(&a_planes[t * w..(t + 1) * w]);
            planes_buf.extend_from_slice(&b_planes[t * w..(t + 1) * w]);
            netlist.evaluate_output_planes_into(&planes_buf, &mut values_scratch, &mut settled);
            let lanes = LaneBatch::unpack_lanes(&settled, LANES);
            let mut m = served;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                out[l * seg + t] = lanes[l];
                m &= m - 1;
            }
        }
    }

    // Pass 2b — compact the unsafe cycles into dense waves. Per lane,
    // maximal runs of consecutive unsafe cycles; each run's predecessor
    // cycle is proven settled (or is the segment reset), so its start
    // state is exactly "previous operands, settled, nothing in flight".
    struct RunTask {
        lane: usize,
        start: usize,
        len: usize,
    }
    let mut tasks: Vec<RunTask> = Vec::new();
    for lane in 0..LANES {
        let lane_len = n.saturating_sub(lane * seg).min(seg);
        let safe_at = |t: usize| safe_masks[t] >> lane & 1 == 1;
        let mut t = 0;
        while t < lane_len {
            if safe_at(t) {
                t += 1;
                continue;
            }
            let start = t;
            while t < lane_len && !safe_at(t) {
                t += 1;
            }
            tasks.push(RunTask {
                lane,
                start,
                len: t - start,
            });
        }
    }
    tasks.sort_by_key(|task| std::cmp::Reverse(task.len));

    // With a tape, waves run on the timed replay core (same sampled
    // outputs, no event-queue constant factors); the flattened program is
    // period independent and shared by every wave.
    enum WaveCore<'p> {
        Event(BitClockedCore),
        Timed(TimedTapeCore, &'p TimedTape),
    }
    let timed_program = match tape {
        Some(tape) if !tasks.is_empty() => Some(TimedTape::new(netlist, tape, annotation)),
        _ => None,
    };
    for wave in tasks.chunks(LANES) {
        stats.waves += 1;
        let mut wave_pairs: Vec<(u64, u64)> = wave
            .iter()
            .map(|task| {
                if task.start == 0 {
                    (0, 0) // segment reset: the all-zero settled state
                } else {
                    inputs[task.lane * seg + task.start - 1]
                }
            })
            .collect();
        let seeds = LaneBatch::pack(width, &wave_pairs);
        // Seeding costs one functional pass, not an event cascade: the
        // settled predecessor state is a pure function of the seed pairs.
        let seed_planes = adder.input_planes(&seeds);
        let mut core = match (tape, &timed_program) {
            (Some(tape), Some(program)) => WaveCore::Timed(
                TimedTapeCore::with_settled(program, tape, period_ps, &seed_planes),
                program,
            ),
            _ => WaveCore::Event(BitClockedCore::with_settled_planes(
                netlist,
                annotation,
                period_ps,
                &seed_planes,
            )),
        };
        let longest = wave[0].len; // sorted longest-first
        for j in 0..longest {
            for (wl, task) in wave.iter().enumerate() {
                if j < task.len {
                    wave_pairs[wl] = inputs[task.lane * seg + task.start + j];
                }
                // else: hold the run's last operands (no activity).
            }
            let batch = LaneBatch::pack(width, &wave_pairs);
            let planes = adder.input_planes(&batch);
            let sampled = match &mut core {
                WaveCore::Event(c) => c.step_planes(netlist, &planes),
                WaveCore::Timed(c, program) => c.step_planes(program, &planes),
            };
            let lanes = LaneBatch::unpack_lanes(&sampled, wave.len());
            for (wl, task) in wave.iter().enumerate() {
                if j < task.len {
                    out[task.lane * seg + task.start + j] = lanes[wl];
                }
            }
        }
    }

    record(&stats);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::builders::{build_exact, AdderTopology};
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::sta::StaReport;

    fn ripple16() -> (AdderNetlist, DelayAnnotation, f64) {
        let adder = build_exact(16, AdderTopology::Ripple);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let crit = StaReport::analyze(adder.netlist(), &ann).critical_ps();
        (adder, ann, crit)
    }

    fn pairs(n: usize, seed: u64) -> Vec<(u64, u64)> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFFFF, (x >> 20) & 0xFFFF)
            })
            .collect()
    }

    #[test]
    fn tier0_safe_clock_matches_bitsliced() {
        let (adder, ann, crit) = ripple16();
        let cls = LaneClassifier::build(&adder, &ann);
        let inputs = pairs(300, 0xF11);
        let (got, stats) = run_filtered_batch_with_stats(&adder, &ann, &cls, crit + 1.0, &inputs);
        assert!(stats.tier0);
        assert_eq!(stats.fast_path, 300);
        assert_eq!(got, run_clocked_batch(&adder, &ann, crit + 1.0, &inputs));
    }

    #[test]
    fn mild_overclock_is_bit_identical_with_real_filtering() {
        let (adder, ann, crit) = ripple16();
        let cls = LaneClassifier::build(&adder, &ann);
        // Between bound[3] and critical: long runs violate, short ones not.
        let period = crit * 0.75;
        let inputs = pairs(2000, 0xBEE);
        let (got, stats) = run_filtered_batch_with_stats(&adder, &ann, &cls, period, &inputs);
        let reference = run_clocked_batch(&adder, &ann, period, &inputs);
        assert_eq!(got, reference);
        assert!(!stats.tier0);
        assert!(!stats.fell_back, "yield should be high at mild overclock");
        assert!(stats.fast_path > 0 && stats.fast_path < 2000);
        assert!(stats.waves > 0, "some lanes must need event simulation");
        // The overclock must actually produce timing errors for the test
        // to mean anything.
        let errors = inputs
            .iter()
            .zip(&reference)
            .filter(|(&(a, b), &y)| y != a + b)
            .count();
        assert!(errors > 0, "no violations at period {period}");
    }

    #[test]
    fn prefix_adder_mixed_regime_is_bit_identical() {
        // A group-PG (Kogge-Stone) netlist driven through the *mixed*
        // fast/slow regime — no tier-0, no fallback, real compacted
        // waves — so the span-pinning bounds and the wave seeding are
        // exercised together on a prefix topology. Uniform random
        // operands would fall back (log-depth adders leave little slack);
        // propagate-sparse operands (isolated p bits, max run 1) keep
        // most lanes provably safe while periodic full-propagate pairs
        // force genuine event simulation.
        let adder = build_exact(16, AdderTopology::KoggeStone);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let cls = LaneClassifier::build(&adder, &ann);
        assert!(
            cls.bound_fs(2) < cls.critical_fs(),
            "span pinning must tighten the prefix bound for this test to bite"
        );
        let period_fs = (cls.bound_fs(2) + cls.critical_fs()) / 2;
        let period = period_fs as f64 / 1000.0;
        let mut x = 0x1357_9BDFu64;
        let inputs: Vec<(u64, u64)> = (0..2000)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 5 == 0 {
                    (0xFFFF, 1) // full propagate run: must go slow-path
                } else {
                    let a = x & 0xFFFF;
                    (a, a ^ (0x2492 >> (i % 3))) // p runs of length 1
                }
            })
            .collect();
        let (got, stats) = run_filtered_batch_with_stats(&adder, &ann, &cls, period, &inputs);
        assert_eq!(got, run_clocked_batch(&adder, &ann, period, &inputs));
        assert!(!stats.tier0 && !stats.fell_back, "{stats:?}");
        assert!(stats.waves > 0, "violating pairs must be simulated");
        assert!(
            stats.fast_path > 500,
            "sparse pairs must take the fast path: {stats:?}"
        );
    }

    #[test]
    fn deep_overclock_falls_back_and_stays_identical() {
        let (adder, ann, crit) = ripple16();
        let cls = LaneClassifier::build(&adder, &ann);
        let period = crit * 0.25;
        let inputs = pairs(500, 0xD0E);
        let (got, stats) = run_filtered_batch_with_stats(&adder, &ann, &cls, period, &inputs);
        assert!(stats.fell_back, "hardly anything is safe at 4x overclock");
        assert_eq!(stats.fast_path, 0);
        assert_eq!(got, run_clocked_batch(&adder, &ann, period, &inputs));
    }

    #[test]
    fn ragged_tail_and_tiny_streams_match() {
        let (adder, ann, crit) = ripple16();
        let cls = LaneClassifier::build(&adder, &ann);
        for n in [1usize, 3, 63, 64, 65, 333] {
            let inputs = pairs(n, 0xA11 + n as u64);
            for period in [crit * 0.75, crit * 0.9, crit + 1.0] {
                let got = run_filtered_batch(&adder, &ann, &cls, period, &inputs);
                assert_eq!(
                    got,
                    run_clocked_batch(&adder, &ann, period, &inputs),
                    "n={n} period={period}"
                );
            }
        }
        assert!(run_filtered_batch(&adder, &ann, &cls, crit, &[]).is_empty());
    }

    #[test]
    fn tape_path_is_bit_identical_across_regimes() {
        // Same stream, every regime the runner has — tier-0, mixed
        // fast/slow, fallback, ragged tails — must agree between the
        // interpreter path and the tape path (which also proves agreement
        // with run_clocked_batch via the existing parity tests).
        let (adder, ann, crit) = ripple16();
        let cls = LaneClassifier::build(&adder, &ann);
        let tape = InstructionTape::compile(adder.netlist());
        for n in [1usize, 64, 65, 500, 2000] {
            let inputs = pairs(n, 0x7A9E + n as u64);
            for period in [crit * 0.25, crit * 0.75, crit * 0.9, crit + 1.0] {
                let (legacy, legacy_stats) =
                    run_filtered_batch_with_stats(&adder, &ann, &cls, period, &inputs);
                let (tape_out, tape_stats) =
                    run_filtered_batch_with_stats_tape(&adder, &ann, &cls, &tape, period, &inputs);
                assert_eq!(tape_out, legacy, "n={n} period={period}");
                assert_eq!(tape_stats, legacy_stats, "n={n} period={period}");
            }
        }
    }

    #[test]
    fn tape_path_matches_on_prefix_mixed_regime() {
        let adder = build_exact(16, AdderTopology::KoggeStone);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let cls = LaneClassifier::build(&adder, &ann);
        let tape = InstructionTape::compile(adder.netlist());
        let period = (cls.bound_fs(2) + cls.critical_fs()) as f64 / 2000.0;
        let inputs = pairs(3000, 0x7A9E);
        assert_eq!(
            run_filtered_batch_tape(&adder, &ann, &cls, &tape, period, &inputs),
            run_filtered_batch(&adder, &ann, &cls, period, &inputs),
        );
    }

    #[test]
    fn counters_accumulate_across_runs() {
        let (adder, ann, crit) = ripple16();
        let cls = LaneClassifier::build(&adder, &ann);
        reset_counters();
        let inputs = pairs(128, 0xC0);
        let _ = run_filtered_batch(&adder, &ann, &cls, crit + 1.0, &inputs);
        let (fast, total) = counters();
        assert_eq!(total, 128);
        assert_eq!(fast, 128);
    }
}
