//! Razor-style timing-error detection and recovery (the paper's reference
//! \[10\] baseline).
//!
//! A shadow latch re-samples every output a fixed margin after the main
//! clock edge; a mismatch flags a timing error and triggers a replay
//! penalty. Two classic Razor properties are modelled faithfully:
//!
//! * **long-path misses** — a path that settles even later than the shadow
//!   margin corrupts both latches identically and escapes detection;
//! * **short-path constraint** — the next computation starts at the main
//!   edge, so without countermeasures fast paths would reach the outputs
//!   *before* the shadow samples. As in real Razor designs, the harness
//!   hold-fixes the netlist first ([`isa_netlist::transform::pad_min_delay`])
//!   so that no output can change within the shadow margin; the buffer
//!   chains are the "silicon overhead for online monitoring" the paper
//!   mentions, and they are charged to the design's area.
//!
//! This gives the overclocking-with-recovery baseline the paper contrasts
//! with prediction-based guardband reduction.

use isa_netlist::builders::AdderNetlist;
use isa_netlist::cell::CellLibrary;
use isa_netlist::timing::DelayAnnotation;
use isa_netlist::transform::pad_min_delay;

use crate::sim::{ps_to_fs, GateLevelSim};

/// Razor operating parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RazorConfig {
    /// Shadow-latch delay after the main edge, in picoseconds.
    pub margin_ps: f64,
    /// Pipeline cycles charged per detected error (flush + replay).
    pub recovery_cycles: u32,
}

impl Default for RazorConfig {
    fn default() -> Self {
        Self {
            margin_ps: 30.0,
            recovery_cycles: 5,
        }
    }
}

/// One Razor-monitored cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RazorCycle {
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Output captured by the main latch at the clock edge.
    pub main: u64,
    /// Output captured by the shadow latch `margin` later.
    pub shadow: u64,
    /// The fully settled (correct-for-this-circuit) output.
    pub settled: u64,
}

impl RazorCycle {
    /// Razor flags a cycle when the latches disagree.
    #[must_use]
    pub fn detected(&self) -> bool {
        self.main != self.shadow
    }

    /// The main latch captured a wrong value.
    #[must_use]
    pub fn erroneous(&self) -> bool {
        self.main != self.settled
    }

    /// A wrong value that Razor did not flag (silent data corruption).
    #[must_use]
    pub fn undetected_error(&self) -> bool {
        self.erroneous() && !self.detected()
    }

    /// A flagged cycle whose main value was actually correct (spurious
    /// replay from short-path contamination of the shadow).
    #[must_use]
    pub fn false_alarm(&self) -> bool {
        !self.erroneous() && self.detected()
    }

    /// The architecturally committed value: replayed (settled) when
    /// detected, the main latch otherwise.
    #[must_use]
    pub fn committed(&self) -> u64 {
        if self.detected() {
            self.settled
        } else {
            self.main
        }
    }
}

/// Aggregate Razor statistics for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RazorReport {
    /// Operations executed.
    pub operations: usize,
    /// Cycles flagged by the shadow comparison.
    pub detections: usize,
    /// Erroneous cycles that escaped detection.
    pub undetected_errors: usize,
    /// Correct cycles that were flagged anyway.
    pub false_alarms: usize,
    /// Total pipeline cycles including replay penalties.
    pub total_cycles: u64,
    /// Buffer cells inserted by hold fixing (the monitoring overhead).
    pub hold_buffers: usize,
}

impl RazorReport {
    /// Effective throughput relative to an error-free pipeline
    /// (operations / total cycles).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.operations as f64 / self.total_cycles as f64
    }

    /// Fraction of operations with silent corruption after recovery.
    #[must_use]
    pub fn silent_error_rate(&self) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        self.undetected_errors as f64 / self.operations as f64
    }
}

/// Runs an adder under Razor monitoring at the given clock period.
///
/// The netlist is hold-fixed first so that no output can change within the
/// shadow margin (the short-path constraint); the inserted buffers are
/// reported as overhead. Returns the per-cycle records and the aggregate
/// report.
///
/// # Panics
///
/// Panics if the period or margin is not positive/finite or the margin
/// does not fit within the period.
#[must_use]
pub fn run_razor_trace(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    lib: &CellLibrary,
    period_ps: f64,
    config: &RazorConfig,
    inputs: &[(u64, u64)],
) -> (Vec<RazorCycle>, RazorReport) {
    assert!(
        period_ps.is_finite() && period_ps > 0.0,
        "period must be positive"
    );
    assert!(
        config.margin_ps.is_finite() && config.margin_ps > 0.0,
        "margin must be positive"
    );
    assert!(
        config.margin_ps < period_ps,
        "shadow margin must fit within the period"
    );
    // Hold fixing: enforce the min-delay constraint at the margin plus a
    // small guard for the simulator's femtosecond rounding.
    let (padded, padded_ann) =
        pad_min_delay(adder.netlist(), annotation, lib, config.margin_ps + 0.01);
    let hold_buffers = padded.cell_count() - adder.netlist().cell_count();
    let padded_adder = AdderNetlist::from_netlist(padded, adder.width());

    let period_fs = ps_to_fs(period_ps);
    let margin_fs = ps_to_fs(config.margin_ps);
    let netlist = padded_adder.netlist();
    let mut sim = GateLevelSim::new(netlist, &padded_ann);
    let mut cycles = Vec::with_capacity(inputs.len());

    // Pipeline the sampling: operation k's inputs are applied at absolute
    // edge k*P; its main latch samples at edge (k+1)*P; its shadow samples
    // at (k+1)*P + margin, after operation k+1's inputs have already been
    // applied at their own edge — safe thanks to hold fixing.
    for (k, &(a, b)) in inputs.iter().enumerate() {
        let launch_edge = k as u64 * period_fs;
        let sample_edge = launch_edge + period_fs;
        if k == 0 {
            sim.set_inputs(&padded_adder.input_values(a, b));
        }
        sim.run_until(sample_edge);
        let main = sim.outputs_u64();
        // The next operation launches exactly at the sampling edge.
        if let Some(&(na, nb)) = inputs.get(k + 1) {
            sim.set_inputs(&padded_adder.input_values(na, nb));
        }
        sim.run_until(sample_edge + margin_fs);
        let shadow = sim.outputs_u64();
        let settled = netlist.evaluate_outputs_u64(&padded_adder.input_values(a, b));
        cycles.push(RazorCycle {
            a,
            b,
            main,
            shadow,
            settled,
        });
    }

    let detections = cycles.iter().filter(|c| c.detected()).count();
    let undetected_errors = cycles.iter().filter(|c| c.undetected_error()).count();
    let false_alarms = cycles.iter().filter(|c| c.false_alarm()).count();
    let report = RazorReport {
        operations: cycles.len(),
        detections,
        undetected_errors,
        false_alarms,
        total_cycles: cycles.len() as u64 + detections as u64 * u64::from(config.recovery_cycles),
        hold_buffers,
    };
    (cycles, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::builders::{build_exact, AdderTopology};
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::sta::StaReport;

    fn setup() -> (AdderNetlist, DelayAnnotation, f64, CellLibrary) {
        let adder = build_exact(16, AdderTopology::Ripple);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let crit = StaReport::analyze(adder.netlist(), &ann).critical_ps();
        (adder, ann, crit, lib)
    }

    fn pairs(n: usize) -> Vec<(u64, u64)> {
        let mut seed = 0x5AFEu64;
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed & 0xFFFF, (seed >> 19) & 0xFFFF)
            })
            .collect()
    }

    #[test]
    fn safe_clock_has_no_detections() {
        let (adder, ann, crit, lib) = setup();
        let config = RazorConfig {
            margin_ps: 40.0,
            recovery_cycles: 5,
        };
        let (cycles, report) =
            run_razor_trace(&adder, &ann, &lib, crit + 50.0, &config, &pairs(100));
        assert_eq!(report.detections, 0);
        assert_eq!(report.undetected_errors, 0);
        assert_eq!(report.throughput(), 1.0);
        assert!(report.hold_buffers > 0, "fast LSB paths need padding");
        assert!(cycles.iter().all(|c| c.committed() == c.settled));
    }

    #[test]
    fn overclocking_triggers_detections_and_recovery_cost() {
        let (adder, ann, crit, lib) = setup();
        let config = RazorConfig {
            margin_ps: 60.0,
            recovery_cycles: 5,
        };
        let (cycles, report) =
            run_razor_trace(&adder, &ann, &lib, crit * 0.85, &config, &pairs(400));
        assert!(report.detections > 0, "expected detections");
        assert!(report.throughput() < 1.0);
        // Recovery restores correctness for detected cycles.
        for c in cycles.iter().filter(|c| c.detected()) {
            assert_eq!(c.committed(), c.settled);
        }
    }

    #[test]
    fn deep_overclocking_produces_undetected_errors() {
        // Paths longer than period + margin corrupt both latches equally.
        let (adder, ann, crit, lib) = setup();
        let config = RazorConfig {
            margin_ps: 10.0,
            recovery_cycles: 5,
        };
        let (_, report) = run_razor_trace(&adder, &ann, &lib, crit * 0.5, &config, &pairs(500));
        assert!(
            report.undetected_errors > 0,
            "a thin margin must miss long-path errors"
        );
        assert!(report.silent_error_rate() > 0.0);
    }

    #[test]
    fn wider_margin_catches_more_errors() {
        let (adder, ann, crit, lib) = setup();
        let inputs = pairs(500);
        let thin = run_razor_trace(
            &adder,
            &ann,
            &lib,
            crit * 0.5,
            &RazorConfig {
                margin_ps: 10.0,
                recovery_cycles: 5,
            },
            &inputs,
        )
        .1;
        let wide = run_razor_trace(
            &adder,
            &ann,
            &lib,
            crit * 0.5,
            &RazorConfig {
                margin_ps: 0.35 * crit,
                recovery_cycles: 5,
            },
            &inputs,
        )
        .1;
        assert!(
            wide.undetected_errors <= thin.undetected_errors,
            "wide {} vs thin {}",
            wide.undetected_errors,
            thin.undetected_errors
        );
        assert!(
            wide.hold_buffers >= thin.hold_buffers,
            "a wider margin needs more padding"
        );
    }

    #[test]
    #[should_panic(expected = "margin must fit")]
    fn margin_wider_than_period_is_rejected() {
        let (adder, ann, _, lib) = setup();
        let _ = run_razor_trace(
            &adder,
            &ann,
            &lib,
            100.0,
            &RazorConfig {
                margin_ps: 150.0,
                recovery_cycles: 1,
            },
            &pairs(10),
        );
    }

    #[test]
    fn report_totals_account_for_replays() {
        let (adder, ann, crit, lib) = setup();
        let config = RazorConfig {
            margin_ps: 60.0,
            recovery_cycles: 7,
        };
        let (_, report) = run_razor_trace(&adder, &ann, &lib, crit * 0.8, &config, &pairs(200));
        assert_eq!(report.total_cycles, 200 + report.detections as u64 * 7);
    }
}
