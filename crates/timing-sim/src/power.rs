//! Activity-based energy estimation.
//!
//! The paper's context is power efficiency ("circuit-level speculation ...
//! reducing delay, area and power consumption"); this module closes the
//! loop by estimating dynamic energy from simulated switching activity:
//! every committed output transition of a cell costs that cell's library
//! energy, and leakage accrues with area and time. The same activity counts
//! also drive the energy-efficiency comparison of the `energy_table`
//! experiment.

use isa_netlist::builders::AdderNetlist;
use isa_netlist::cell::CellLibrary;
use isa_netlist::graph::{NetDriver, NetId, Netlist};
use isa_netlist::timing::DelayAnnotation;

use crate::bitsim::run_clocked_batch_with_core;
use crate::sim::GateLevelSim;

/// Leakage power per NAND2-equivalent area unit, in nanowatts (65 nm-class
/// general-purpose magnitude).
pub const LEAKAGE_NW_PER_AREA: f64 = 2.0;

/// Energy breakdown of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Dynamic (switching) energy in femtojoules.
    pub dynamic_fj: f64,
    /// Leakage energy in femtojoules over the simulated time span.
    pub leakage_fj: f64,
    /// Total committed transitions counted.
    pub transitions: u64,
    /// Simulated time span in femtoseconds.
    pub span_fs: u64,
}

impl EnergyReport {
    /// Total energy in femtojoules.
    #[must_use]
    pub fn total_fj(&self) -> f64 {
        self.dynamic_fj + self.leakage_fj
    }

    /// Energy per operation, given the number of operations in the run.
    ///
    /// # Panics
    ///
    /// Panics if `operations` is zero.
    #[must_use]
    pub fn per_op_fj(&self, operations: u64) -> f64 {
        assert!(operations > 0, "at least one operation required");
        self.total_fj() / operations as f64
    }
}

/// Estimates the energy of everything simulated so far on `sim`.
///
/// Dynamic energy: each committed transition of a cell-driven net costs the
/// driving cell's per-switch energy. Primary-input transitions are charged
/// like buffers (the register driving them switches too). Leakage: area x
/// time x [`LEAKAGE_NW_PER_AREA`].
#[must_use]
pub fn measure(sim: &GateLevelSim<'_>, netlist: &Netlist, lib: &CellLibrary) -> EnergyReport {
    measure_activity(sim.net_commit_counts(), sim.now_fs(), netlist, lib)
}

/// Characterizes an adder's switching energy over an input stream: runs
/// the whole stream through the bit-sliced clocked core at `period_ps`
/// and charges leakage over the sequential-equivalent span
/// (`inputs.len() × period`), so the figure is comparable with a scalar
/// run of the same operation count on one circuit. This is the one
/// energy-per-addition recipe shared by the `energy_table` experiment and
/// the design-space explorer's energy objective.
#[must_use]
pub fn measure_clocked_batch(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    period_ps: f64,
    inputs: &[(u64, u64)],
    lib: &CellLibrary,
) -> EnergyReport {
    let (_, clocked) = run_clocked_batch_with_core(adder, annotation, period_ps, inputs);
    // Same femtosecond rounding as the simulated clock edge, so the
    // leakage span and the activity it pairs with agree to the grid.
    let period_fs = isa_netlist::timing::ps_to_fs(period_ps);
    measure_activity(
        clocked.net_commit_counts(),
        inputs.len() as u64 * period_fs,
        adder.netlist(),
        lib,
    )
}

/// Estimates energy from an explicit activity profile: per-net committed
/// transition counts plus the wall-clock span to charge leakage over.
///
/// This is the common core behind [`measure`] and the bit-sliced 64-lane
/// simulator, whose [`net_commit_counts`](crate::BitSimCore::net_commit_counts)
/// already sum transitions over lanes; pass the *sequential-equivalent*
/// span (`ops x period`) so leakage stays comparable with a scalar run of
/// the same operation count on one circuit.
#[must_use]
pub fn measure_activity(
    counts: &[u64],
    span_fs: u64,
    netlist: &Netlist,
    lib: &CellLibrary,
) -> EnergyReport {
    let mut dynamic_fj = 0.0f64;
    let mut transitions = 0u64;
    for (index, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        transitions += count;
        let net = NetId::from_index(index);
        let per_switch = match netlist.driver(net) {
            NetDriver::Cell(cell) => lib.energy_fj(netlist.cell(cell).kind),
            NetDriver::Input => lib.energy_fj(isa_netlist::cell::CellKind::Buf),
        };
        dynamic_fj += per_switch * count as f64;
    }
    // nW * fs = 1e-9 W * 1e-15 s = 1e-24 J = 1e-9 fJ.
    let leakage_fj = netlist.area(lib) * LEAKAGE_NW_PER_AREA * span_fs as f64 * 1e-9;
    EnergyReport {
        dynamic_fj,
        leakage_fj,
        transitions,
        span_fs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::builders::{build_exact, AdderTopology};
    use isa_netlist::timing::DelayAnnotation;

    fn run_cycles(adder_bits: u32, topology: AdderTopology, inputs: &[(u64, u64)]) -> EnergyReport {
        let lib = CellLibrary::industrial_65nm();
        let adder = build_exact(adder_bits, topology);
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let mut sim = GateLevelSim::new(adder.netlist(), &ann);
        for &(a, b) in inputs {
            sim.set_inputs(&adder.input_values(a, b));
            sim.run_to_quiescence(1_000_000).unwrap();
            // Advance a fixed cycle time for a fair leakage comparison.
            let t = sim.now_fs();
            sim.run_until(t + 300_000);
        }
        measure(&sim, adder.netlist(), &lib)
    }

    fn pairs(n: usize) -> Vec<(u64, u64)> {
        let mut seed = 77u64;
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed & 0xFFFF, (seed >> 13) & 0xFFFF)
            })
            .collect()
    }

    #[test]
    fn idle_circuit_burns_only_leakage() {
        let lib = CellLibrary::industrial_65nm();
        let adder = build_exact(8, AdderTopology::Ripple);
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let mut sim = GateLevelSim::new(adder.netlist(), &ann);
        sim.run_until(1_000_000);
        let report = measure(&sim, adder.netlist(), &lib);
        assert_eq!(report.dynamic_fj, 0.0);
        assert_eq!(report.transitions, 0);
        assert!(report.leakage_fj > 0.0);
        assert_eq!(report.total_fj(), report.leakage_fj);
    }

    #[test]
    fn more_activity_burns_more_dynamic_energy() {
        let few = run_cycles(16, AdderTopology::Ripple, &pairs(10));
        let many = run_cycles(16, AdderTopology::Ripple, &pairs(100));
        assert!(many.dynamic_fj > few.dynamic_fj * 5.0);
        assert!(many.transitions > few.transitions);
    }

    #[test]
    fn bigger_adders_cost_more_energy_per_op() {
        let inputs = pairs(50);
        let ripple = run_cycles(16, AdderTopology::Ripple, &inputs);
        let ks = run_cycles(16, AdderTopology::KoggeStone, &inputs);
        assert!(
            ks.total_fj() > ripple.total_fj(),
            "Kogge-Stone ({:.0} fJ) should out-consume ripple ({:.0} fJ)",
            ks.total_fj(),
            ripple.total_fj()
        );
    }

    #[test]
    fn per_op_divides_total() {
        let report = run_cycles(8, AdderTopology::Ripple, &pairs(20));
        assert!((report.per_op_fj(20) * 20.0 - report.total_fj()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn per_op_rejects_zero() {
        let report = run_cycles(8, AdderTopology::Ripple, &pairs(5));
        let _ = report.per_op_fj(0);
    }
}
