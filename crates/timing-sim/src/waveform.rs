//! Transition recording and Value Change Dump (VCD) export.
//!
//! A [`Waveform`] captures every committed net transition of a
//! [`crate::GateLevelSim`] run — initial state included — and serializes it
//! as an IEEE-1364 VCD file loadable by GTKWave and friends, the standard
//! way to inspect a delay-annotated simulation (glitches, sampling hazards,
//! path races).

use std::fmt::Write as _;

use isa_netlist::graph::{NetId, Netlist};

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Simulation time in femtoseconds.
    pub time_fs: u64,
    /// The net that changed.
    pub net: NetId,
    /// Its new value.
    pub value: bool,
}

/// A recorded waveform: initial values plus a time-ordered transition list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waveform {
    start_fs: u64,
    initial: Vec<bool>,
    transitions: Vec<Transition>,
}

impl Waveform {
    /// Creates a waveform starting from the given net values at `start_fs`.
    #[must_use]
    pub fn new(net_count: usize, initial_values: &[bool], start_fs: u64) -> Self {
        debug_assert_eq!(net_count, initial_values.len());
        Self {
            start_fs,
            initial: initial_values.to_vec(),
            transitions: Vec::new(),
        }
    }

    /// Appends a transition (times must be non-decreasing; the simulator
    /// guarantees this).
    pub fn record(&mut self, time_fs: u64, net: NetId, value: bool) {
        debug_assert!(
            self.transitions.last().is_none_or(|t| t.time_fs <= time_fs),
            "transitions must be recorded in time order"
        );
        self.transitions.push(Transition {
            time_fs,
            net,
            value,
        });
    }

    /// The recorded transitions, in time order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Recording start time in femtoseconds.
    #[must_use]
    pub fn start_fs(&self) -> u64 {
        self.start_fs
    }

    /// Number of transitions on one net.
    #[must_use]
    pub fn transition_count(&self, net: NetId) -> usize {
        self.transitions.iter().filter(|t| t.net == net).count()
    }

    /// Total transitions across all nets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Glitch count of a net within `[from_fs, to_fs)`: transitions beyond
    /// the single functional one (0 when the net changed at most once).
    #[must_use]
    pub fn glitches_in_window(&self, net: NetId, from_fs: u64, to_fs: u64) -> usize {
        let count = self
            .transitions
            .iter()
            .filter(|t| t.net == net && t.time_fs >= from_fs && t.time_fs < to_fs)
            .count();
        count.saturating_sub(1)
    }

    /// Serializes the waveform as a VCD document for the given netlist
    /// (which must be the one the recording was made from).
    ///
    /// Net names come from the netlist where present (`a[3]`, `sum[7]`);
    /// anonymous internal nets are emitted as `n<index>`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's net count does not match the recording.
    #[must_use]
    pub fn to_vcd(&self, netlist: &Netlist) -> String {
        assert_eq!(
            netlist.net_count(),
            self.initial.len(),
            "waveform was recorded from a different netlist"
        );
        let mut out = String::new();
        let _ = writeln!(out, "$date reproduction run $end");
        let _ = writeln!(out, "$version overclocked-isa timing-sim $end");
        let _ = writeln!(out, "$timescale 1fs $end");
        let _ = writeln!(out, "$scope module {} $end", netlist.name());
        for index in 0..netlist.net_count() {
            let net = NetId::from_index(index);
            let name = netlist
                .net_name(net)
                .map_or_else(|| format!("n{index}"), sanitize_name);
            let _ = writeln!(out, "$var wire 1 {} {} $end", vcd_id(index), name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let _ = writeln!(out, "#{}", self.start_fs);
        let _ = writeln!(out, "$dumpvars");
        for (index, &v) in self.initial.iter().enumerate() {
            let _ = writeln!(out, "{}{}", u8::from(v), vcd_id(index));
        }
        let _ = writeln!(out, "$end");
        let mut last_time = self.start_fs;
        let mut time_open = false;
        for t in &self.transitions {
            if t.time_fs != last_time || !time_open {
                let _ = writeln!(out, "#{}", t.time_fs);
                last_time = t.time_fs;
                time_open = true;
            }
            let _ = writeln!(out, "{}{}", u8::from(t.value), vcd_id(t.net.index()));
        }
        out
    }
}

/// VCD identifier for a net index: base-94 over the printable ASCII range.
fn vcd_id(mut index: usize) -> String {
    let mut id = String::new();
    loop {
        id.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    id
}

/// VCD tools dislike brackets in scalar names; use underscores.
fn sanitize_name(name: &str) -> String {
    name.replace(['[', ']'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::GateLevelSim;

    use isa_netlist::graph::NetlistBuilder;
    use isa_netlist::timing::DelayAnnotation;

    fn xor_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("wave");
        let a = b.input("a");
        let x = b.input("b");
        let slow = b.buf(a);
        let y = b.xor2(slow, x);
        b.mark_output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn recording_captures_all_commits() {
        let nl = xor_netlist();
        let ann = DelayAnnotation::from_delays(vec![20.0, 10.0]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.start_recording();
        sim.set_inputs(&[true, false]);
        sim.run_to_quiescence(1000).unwrap();
        let wave = sim.take_recording().unwrap();
        // a rises, buf follows, y follows: 3 commits.
        assert_eq!(wave.len(), 3);
        assert!(wave
            .transitions()
            .windows(2)
            .all(|w| w[0].time_fs <= w[1].time_fs));
    }

    #[test]
    fn glitch_is_visible_in_waveform() {
        // y = xor(buf(a), b): toggling a and b together makes y pulse.
        let nl = xor_netlist();
        let ann = DelayAnnotation::from_delays(vec![30.0, 5.0]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.start_recording();
        sim.set_inputs(&[true, true]);
        sim.run_to_quiescence(1000).unwrap();
        let wave = sim.take_recording().unwrap();
        let y = *nl.outputs().first().unwrap();
        // y goes 0 -> 1 (b fast path) -> 0 (slow buf catches up): 1 glitch.
        assert_eq!(wave.transition_count(y), 2);
        assert_eq!(wave.glitches_in_window(y, 0, u64::MAX), 1);
    }

    #[test]
    fn vcd_document_is_well_formed() {
        let nl = xor_netlist();
        let ann = DelayAnnotation::from_delays(vec![20.0, 10.0]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.start_recording();
        sim.set_inputs(&[true, false]);
        sim.run_to_quiescence(1000).unwrap();
        let wave = sim.take_recording().unwrap();
        let vcd = wave.to_vcd(&nl);
        assert!(vcd.contains("$timescale 1fs $end"));
        assert!(vcd.contains("$scope module wave $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$dumpvars"));
        // One $var per net.
        assert_eq!(vcd.matches("$var wire 1 ").count(), nl.net_count());
        // Initial values dumped for every net.
        let dump_section = vcd.split("$dumpvars").nth(1).unwrap();
        let dump_lines = dump_section
            .split("$end")
            .next()
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        assert_eq!(dump_lines, nl.net_count());
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000 {
            let id = vcd_id(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "{id:?}");
            assert!(seen.insert(id), "duplicate id at {i}");
        }
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("a[3]"), "a_3_");
        assert_eq!(sanitize_name("plain"), "plain");
    }

    #[test]
    fn net_commit_counts_track_activity() {
        let nl = xor_netlist();
        let ann = DelayAnnotation::from_delays(vec![20.0, 10.0]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.set_inputs(&[true, false]);
        sim.run_to_quiescence(1000).unwrap();
        sim.set_inputs(&[false, false]);
        sim.run_to_quiescence(1000).unwrap();
        let counts = sim.net_commit_counts();
        // Input a toggled twice; buf and y followed both times.
        assert_eq!(counts[nl.inputs()[0].index()], 2);
        let y = nl.outputs()[0];
        assert_eq!(counts[y.index()], 2);
    }
}
