//! Bit-sliced (64-lane) event-driven gate-level simulation.
//!
//! [`BitSimCore`] is the word-level counterpart of [`SimCore`](crate::sim::SimCore): every net
//! holds a `u64` whose bit `l` is the net's value in lane `l`, so one event
//! commit and one gate evaluation advance 64 **independent** simulations at
//! once. Delays are per-cell (identical across lanes), which makes the
//! word-level event queue exact per lane:
//!
//! * an event scheduled because *any* lane's input changed carries the
//!   freshly evaluated word for *all* lanes, so a lane whose inputs did not
//!   change receives a value equal to its current one — a no-op on commit;
//! * commits at one timestamp always end with the fully re-evaluated word
//!   (later-seq events carry later evaluations), so sampled values — which
//!   are only observed after a timestamp completes — are identical to each
//!   lane's private scalar run.
//!
//! The lane-vs-scalar parity property tests in `tests/bit_parity.rs` pin
//! this bit-for-bit, at safe and overclocked settings.
//!
//! Activity accounting differs from the scalar core by design:
//! [`BitSimCore::events_processed`] counts committed *word* events (the
//! scheduling work actually performed), while
//! [`BitSimCore::net_commit_counts`] weights each commit by the number of
//! lanes that flipped — summing per-lane transitions exactly, so energy
//! estimates stay comparable with scalar runs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use isa_core::batch::{segment_len, LaneBatch, LANES};
use isa_netlist::builders::AdderNetlist;
use isa_netlist::graph::{NetId, Netlist};
use isa_netlist::timing::DelayAnnotation;

use crate::sim::ps_to_fs;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct WordEvent {
    time_fs: u64,
    seq: u64,
    net: u32,
    value: u64,
}

/// Netlist-free state of a 64-lane event-driven simulation.
///
/// Like [`SimCore`](crate::SimCore), every method takes the netlist
/// explicitly so the state can live beside an owned (`Arc`ed) netlist in a
/// long-lived substrate session. Callers must pass the netlist the state
/// was created with.
#[derive(Debug, Clone)]
pub struct BitSimCore {
    delays_fs: Vec<u64>,
    values: Vec<u64>,
    queue: BinaryHeap<Reverse<WordEvent>>,
    now_fs: u64,
    seq: u64,
    events_processed: u64,
    net_commits: Vec<u64>,
}

impl BitSimCore {
    /// Creates 64-lane simulator state with every lane's primary inputs at
    /// 0 and the netlist settled to that state.
    ///
    /// # Panics
    ///
    /// Panics if the annotation does not cover every cell.
    #[must_use]
    pub fn new(netlist: &Netlist, annotation: &DelayAnnotation) -> Self {
        assert_eq!(
            annotation.len(),
            netlist.cell_count(),
            "annotation covers {} cells, netlist has {}",
            annotation.len(),
            netlist.cell_count()
        );
        let delays_fs = annotation.as_slice().iter().map(|&d| ps_to_fs(d)).collect();
        // All lanes share the settled all-zero reset state: broadcast the
        // scalar settle to every lane.
        let values = netlist
            .evaluate(&vec![false; netlist.inputs().len()])
            .into_iter()
            .map(|v| if v { u64::MAX } else { 0 })
            .collect::<Vec<u64>>();
        let net_commits = vec![0; netlist.net_count()];
        Self {
            delays_fs,
            values,
            queue: BinaryHeap::new(),
            now_fs: 0,
            seq: 0,
            events_processed: 0,
            net_commits,
        }
    }

    /// Current simulation time in femtoseconds.
    #[must_use]
    pub fn now_fs(&self) -> u64 {
        self.now_fs
    }

    /// Committed *word* events so far (one per net change in any lane) — a
    /// measure of the simulator work performed, not of per-lane activity.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Committed transition count per net, **summed over lanes** (each
    /// word commit contributes the popcount of the changed lanes). The
    /// activity profile feeding energy estimation, directly comparable to
    /// 64 scalar runs' counts added together.
    #[must_use]
    pub fn net_commit_counts(&self) -> &[u64] {
        &self.net_commits
    }

    /// Current value word of a net (bit `l` = lane `l`).
    #[must_use]
    pub fn value_word(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// The primary outputs as one plane per output net, in declaration
    /// order (bit `l` of plane `i` = output `i` in lane `l`).
    #[must_use]
    pub fn output_planes(&self, netlist: &Netlist) -> Vec<u64> {
        netlist
            .outputs()
            .iter()
            .map(|n| self.values[n.index()])
            .collect()
    }

    fn schedule_fanout(&mut self, netlist: &Netlist, net: NetId) {
        for &cell_id in netlist.fanout(net) {
            let cell = netlist.cell(cell_id);
            let mut pins = [0u64; 3];
            for (slot, n) in pins.iter_mut().zip(&cell.inputs) {
                *slot = self.values[n.index()];
            }
            let new_value = cell.kind.eval_word(&pins[..cell.inputs.len()]);
            let when = self.now_fs + self.delays_fs[cell_id.index()];
            self.seq += 1;
            self.queue.push(Reverse(WordEvent {
                time_fs: when,
                seq: self.seq,
                net: cell.output.index() as u32,
                value: new_value,
            }));
        }
    }

    fn commit(&mut self, netlist: &Netlist, idx: usize, value: u64) {
        let flipped = self.values[idx] ^ value;
        if flipped != 0 {
            self.values[idx] = value;
            self.events_processed += 1;
            self.net_commits[idx] += u64::from(flipped.count_ones());
            self.schedule_fanout(netlist, NetId::from_index(idx));
        }
    }

    /// Drives the primary inputs to new lane words at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the number of primary inputs.
    pub fn set_input_words(&mut self, netlist: &Netlist, words: &[u64]) {
        assert_eq!(
            words.len(),
            netlist.inputs().len(),
            "expected {} input words",
            netlist.inputs().len()
        );
        // Commit all input changes first so multi-input cells see the full
        // new vector when re-evaluated (same order as the scalar core).
        let mut changed = Vec::new();
        for (&net, &w) in netlist.inputs().iter().zip(words) {
            let flipped = self.values[net.index()] ^ w;
            if flipped != 0 {
                self.values[net.index()] = w;
                self.net_commits[net.index()] += u64::from(flipped.count_ones());
                changed.push(net);
            }
        }
        for net in changed {
            self.schedule_fanout(netlist, net);
        }
    }

    /// Processes all events strictly before `t_fs`, then advances the
    /// clock to `t_fs` — the same zero-margin-setup sampling semantics as
    /// [`SimCore::run_until`](crate::SimCore::run_until), for all 64 lanes.
    ///
    /// # Panics
    ///
    /// Panics if `t_fs` is in the past.
    pub fn run_until(&mut self, netlist: &Netlist, t_fs: u64) {
        assert!(t_fs >= self.now_fs, "cannot run backwards");
        while let Some(Reverse(ev)) = self.queue.peek().copied() {
            if ev.time_fs >= t_fs {
                break;
            }
            self.queue.pop();
            self.now_fs = ev.time_fs;
            self.commit(netlist, ev.net as usize, ev.value);
        }
        self.now_fs = t_fs;
    }

    /// Runs until no events remain in any lane (combinational settle).
    pub fn run_to_quiescence(&mut self, netlist: &Netlist) {
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.now_fs = self.now_fs.max(ev.time_fs);
            self.commit(netlist, ev.net as usize, ev.value);
        }
    }
}

/// Clocked (overclocked) 64-lane operation: the word-level counterpart of
/// [`ClockedCore`](crate::ClockedCore). Circuit state carries over between
/// [`step_planes`](Self::step_planes) calls independently per lane.
#[derive(Debug, Clone)]
pub struct BitClockedCore {
    sim: BitSimCore,
    period_fs: u64,
}

impl BitClockedCore {
    /// Creates clocked 64-lane state running `netlist` at `period_ps`.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive/finite or the annotation does
    /// not cover the netlist.
    #[must_use]
    pub fn new(netlist: &Netlist, annotation: &DelayAnnotation, period_ps: f64) -> Self {
        assert!(
            period_ps.is_finite() && period_ps > 0.0,
            "period must be positive"
        );
        Self {
            sim: BitSimCore::new(netlist, annotation),
            period_fs: ps_to_fs(period_ps),
        }
    }

    /// The clock period in femtoseconds.
    #[must_use]
    pub fn period_fs(&self) -> u64 {
        self.period_fs
    }

    /// Applies one input word vector at the current clock edge, runs one
    /// period, and returns the output planes sampled at the next edge.
    ///
    /// # Panics
    ///
    /// Panics if `input_planes.len()` differs from the netlist's input
    /// count.
    pub fn step_planes(&mut self, netlist: &Netlist, input_planes: &[u64]) -> Vec<u64> {
        let t0 = self.sim.now_fs();
        self.sim.set_input_words(netlist, input_planes);
        self.sim.run_until(netlist, t0 + self.period_fs);
        self.sim.output_planes(netlist)
    }

    /// Creates clocked 64-lane state already settled at the given input
    /// planes: every net holds its functional value and the event queue
    /// is empty — the state an event-driven run reaches after driving
    /// those inputs to quiescence, obtained here with a single
    /// functional plane pass instead of an event cascade.
    ///
    /// This is how the filtered runner seeds a compacted core mid-stream:
    /// a lane entering the slow path from a proven-settled step is in
    /// exactly the state "previous operands, fully settled, nothing in
    /// flight".
    ///
    /// # Panics
    ///
    /// Panics like [`Self::new`], or if `input_planes.len()` differs from
    /// the netlist's input count.
    #[must_use]
    pub fn with_settled_planes(
        netlist: &Netlist,
        annotation: &DelayAnnotation,
        period_ps: f64,
        input_planes: &[u64],
    ) -> Self {
        assert!(
            period_ps.is_finite() && period_ps > 0.0,
            "period must be positive"
        );
        let mut core = Self {
            sim: BitSimCore::new(netlist, annotation),
            period_fs: ps_to_fs(period_ps),
        };
        core.sim.values = netlist.evaluate_words(input_planes);
        core
    }

    /// Committed *word* events so far (see
    /// [`BitSimCore::events_processed`]).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Per-net transition counts summed over lanes (see
    /// [`BitSimCore::net_commit_counts`]).
    #[must_use]
    pub fn net_commit_counts(&self) -> &[u64] {
        self.sim.net_commit_counts()
    }

    /// Current simulation time in femtoseconds.
    #[must_use]
    pub fn now_fs(&self) -> u64 {
        self.sim.now_fs()
    }
}

/// Mask of lanes that sampled at least one output bit before it settled:
/// bit `l` is set iff any plane differs between `sampled` and `settled` in
/// lane `l` — the per-lane timing-violation capture of an overclocked
/// step.
///
/// # Panics
///
/// Panics if the plane counts differ.
#[must_use]
pub fn violation_mask(sampled_planes: &[u64], settled_planes: &[u64]) -> u64 {
    assert_eq!(
        sampled_planes.len(),
        settled_planes.len(),
        "plane counts must match"
    );
    sampled_planes
        .iter()
        .zip(settled_planes)
        .fold(0u64, |acc, (&s, &g)| acc | (s ^ g))
}

/// Runs an adder's full operand stream on the 64-lane clocked simulator and
/// returns the sampled (`ysilver`) outputs in stream order.
///
/// The stream is dealt to lanes in **contiguous segments** of
/// [`segment_len`] cycles (lane `l` carries positions `l*seg ..`), so each
/// lane's cycle-to-cycle state carryover matches a scalar
/// [`ClockedCore`](crate::ClockedCore) run of that segment: consecutive
/// stream cycles stay consecutive everywhere except the at-most-63 segment
/// seams, where a lane starts from the reset state exactly like the scalar
/// run's first cycle. Lanes that exhaust their segment hold their last
/// inputs, so padding adds no switching activity once settled.
#[must_use]
pub fn run_clocked_batch(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> Vec<u64> {
    run_clocked_batch_with_core(adder, annotation, period_ps, inputs).0
}

/// Like [`run_clocked_batch`], but also returns the spent simulator core,
/// so callers can read its activity counters
/// ([`net_commit_counts`](BitClockedCore::net_commit_counts),
/// [`events_processed`](BitClockedCore::events_processed)) — the energy
/// pipeline's path. There is exactly one implementation of the
/// segment-dealing policy; every batched consumer goes through it.
#[must_use]
pub fn run_clocked_batch_with_core(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> (Vec<u64>, BitClockedCore) {
    let n = inputs.len();
    let width = adder.width();
    let netlist = adder.netlist();
    let mut clocked = BitClockedCore::new(netlist, annotation, period_ps);
    if n == 0 {
        return (Vec::new(), clocked);
    }
    let seg = segment_len(n);
    let mut lane_pairs = [(0u64, 0u64); LANES];
    let mut out = vec![0u64; n];
    for t in 0..seg {
        for (l, lane) in lane_pairs.iter_mut().enumerate() {
            let idx = l * seg + t;
            if idx < n {
                *lane = inputs[idx];
            }
            // else: hold the lane's previous inputs (no activity).
        }
        let batch = LaneBatch::pack(width, &lane_pairs);
        let sampled = clocked.step_planes(netlist, &adder.input_planes(&batch));
        let lanes = LaneBatch::unpack_lanes(&sampled, LANES);
        for (l, &value) in lanes.iter().enumerate() {
            let idx = l * seg + t;
            if idx < n {
                out[idx] = value;
            }
        }
    }
    (out, clocked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocked::ClockedSim;
    use crate::sim::GateLevelSim;
    use isa_netlist::builders::{build_exact, AdderTopology};
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::sta::StaReport;

    fn adder_and_annotation() -> (AdderNetlist, DelayAnnotation, f64) {
        let adder = build_exact(16, AdderTopology::Ripple);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let crit = StaReport::analyze(adder.netlist(), &ann).critical_ps();
        (adder, ann, crit)
    }

    fn pairs(n: usize, seed: u64) -> Vec<(u64, u64)> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFFFF, (x >> 20) & 0xFFFF)
            })
            .collect()
    }

    #[test]
    fn settled_lanes_match_functional_eval() {
        let (adder, ann, _) = adder_and_annotation();
        let netlist = adder.netlist();
        let mut sim = BitSimCore::new(netlist, &ann);
        let input = pairs(LANES, 0xBEEF);
        let batch = LaneBatch::pack(16, &input);
        sim.set_input_words(netlist, &adder.input_planes(&batch));
        sim.run_to_quiescence(netlist);
        let lanes = LaneBatch::unpack_lanes(&sim.output_planes(netlist), LANES);
        for (l, &(a, b)) in input.iter().enumerate() {
            assert_eq!(lanes[l], a + b, "lane {l}");
        }
    }

    #[test]
    fn safe_clock_batch_has_no_timing_errors() {
        let (adder, ann, crit) = adder_and_annotation();
        let inputs = pairs(500, 0xA5A5);
        let sampled = run_clocked_batch(&adder, &ann, crit + 1.0, &inputs);
        for (i, &(a, b)) in inputs.iter().enumerate() {
            assert_eq!(sampled[i], a + b, "cycle {i}");
        }
    }

    #[test]
    fn overclocked_batch_lanes_match_scalar_segments() {
        // The parity contract: lane l of the batch, fed stream segment l,
        // must equal a scalar ClockedSim fed the same segment — bit for
        // bit, including which cycles err.
        let (adder, ann, crit) = adder_and_annotation();
        let inputs = pairs(400, 0x7777);
        let period = crit * 0.35;
        let sampled = run_clocked_batch(&adder, &ann, period, &inputs);
        let seg = segment_len(inputs.len());
        let mut errors = 0usize;
        for l in 0..LANES {
            let start = l * seg;
            if start >= inputs.len() {
                break;
            }
            let end = (start + seg).min(inputs.len());
            let mut scalar = ClockedSim::new(adder.netlist(), &ann, period);
            for (idx, &(a, b)) in inputs[start..end].iter().enumerate() {
                let expect = scalar.step(&adder.input_values(a, b));
                assert_eq!(sampled[start + idx], expect, "lane {l} cycle {idx}");
                if expect != a + b {
                    errors += 1;
                }
            }
        }
        assert!(errors > 20, "overclock must actually err: {errors}");
    }

    #[test]
    fn violation_mask_flags_exactly_the_erroneous_lanes() {
        let (adder, ann, crit) = adder_and_annotation();
        let netlist = adder.netlist();
        let period = crit * 0.5;
        let mut clocked = BitClockedCore::new(netlist, &ann, period);
        let input = pairs(LANES, 0x1CE);
        let batch = LaneBatch::pack(16, &input);
        let planes = adder.input_planes(&batch);
        let sampled = clocked.step_planes(netlist, &planes);
        let settled = netlist.evaluate_output_planes(&planes);
        let mask = violation_mask(&sampled, &settled);
        let sampled_lanes = LaneBatch::unpack_lanes(&sampled, LANES);
        let settled_lanes = LaneBatch::unpack_lanes(&settled, LANES);
        for l in 0..LANES {
            assert_eq!(
                mask >> l & 1 == 1,
                sampled_lanes[l] != settled_lanes[l],
                "lane {l}"
            );
        }
        assert_ne!(mask, 0, "half the critical path must violate somewhere");
    }

    #[test]
    fn lane_weighted_commits_match_scalar_totals() {
        // One batch step with 64 distinct lanes must count exactly the sum
        // of 64 scalar runs' transitions (uniform reset state, one vector
        // each, run to quiescence).
        let (adder, ann, _) = adder_and_annotation();
        let netlist = adder.netlist();
        let input = pairs(LANES, 0xD1E);

        let mut bit = BitSimCore::new(netlist, &ann);
        let batch = LaneBatch::pack(16, &input);
        bit.set_input_words(netlist, &adder.input_planes(&batch));
        bit.run_to_quiescence(netlist);
        let batched: u64 = bit.net_commit_counts().iter().sum();

        let mut scalar_total = 0u64;
        for &(a, b) in &input {
            let mut sim = GateLevelSim::new(netlist, &ann);
            sim.set_inputs(&adder.input_values(a, b));
            sim.run_to_quiescence(1_000_000).unwrap();
            scalar_total += sim.net_commit_counts().iter().sum::<u64>();
        }
        assert_eq!(batched, scalar_total);
    }

    #[test]
    fn word_events_are_fewer_than_scalar_lane_events() {
        // The throughput argument in one assertion: the batched run's word
        // events must undercut the summed per-lane scalar events.
        let (adder, ann, crit) = adder_and_annotation();
        let netlist = adder.netlist();
        let inputs = pairs(256, 0xFACE);
        let period = crit * 0.7;

        let mut bit = BitClockedCore::new(netlist, &ann, period);
        let seg = segment_len(inputs.len());
        let mut lane_pairs = [(0u64, 0u64); LANES];
        for t in 0..seg {
            for (l, lane) in lane_pairs.iter_mut().enumerate() {
                let idx = l * seg + t;
                if idx < inputs.len() {
                    *lane = inputs[idx];
                }
            }
            let batch = LaneBatch::pack(16, &lane_pairs);
            let _ = bit.step_planes(netlist, &adder.input_planes(&batch));
        }

        let mut scalar_events = 0u64;
        for l in 0..LANES {
            let start = l * seg;
            if start >= inputs.len() {
                break;
            }
            let end = (start + seg).min(inputs.len());
            let mut scalar = ClockedSim::new(netlist, &ann, period);
            for &(a, b) in &inputs[start..end] {
                let _ = scalar.step(&adder.input_values(a, b));
            }
            scalar_events += scalar.events_processed();
        }
        assert!(
            bit.events_processed() * 2 < scalar_events,
            "word events {} should be well under scalar {}",
            bit.events_processed(),
            scalar_events
        );
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let (adder, ann, crit) = adder_and_annotation();
        assert!(run_clocked_batch(&adder, &ann, crit, &[]).is_empty());
    }
}
