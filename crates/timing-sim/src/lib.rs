//! # isa-timing-sim
//!
//! Event-driven, delay-annotated gate-level simulation — the reproduction's
//! stand-in for the paper's Mentor ModelSim flow. Overclocked outputs
//! (`ysilver`) are obtained by sampling a combinational netlist at a clock
//! edge that may arrive before the sensitized paths settle; nothing is
//! injected, the errors emerge from the event timeline.
//!
//! # Example
//!
//! ```
//! use isa_netlist::builders::{build_exact, AdderTopology};
//! use isa_netlist::cell::CellLibrary;
//! use isa_netlist::sta::StaReport;
//! use isa_netlist::timing::DelayAnnotation;
//! use isa_timing_sim::run_adder_trace;
//!
//! let adder = build_exact(8, AdderTopology::Ripple);
//! let lib = CellLibrary::industrial_65nm();
//! let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
//! let crit = StaReport::analyze(adder.netlist(), &ann).critical_ps();
//!
//! // At a safe clock there are no timing errors.
//! let trace = run_adder_trace(&adder, &ann, crit + 1.0, &[(200, 55), (255, 1)]);
//! assert!(trace.iter().all(|r| !r.has_timing_error()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitsim;
pub mod clocked;
pub mod filtered;
pub mod power;
pub mod razor;
pub mod sim;
pub mod timedtape;
pub mod waveform;

pub use bitsim::{
    run_clocked_batch, run_clocked_batch_with_core, violation_mask, BitClockedCore, BitSimCore,
};
pub use clocked::{run_adder_trace, ClockedCore, ClockedSim, CycleRecord};
pub use filtered::{
    run_filtered_batch, run_filtered_batch_tape, run_filtered_batch_with_stats,
    run_filtered_batch_with_stats_tape, FilterStats,
};
pub use power::{measure as measure_energy, measure_activity, measure_clocked_batch, EnergyReport};
pub use razor::{run_razor_trace, RazorConfig, RazorCycle, RazorReport};
pub use sim::{ps_to_fs, GateLevelSim, SettleError, SimCore, FS_PER_PS};
pub use timedtape::{run_clocked_batch_timed, TimedTape, TimedTapeCore};
pub use waveform::{Transition, Waveform};
