//! Event-driven gate-level simulation with per-instance transport delays.
//!
//! This is the reproduction's stand-in for the paper's SDF-annotated
//! ModelSim runs: every cell propagates input changes to its output after
//! its annotated delay, glitches and all. Timing errors are *measured*, not
//! injected — an output sampled before its sensitized path has settled
//! simply still holds a stale value.
//!
//! Time is kept in integer femtoseconds for exact, platform-independent
//! event ordering (ties broken by schedule order).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use isa_netlist::graph::{NetId, Netlist};
use isa_netlist::timing::DelayAnnotation;

pub use isa_netlist::timing::{ps_to_fs, FS_PER_PS};

/// Simulation failed to reach quiescence within the event budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettleError {
    /// Events processed before giving up.
    pub events: u64,
}

impl fmt::Display for SettleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation did not settle within {} events (oscillating netlist?)",
            self.events
        )
    }
}

impl Error for SettleError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_fs: u64,
    seq: u64,
    net: u32,
    value: bool,
}

/// Netlist-free simulator state: delays, net values, the event queue and
/// activity counters.
///
/// Every method takes the netlist as an explicit parameter instead of
/// borrowing it at construction time, so the state can be stored alongside
/// an owned (`Arc`ed) netlist — the enabler for self-contained substrate
/// sessions in `isa-engine`. [`GateLevelSim`] wraps this with a borrowed
/// netlist for the common single-scope case.
///
/// Callers must pass the same netlist the state was created with; sizes are
/// asserted where cheap, behaviour is unspecified for a different netlist of
/// identical shape.
#[derive(Debug, Clone)]
pub struct SimCore {
    delays_fs: Vec<u64>,
    values: Vec<bool>,
    queue: BinaryHeap<Reverse<Event>>,
    now_fs: u64,
    seq: u64,
    events_processed: u64,
    net_commits: Vec<u64>,
    recorder: Option<crate::waveform::Waveform>,
}

impl SimCore {
    /// Creates simulator state with all primary inputs at 0 and the netlist
    /// settled to that state.
    ///
    /// # Panics
    ///
    /// Panics if the annotation does not cover every cell.
    #[must_use]
    pub fn new(netlist: &Netlist, annotation: &DelayAnnotation) -> Self {
        assert_eq!(
            annotation.len(),
            netlist.cell_count(),
            "annotation covers {} cells, netlist has {}",
            annotation.len(),
            netlist.cell_count()
        );
        let delays_fs = annotation.as_slice().iter().map(|&d| ps_to_fs(d)).collect();
        let values = netlist.evaluate(&vec![false; netlist.inputs().len()]);
        let net_commits = vec![0; netlist.net_count()];
        Self {
            delays_fs,
            values,
            queue: BinaryHeap::new(),
            now_fs: 0,
            seq: 0,
            events_processed: 0,
            net_commits,
            recorder: None,
        }
    }

    /// Starts recording every committed transition into a waveform (for
    /// VCD export and glitch analysis). Replaces any active recording.
    pub fn start_recording(&mut self, netlist: &Netlist) {
        self.recorder = Some(crate::waveform::Waveform::new(
            netlist.net_count(),
            &self.values,
            self.now_fs,
        ));
    }

    /// Stops recording and returns the captured waveform, if any.
    pub fn take_recording(&mut self) -> Option<crate::waveform::Waveform> {
        self.recorder.take()
    }

    /// Committed transition count per net since construction (an activity
    /// profile for power estimation).
    #[must_use]
    pub fn net_commit_counts(&self) -> &[u64] {
        &self.net_commits
    }

    /// Current simulation time in femtoseconds.
    #[must_use]
    pub fn now_fs(&self) -> u64 {
        self.now_fs
    }

    /// Total committed events so far (a simulator activity/energy proxy).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Current logic value of a net.
    #[must_use]
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Packs the primary outputs into a `u64`, LSB-first.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs.
    #[must_use]
    pub fn outputs_u64(&self, netlist: &Netlist) -> u64 {
        assert!(netlist.outputs().len() <= 64);
        let mut out = 0u64;
        for (i, net) in netlist.outputs().iter().enumerate() {
            if self.values[net.index()] {
                out |= 1 << i;
            }
        }
        out
    }

    fn schedule_fanout(&mut self, netlist: &Netlist, net: NetId) {
        for &cell_id in netlist.fanout(net) {
            let cell = netlist.cell(cell_id);
            let mut pins = [false; 3];
            for (slot, n) in pins.iter_mut().zip(&cell.inputs) {
                *slot = self.values[n.index()];
            }
            let new_value = cell.kind.eval(&pins[..cell.inputs.len()]);
            let when = self.now_fs + self.delays_fs[cell_id.index()];
            self.seq += 1;
            self.queue.push(Reverse(Event {
                time_fs: when,
                seq: self.seq,
                net: cell.output.index() as u32,
                value: new_value,
            }));
        }
    }

    /// Drives the primary inputs to new values at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of primary inputs.
    pub fn set_inputs(&mut self, netlist: &Netlist, values: &[bool]) {
        assert_eq!(
            values.len(),
            netlist.inputs().len(),
            "expected {} input values",
            netlist.inputs().len()
        );
        // Commit all input changes first so multi-input cells see the full
        // new vector when re-evaluated.
        let mut changed = Vec::new();
        for (&net, &v) in netlist.inputs().iter().zip(values) {
            if self.values[net.index()] != v {
                self.values[net.index()] = v;
                self.net_commits[net.index()] += 1;
                if let Some(rec) = &mut self.recorder {
                    rec.record(self.now_fs, net, v);
                }
                changed.push(net);
            }
        }
        for net in changed {
            self.schedule_fanout(netlist, net);
        }
    }

    /// Processes all events strictly before `t_fs`, then advances the clock
    /// to `t_fs`.
    ///
    /// Events at exactly `t_fs` stay pending: a transition landing on the
    /// sampling edge is not captured (zero-margin setup), matching the
    /// hold-the-old-value behaviour of a flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `t_fs` is in the past.
    pub fn run_until(&mut self, netlist: &Netlist, t_fs: u64) {
        assert!(t_fs >= self.now_fs, "cannot run backwards");
        while let Some(Reverse(ev)) = self.queue.peek().copied() {
            if ev.time_fs >= t_fs {
                break;
            }
            self.queue.pop();
            self.now_fs = ev.time_fs;
            let idx = ev.net as usize;
            if self.values[idx] != ev.value {
                self.values[idx] = ev.value;
                self.events_processed += 1;
                self.net_commits[idx] += 1;
                if let Some(rec) = &mut self.recorder {
                    rec.record(ev.time_fs, NetId::from_index(idx), ev.value);
                }
                self.schedule_fanout(netlist, NetId::from_index(idx));
            }
        }
        self.now_fs = t_fs;
    }

    /// Runs until no events remain (combinational settle), with an event
    /// budget guarding against pathological activity.
    ///
    /// # Errors
    ///
    /// Returns [`SettleError`] if the budget is exhausted.
    pub fn run_to_quiescence(
        &mut self,
        netlist: &Netlist,
        max_events: u64,
    ) -> Result<(), SettleError> {
        let start = self.events_processed;
        while let Some(Reverse(ev)) = self.queue.peek().copied() {
            if self.events_processed - start > max_events {
                return Err(SettleError {
                    events: self.events_processed - start,
                });
            }
            self.queue.pop();
            self.now_fs = self.now_fs.max(ev.time_fs);
            let idx = ev.net as usize;
            if self.values[idx] != ev.value {
                self.values[idx] = ev.value;
                self.events_processed += 1;
                self.net_commits[idx] += 1;
                if let Some(rec) = &mut self.recorder {
                    rec.record(ev.time_fs, NetId::from_index(idx), ev.value);
                }
                self.schedule_fanout(netlist, NetId::from_index(idx));
            }
        }
        Ok(())
    }

    /// Time of the latest pending event, if any (an upper bound on when the
    /// current inputs will have fully propagated).
    #[must_use]
    pub fn pending_horizon_fs(&self) -> Option<u64> {
        self.queue.iter().map(|Reverse(e)| e.time_fs).max()
    }
}

/// An event-driven simulator bound to one netlist and one delay annotation.
///
/// This is a convenience wrapper pairing a [`SimCore`] with the borrowed
/// netlist it simulates; use [`SimCore`] directly when the netlist is owned
/// elsewhere (e.g. behind an `Arc` in a long-lived substrate session).
#[derive(Debug, Clone)]
pub struct GateLevelSim<'a> {
    netlist: &'a Netlist,
    core: SimCore,
}

impl<'a> GateLevelSim<'a> {
    /// Creates a simulator with all primary inputs at 0 and the netlist
    /// settled to that state.
    ///
    /// # Panics
    ///
    /// Panics if the annotation does not cover every cell.
    #[must_use]
    pub fn new(netlist: &'a Netlist, annotation: &DelayAnnotation) -> Self {
        Self {
            netlist,
            core: SimCore::new(netlist, annotation),
        }
    }

    /// Starts recording every committed transition into a waveform (for
    /// VCD export and glitch analysis). Replaces any active recording.
    pub fn start_recording(&mut self) {
        self.core.start_recording(self.netlist);
    }

    /// Stops recording and returns the captured waveform, if any.
    pub fn take_recording(&mut self) -> Option<crate::waveform::Waveform> {
        self.core.take_recording()
    }

    /// Committed transition count per net since construction (an activity
    /// profile for power estimation).
    #[must_use]
    pub fn net_commit_counts(&self) -> &[u64] {
        self.core.net_commit_counts()
    }

    /// Current simulation time in femtoseconds.
    #[must_use]
    pub fn now_fs(&self) -> u64 {
        self.core.now_fs()
    }

    /// Total committed events so far (a simulator activity/energy proxy).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed()
    }

    /// Current logic value of a net.
    #[must_use]
    pub fn value(&self, net: NetId) -> bool {
        self.core.value(net)
    }

    /// Packs the primary outputs into a `u64`, LSB-first.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs.
    #[must_use]
    pub fn outputs_u64(&self) -> u64 {
        self.core.outputs_u64(self.netlist)
    }

    /// Drives the primary inputs to new values at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of primary inputs.
    pub fn set_inputs(&mut self, values: &[bool]) {
        self.core.set_inputs(self.netlist, values);
    }

    /// Processes all events strictly before `t_fs`, then advances the clock
    /// to `t_fs`.
    ///
    /// Events at exactly `t_fs` stay pending: a transition landing on the
    /// sampling edge is not captured (zero-margin setup), matching the
    /// hold-the-old-value behaviour of a flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `t_fs` is in the past.
    pub fn run_until(&mut self, t_fs: u64) {
        self.core.run_until(self.netlist, t_fs);
    }

    /// Runs until no events remain (combinational settle), with an event
    /// budget guarding against pathological activity.
    ///
    /// # Errors
    ///
    /// Returns [`SettleError`] if the budget is exhausted.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> Result<(), SettleError> {
        self.core.run_to_quiescence(self.netlist, max_events)
    }

    /// Time of the latest pending event, if any (an upper bound on when the
    /// current inputs will have fully propagated).
    #[must_use]
    pub fn pending_horizon_fs(&self) -> Option<u64> {
        self.core.pending_horizon_fs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::graph::NetlistBuilder;
    use isa_netlist::sta::StaReport;

    fn inv_chain(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut net = a;
        for _ in 0..n {
            net = b.inv(net);
        }
        b.mark_output(net, "y");
        b.finish().unwrap()
    }

    #[test]
    fn settled_output_matches_functional_eval() {
        let nl = inv_chain(5);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.set_inputs(&[true]);
        sim.run_to_quiescence(1_000_000).unwrap();
        assert_eq!(sim.outputs_u64(), nl.evaluate_outputs_u64(&[true]));
    }

    #[test]
    fn output_changes_exactly_after_chain_delay() {
        let nl = inv_chain(4);
        let ann = DelayAnnotation::from_delays(vec![10.0; 4]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        // Initial state: input 0, even inversions => output 0.
        assert_eq!(sim.outputs_u64(), 0);
        sim.set_inputs(&[true]);
        // 4 stages x 10 ps = 40 ps: not settled at 39.999..., settled at 40+.
        sim.run_until(ps_to_fs(40.0)); // strictly-before semantics
        assert_eq!(
            sim.outputs_u64(),
            0,
            "transition at exactly t is not captured"
        );
        sim.run_until(ps_to_fs(40.0) + 1);
        assert_eq!(sim.outputs_u64(), 1);
    }

    #[test]
    fn sampling_before_settle_yields_stale_value() {
        let nl = inv_chain(10);
        let ann = DelayAnnotation::from_delays(vec![10.0; 10]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.set_inputs(&[true]);
        sim.run_until(ps_to_fs(50.0)); // halfway through the chain
        assert_eq!(sim.outputs_u64(), 0, "stale value expected");
        sim.run_to_quiescence(1_000).unwrap();
        assert_eq!(sim.outputs_u64(), 1);
    }

    #[test]
    fn glitch_propagates_through_unequal_paths() {
        // y = a XOR a' where a' is a delayed as copy of a: a change produces
        // a transient pulse on y before it settles back to 0.
        let mut b = NetlistBuilder::new("glitch");
        let a = b.input("a");
        let slow = b.buf(a);
        let y = b.xor2(a, slow);
        b.mark_output(y, "y");
        let nl = b.finish().unwrap();
        let ann = DelayAnnotation::from_delays(vec![30.0, 5.0]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.set_inputs(&[true]);
        // At t=10: XOR saw a=1, slow=0 => pulse high.
        sim.run_until(ps_to_fs(10.0));
        assert_eq!(sim.outputs_u64(), 1, "glitch visible mid-flight");
        sim.run_to_quiescence(1_000).unwrap();
        assert_eq!(
            sim.outputs_u64(),
            0,
            "settles back after slow path catches up"
        );
    }

    #[test]
    fn settle_time_never_exceeds_sta_bound() {
        use isa_netlist::builders::{build_exact, AdderTopology};
        let adder = build_exact(16, AdderTopology::KoggeStone);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let sta = StaReport::analyze(adder.netlist(), &ann);
        let bound_fs = ps_to_fs(sta.critical_ps());
        let mut sim = GateLevelSim::new(adder.netlist(), &ann);
        let mut seed = 1u64;
        for _ in 0..50 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
            let (a, b) = (seed & 0xFFFF, (seed >> 16) & 0xFFFF);
            let t0 = sim.now_fs();
            sim.set_inputs(&adder.input_values(a, b));
            sim.run_until(t0 + bound_fs + 1);
            assert!(
                sim.pending_horizon_fs().is_none(),
                "events pending past the STA bound for a={a:#x} b={b:#x}"
            );
            assert_eq!(sim.outputs_u64(), a + b);
        }
    }

    #[test]
    fn event_count_accumulates() {
        let nl = inv_chain(3);
        let ann = DelayAnnotation::from_delays(vec![10.0; 3]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.set_inputs(&[true]);
        sim.run_to_quiescence(100).unwrap();
        assert_eq!(sim.events_processed(), 3, "one commit per inverter");
    }

    #[test]
    fn no_event_when_input_unchanged() {
        let nl = inv_chain(3);
        let ann = DelayAnnotation::from_delays(vec![10.0; 3]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.set_inputs(&[false]); // same as initial state
        sim.run_to_quiescence(100).unwrap();
        assert_eq!(sim.events_processed(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot run backwards")]
    fn running_backwards_panics() {
        let nl = inv_chain(1);
        let ann = DelayAnnotation::from_delays(vec![10.0]);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.run_until(100);
        sim.run_until(50);
    }

    #[test]
    fn ps_to_fs_rounds() {
        assert_eq!(ps_to_fs(0.0), 0);
        assert_eq!(ps_to_fs(1.0), 1000);
        assert_eq!(ps_to_fs(0.0004), 0);
        assert_eq!(ps_to_fs(0.0006), 1);
    }
}
