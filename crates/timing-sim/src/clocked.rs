//! Clocked (overclocked) operation of a combinational netlist.
//!
//! Models the paper's experimental setup: a new input vector is registered
//! every clock period, outputs are sampled at the next edge, and —
//! crucially — circuit state carries over between cycles, so an
//! under-provisioned period leaves residual switching activity that
//! interacts with the next cycle, exactly as in delay-annotated RTL
//! simulation.

use isa_netlist::builders::AdderNetlist;
use isa_netlist::graph::Netlist;
use isa_netlist::timing::DelayAnnotation;

use crate::sim::{ps_to_fs, SimCore};

/// Netlist-free state of a clocked (overclocked) run: simulator state plus
/// the clock period.
///
/// Like [`SimCore`], every method takes the netlist explicitly, so sessions
/// that own their netlist (e.g. behind an `Arc` in an `isa-engine`
/// substrate) can keep cycle-to-cycle circuit state without borrowing.
#[derive(Debug, Clone)]
pub struct ClockedCore {
    sim: SimCore,
    period_fs: u64,
}

impl ClockedCore {
    /// Creates clocked state running `netlist` at `period_ps`.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive/finite or the annotation does
    /// not cover the netlist.
    #[must_use]
    pub fn new(netlist: &Netlist, annotation: &DelayAnnotation, period_ps: f64) -> Self {
        assert!(
            period_ps.is_finite() && period_ps > 0.0,
            "period must be positive"
        );
        Self {
            sim: SimCore::new(netlist, annotation),
            period_fs: ps_to_fs(period_ps),
        }
    }

    /// The clock period in femtoseconds.
    #[must_use]
    pub fn period_fs(&self) -> u64 {
        self.period_fs
    }

    /// Applies one input vector at the current clock edge, runs one period,
    /// and returns the outputs sampled at the next edge (packed LSB-first).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the netlist's input count.
    pub fn step(&mut self, netlist: &Netlist, inputs: &[bool]) -> u64 {
        let t0 = self.sim.now_fs();
        self.sim.set_inputs(netlist, inputs);
        self.sim.run_until(netlist, t0 + self.period_fs);
        self.sim.outputs_u64(netlist)
    }

    /// Total committed simulation events so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }
}

/// A netlist operated at a fixed clock period.
#[derive(Debug, Clone)]
pub struct ClockedSim<'a> {
    core: ClockedCore,
    netlist: &'a Netlist,
}

impl<'a> ClockedSim<'a> {
    /// Creates a clocked wrapper running `netlist` at `period_ps`.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive/finite or the annotation does
    /// not cover the netlist.
    #[must_use]
    pub fn new(netlist: &'a Netlist, annotation: &DelayAnnotation, period_ps: f64) -> Self {
        Self {
            core: ClockedCore::new(netlist, annotation, period_ps),
            netlist,
        }
    }

    /// The clock period in femtoseconds.
    #[must_use]
    pub fn period_fs(&self) -> u64 {
        self.core.period_fs()
    }

    /// Applies one input vector at the current clock edge, runs one period,
    /// and returns the outputs sampled at the next edge (packed LSB-first).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the netlist's input count.
    pub fn step(&mut self, inputs: &[bool]) -> u64 {
        self.core.step(self.netlist, inputs)
    }

    /// The value the outputs would settle to for the *current* inputs if
    /// the clock were slow enough (the cycle's timing-error-free
    /// reference), computed functionally without disturbing the event
    /// queue.
    #[must_use]
    pub fn settled_reference(&self, inputs: &[bool]) -> u64 {
        self.netlist.evaluate_outputs_u64(inputs)
    }

    /// Total committed simulation events so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed()
    }
}

/// One cycle of an overclocked adder trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleRecord {
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Output sampled at the (reduced) clock edge — the paper's `ysilver`.
    pub sampled: u64,
    /// Settled (timing-error-free) output of the same circuit — `ygold`.
    pub settled: u64,
}

impl CycleRecord {
    /// True if any output bit was sampled before settling this cycle.
    #[must_use]
    pub fn has_timing_error(&self) -> bool {
        self.sampled != self.settled
    }

    /// Bit positions that differ between sampled and settled outputs.
    #[must_use]
    pub fn flipped_bits(&self) -> u64 {
        self.sampled ^ self.settled
    }
}

/// Runs an adder netlist over an input stream at a given clock period and
/// records every cycle.
///
/// The first cycle starts from the all-zero settled state (a registered
/// adder coming out of reset).
#[must_use]
pub fn run_adder_trace(
    adder: &AdderNetlist,
    annotation: &DelayAnnotation,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> Vec<CycleRecord> {
    let mut clocked = ClockedSim::new(adder.netlist(), annotation, period_ps);
    let mut records = Vec::with_capacity(inputs.len());
    for &(a, b) in inputs {
        let pins = adder.input_values(a, b);
        let sampled = clocked.step(&pins);
        let settled = clocked.settled_reference(&pins);
        records.push(CycleRecord {
            a,
            b,
            sampled,
            settled,
        });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::builders::{build_exact, AdderTopology};
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::sta::StaReport;

    fn adder_and_annotation() -> (AdderNetlist, DelayAnnotation, f64) {
        let adder = build_exact(16, AdderTopology::Ripple);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let crit = StaReport::analyze(adder.netlist(), &ann).critical_ps();
        (adder, ann, crit)
    }

    fn pairs(n: usize, width: u32) -> Vec<(u64, u64)> {
        let mask = (1u64 << width) - 1;
        let mut seed = 0xABCDu64;
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed & mask, (seed >> 20) & mask)
            })
            .collect()
    }

    #[test]
    fn safe_clock_has_no_timing_errors() {
        let (adder, ann, crit) = adder_and_annotation();
        let trace = run_adder_trace(&adder, &ann, crit + 1.0, &pairs(200, 16));
        for rec in &trace {
            assert_eq!(rec.sampled, rec.settled, "a={:#x} b={:#x}", rec.a, rec.b);
            assert_eq!(rec.settled, rec.a + rec.b);
            assert!(!rec.has_timing_error());
        }
    }

    #[test]
    fn severe_overclocking_produces_timing_errors() {
        let (adder, ann, crit) = adder_and_annotation();
        // Quarter of the critical path: long carries cannot settle.
        let trace = run_adder_trace(&adder, &ann, crit / 4.0, &pairs(500, 16));
        let errors = trace.iter().filter(|r| r.has_timing_error()).count();
        assert!(
            errors > 50,
            "expected plenty of timing errors, got {errors}/500"
        );
        // The settled reference stays exact regardless.
        for rec in &trace {
            assert_eq!(rec.settled, rec.a + rec.b);
        }
    }

    #[test]
    fn error_rate_is_monotone_in_overclocking() {
        let (adder, ann, crit) = adder_and_annotation();
        let inputs = pairs(400, 16);
        let mut last_rate = -1.0f64;
        for factor in [1.05, 0.8, 0.55, 0.3] {
            let trace = run_adder_trace(&adder, &ann, crit * factor, &inputs);
            let rate =
                trace.iter().filter(|r| r.has_timing_error()).count() as f64 / trace.len() as f64;
            assert!(
                rate >= last_rate - 0.02,
                "rate should not decrease substantially with overclocking: \
                 {rate} after {last_rate} at factor {factor}"
            );
            last_rate = rate;
        }
        assert!(last_rate > 0.1, "harshest overclock must show errors");
    }

    #[test]
    fn timing_errors_depend_on_previous_state() {
        // The same input pair can be correct or erroneous depending on what
        // preceded it — the core reason the paper's predictor needs x[t-1].
        let (adder, ann, crit) = adder_and_annotation();
        let period = crit * 0.55;
        // Case 1: the full-carry vector arrives fresh at cycle 1 and has
        // only 0.55x the critical delay to propagate: timing error.
        let t1 = run_adder_trace(&adder, &ann, period, &[(0, 0), (0xFFFF, 1)]);
        // Case 2: the same vector is held for two cycles; the residual
        // carry ripple from cycle 0 completes during cycle 1 (1.1x the
        // critical delay in total), so cycle 1 samples correctly.
        let t2 = run_adder_trace(&adder, &ann, period, &[(0xFFFF, 1), (0xFFFF, 1)]);
        let e1 = t1[1].has_timing_error();
        let e2 = t2[1].has_timing_error();
        assert!(
            e1 && !e2,
            "history must matter: fresh-vector error={e1}, held-vector error={e2}"
        );
    }

    #[test]
    fn flipped_bits_reports_differences() {
        let rec = CycleRecord {
            a: 0,
            b: 0,
            sampled: 0b1010,
            settled: 0b0010,
        };
        assert!(rec.has_timing_error());
        assert_eq!(rec.flipped_bits(), 0b1000);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_is_rejected() {
        let (adder, ann, _) = adder_and_annotation();
        let _ = ClockedSim::new(adder.netlist(), &ann, 0.0);
    }
}
