//! Levelized timed replay of a compiled instruction tape: the
//! event-driven slow path rebuilt as waveform sweeps over the tape's
//! topological schedule.
//!
//! Under the pure transport-delay discipline both simulators share, a
//! cell's output waveform is an exact function of its input waveforms:
//! `out(t) = f(in(t - d))` for every `t` past the window it was already
//! committed to. The classic event queue
//! ([`BitSimCore`](crate::bitsim::BitSimCore)) computes that composition
//! one heap-ordered commit at a time — paying a binary-heap push/pop, a
//! `Vec<NetId>` pin chase and a re-evaluation *per input change per
//! cell*. This core computes the same composition directly:
//!
//! * [`TimedTape`] flattens `(tape, annotation)` once into fixed-width
//!   timed ops in tape (topological) order plus a CSR slot→consumers
//!   map; evaluation never touches the netlist graph.
//! * [`TimedTapeCore`] keeps, per arena slot, a **waveform**: the word
//!   value at the window start plus a change-only transition list
//!   covering everything still scheduled to happen. One clock step is a
//!   single sweep over the ops in tape order — no queue, no heap, no
//!   seq numbers. Each active op rebuilds its output waveform by keeping
//!   the slice of its old waveform earlier than `now + d` (transitions
//!   already committed to, which new input activity cannot reach yet)
//!   and re-deriving everything later from a 3-way merge of its fanin
//!   transition lists, evaluating the cell word-function at each
//!   distinct fanin transition time.
//! * Activity gating makes quiet logic free: an op is swept only if a
//!   fanin waveform gained transitions this step (propagated through
//!   the CSR) or its own list is non-empty; everything else is skipped
//!   with one generation-stamp compare.
//!
//! Sampling keeps the event queue's strictly-before semantics: the value
//! at edge `T` is the waveform value just below `T`, and transitions at
//! exactly `T` stay pending into the next step, exactly like events the
//! queue had not yet committed.
//!
//! What this core deliberately does **not** provide are the activity
//! counters (`net_commit_counts`, `events_processed`): change-only
//! waveforms erase the zero-width glitch commits those counters bill
//! for, so the energy pipeline keeps using the classic [`BitSimCore`](crate::bitsim::BitSimCore)
//! queue. The filtered runner's slow path only consumes sampled outputs
//! and switches to this core when a tape is supplied; the figure-clock
//! parity batteries and the batteries below pin the equivalence.

use isa_core::batch::{segment_len, LaneBatch, LANES};
use isa_netlist::builders::AdderNetlist;
use isa_netlist::tape::InstructionTape;
use isa_netlist::timing::{ps_to_fs, DelayAnnotation};
use isa_netlist::{CellId, CellKind, Netlist};

/// One timed op: the tape op's operand/output slots plus the cell's
/// dispatch kind and transport delay, flattened for random access (the
/// tape's kind-major runs only help linear plane sweeps).
#[derive(Debug, Clone, Copy)]
struct TimedOp {
    kind: CellKind,
    a: u32,
    b: u32,
    c: u32,
    out: u32,
    delay_fs: u64,
}

/// A tape compiled against a delay annotation: the flat program the
/// timed replay core executes. Period independent — build once per
/// `(netlist, annotation)` and share across waves and periods.
#[derive(Debug, Clone)]
pub struct TimedTape {
    ops: Vec<TimedOp>,
    /// CSR: `fanout_ops[fanout_start[s] .. fanout_start[s + 1]]` are the
    /// ops reading arena slot `s` (each op listed once per slot).
    fanout_start: Vec<u32>,
    fanout_ops: Vec<u32>,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
}

impl TimedTape {
    /// Flattens `tape` against `annotation` (one delay per cell of the
    /// netlist both were built from).
    ///
    /// # Panics
    ///
    /// Panics if the annotation does not cover the netlist, the tape's
    /// shape disagrees with the netlist, or any cell *with inputs* has a
    /// zero transport delay. Input-less tie cells (`Const0`/`Const1`)
    /// are allowed a zero delay: their output never transitions, so the
    /// transport-delay discipline has nothing to order for them — and
    /// the carry-select/bypass block topologies really do materialize
    /// them with the library's 0 ps tie-cell delay.
    #[must_use]
    pub fn new(netlist: &Netlist, tape: &InstructionTape, annotation: &DelayAnnotation) -> Self {
        assert_eq!(
            annotation.len(),
            netlist.cell_count(),
            "annotation covers {} cells, netlist has {}",
            annotation.len(),
            netlist.cell_count()
        );
        assert_eq!(
            tape.op_count(),
            netlist.cell_count(),
            "tape has {} ops for {} cells",
            tape.op_count(),
            netlist.cell_count()
        );
        // The tape reordered cells, but each op's output slot still names
        // its (single) driving cell — recover the delay through it.
        let mut delay_of_slot = vec![0u64; netlist.net_count()];
        for (i, &delay_ps) in annotation.as_slice().iter().enumerate() {
            let cell = netlist.cell(CellId::from_index(i));
            let fs = ps_to_fs(delay_ps);
            assert!(
                fs > 0 || cell.kind.arity() == 0,
                "cell {i} ({:?}) has inputs but a zero transport delay",
                cell.kind
            );
            delay_of_slot[cell.output.index()] = fs;
        }
        let mut ops = Vec::with_capacity(tape.op_count());
        for run in tape.runs() {
            let span = &tape.ops()[run.start as usize..(run.start + run.len) as usize];
            for op in span {
                ops.push(TimedOp {
                    kind: run.kind,
                    a: op.a,
                    b: op.b,
                    c: op.c,
                    out: op.out,
                    delay_fs: delay_of_slot[op.out as usize],
                });
            }
        }
        // CSR over operand slots. Unused operands alias the first, so
        // deduplicating against earlier pins of the same op suffices to
        // list each (slot, op) edge once.
        let slots = tape.slot_count();
        let mut counts = vec![0u32; slots + 1];
        let each_edge = |f: &mut dyn FnMut(u32, u32)| {
            for (o, op) in ops.iter().enumerate() {
                let o = o as u32;
                f(op.a, o);
                if op.b != op.a {
                    f(op.b, o);
                }
                if op.c != op.a && op.c != op.b {
                    f(op.c, o);
                }
            }
        };
        each_edge(&mut |slot, _| counts[slot as usize + 1] += 1);
        for s in 0..slots {
            counts[s + 1] += counts[s];
        }
        let mut cursor = counts.clone();
        let mut fanout_ops = vec![0u32; counts[slots] as usize];
        each_edge(&mut |slot, o| {
            fanout_ops[cursor[slot as usize] as usize] = o;
            cursor[slot as usize] += 1;
        });
        Self {
            ops,
            fanout_start: counts,
            fanout_ops,
            inputs: tape.input_slots().to_vec(),
            outputs: tape.output_slots().to_vec(),
        }
    }
}

/// One slot's waveform: `base` is the word value before the first listed
/// transition; `trans` is change-only with strictly increasing times. A
/// transition at time `u` is visible to consumers evaluating at `u`
/// (inclusive) and to edge sampling strictly after `u`.
#[derive(Debug, Clone, Default)]
struct SlotWave {
    base: u64,
    trans: Vec<(u64, u64)>,
}

impl SlotWave {
    /// The value sampled at edge `t` under strictly-before semantics.
    fn sample_before(&self, t: u64) -> u64 {
        match self.trans.iter().rev().find(|&&(u, _)| u < t) {
            Some(&(_, v)) => v,
            None => self.base,
        }
    }
}

/// A read cursor over one fanin waveform during a merge sweep.
struct FaninCursor<'a> {
    trans: &'a [(u64, u64)],
    idx: usize,
    value: u64,
}

impl<'a> FaninCursor<'a> {
    fn new(wave: &'a SlotWave) -> Self {
        Self {
            trans: &wave.trans,
            idx: 0,
            value: wave.base,
        }
    }

    /// Advances through every transition at time `<= u`.
    #[inline]
    fn advance(&mut self, u: u64) {
        while let Some(&(t, v)) = self.trans.get(self.idx) {
            if t > u {
                break;
            }
            self.value = v;
            self.idx += 1;
        }
    }

    /// The next unconsumed transition time, if any.
    #[inline]
    fn next_time(&self) -> Option<u64> {
        self.trans.get(self.idx).map(|&(t, _)| t)
    }
}

/// 64-lane clocked state over a [`TimedTape`]: the drop-in counterpart of
/// [`BitClockedCore`](crate::bitsim::BitClockedCore) for consumers that
/// only read sampled outputs.
#[derive(Debug, Clone)]
pub struct TimedTapeCore {
    waves: Vec<SlotWave>,
    /// Sweep-activity stamp per op: swept when `== gen` or when its own
    /// transition list is non-empty.
    active_gen: Vec<u64>,
    gen: u64,
    now_fs: u64,
    period_fs: u64,
    /// Recycled transition buffer for waveform rebuilds.
    scratch: Vec<(u64, u64)>,
}

impl TimedTapeCore {
    /// Creates clocked state already settled at `input_planes`: every
    /// slot holds its functional word (computed by one tape sweep) and
    /// nothing is in flight — identical to
    /// [`BitClockedCore::with_settled_planes`](crate::bitsim::BitClockedCore::with_settled_planes).
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive/finite or the plane count
    /// differs from the tape's input count.
    #[must_use]
    pub fn with_settled(
        program: &TimedTape,
        tape: &InstructionTape,
        period_ps: f64,
        input_planes: &[u64],
    ) -> Self {
        assert!(
            period_ps.is_finite() && period_ps > 0.0,
            "period must be positive"
        );
        let mut values = Vec::new();
        tape.execute_into(input_planes, &mut values);
        Self {
            waves: values
                .into_iter()
                .map(|v| SlotWave {
                    base: v,
                    trans: Vec::new(),
                })
                .collect(),
            active_gen: vec![0; program.ops.len()],
            gen: 0,
            now_fs: 0,
            period_fs: ps_to_fs(period_ps),
            scratch: Vec::new(),
        }
    }

    #[inline]
    fn mark_fanout(&mut self, program: &TimedTape, slot: u32) {
        let (start, end) = (
            program.fanout_start[slot as usize] as usize,
            program.fanout_start[slot as usize + 1] as usize,
        );
        for &o in &program.fanout_ops[start..end] {
            self.active_gen[o as usize] = self.gen;
        }
    }

    /// Applies one input word vector at the current edge, runs one
    /// period, and returns the output planes sampled at the next edge —
    /// same strictly-before sampling semantics as
    /// [`BitClockedCore::step_planes`](crate::bitsim::BitClockedCore::step_planes).
    ///
    /// # Panics
    ///
    /// Panics if the plane count differs from the program's input count.
    pub fn step_planes(&mut self, program: &TimedTape, input_planes: &[u64]) -> Vec<u64> {
        assert_eq!(
            input_planes.len(),
            program.inputs.len(),
            "expected {} input planes",
            program.inputs.len()
        );
        let now = self.now_fs;
        self.gen += 1;
        // Drive the inputs: absorb the previous edge's transition into
        // the base (inputs only ever change at edges, all in the past by
        // now) and record one transition at `now` per changed word.
        for (i, &w) in input_planes.iter().enumerate() {
            let slot = program.inputs[i];
            let wave = &mut self.waves[slot as usize];
            if let Some(&(_, v)) = wave.trans.last() {
                wave.base = v;
                wave.trans.clear();
            }
            if wave.base != w {
                wave.trans.push((now, w));
                self.mark_fanout(program, slot);
            }
        }
        // One levelized sweep: every op with fanin activity or an
        // in-flight waveform of its own rebuilds; quiet logic costs one
        // stamp compare.
        for o in 0..program.ops.len() {
            let out = program.ops[o].out as usize;
            if self.active_gen[o] != self.gen && self.waves[out].trans.is_empty() {
                continue;
            }
            self.rebuild(program, o, now);
        }
        let edge = now + self.period_fs;
        let sampled = program
            .outputs
            .iter()
            .map(|&s| self.waves[s as usize].sample_before(edge))
            .collect();
        self.now_fs = edge;
        sampled
    }

    /// Recomputes op `o`'s output waveform for the window starting at
    /// `now`: keep the old waveform strictly below `now + d` (new fanin
    /// activity cannot reach the output before one transport delay),
    /// re-derive everything at or after `now + d` from the fanin
    /// waveforms, change-only.
    fn rebuild(&mut self, program: &TimedTape, o: usize, now: u64) {
        let op = program.ops[o];
        let out = op.out as usize;
        let mut old = std::mem::take(&mut self.waves[out].trans);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();

        // Absorb stale history (committed before `now`) into the base.
        let mut base = self.waves[out].base;
        let mut i = 0;
        while i < old.len() && old[i].0 < now {
            base = old[i].1;
            i += 1;
        }
        // Keep the committed near-future [now, now + d) as-is.
        let horizon = now + op.delay_fs;
        let mut last = base;
        while i < old.len() && old[i].0 < horizon {
            scratch.push(old[i]);
            last = old[i].1;
            i += 1;
        }
        // Re-derive [now + d, ∞) from the fanins: evaluate at `now` and
        // at every later fanin transition time, emitting on change.
        let arity = op.kind.arity();
        let mut ca = FaninCursor::new(&self.waves[op.a as usize]);
        let mut cb = FaninCursor::new(&self.waves[op.b as usize]);
        let mut cc = FaninCursor::new(&self.waves[op.c as usize]);
        let mut u = now;
        loop {
            ca.advance(u);
            if arity > 1 {
                cb.advance(u);
            }
            if arity > 2 {
                cc.advance(u);
            }
            let pins = [ca.value, cb.value, cc.value];
            let v = op.kind.eval_word(&pins[..arity]);
            if v != last {
                scratch.push((u + op.delay_fs, v));
                last = v;
            }
            let mut next = ca.next_time();
            if arity > 1 {
                next = match (next, cb.next_time()) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                };
            }
            if arity > 2 {
                next = match (next, cc.next_time()) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                };
            }
            match next {
                Some(t) => u = t,
                None => break,
            }
        }

        let wave = &mut self.waves[out];
        wave.base = base;
        wave.trans = scratch;
        old.clear();
        self.scratch = old;
        if !self.waves[out].trans.is_empty() {
            self.mark_fanout(program, op.out);
        }
    }
}

/// Runs an adder's full operand stream on the timed tape core and returns
/// the sampled (`ysilver`) outputs in stream order — bit-identical to
/// [`run_clocked_batch`](crate::bitsim::run_clocked_batch) with the same
/// segment-dealing policy (contiguous segments per lane, exhausted lanes
/// holding their last operands).
///
/// # Panics
///
/// Panics if the period is not positive/finite.
#[must_use]
pub fn run_clocked_batch_timed(
    adder: &AdderNetlist,
    program: &TimedTape,
    tape: &InstructionTape,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> Vec<u64> {
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let width = adder.width();
    // The uniform reset state: all lanes settled at zero operands.
    let zero = vec![0u64; program.inputs.len()];
    let mut core = TimedTapeCore::with_settled(program, tape, period_ps, &zero);
    let seg = segment_len(n);
    let mut lane_pairs = [(0u64, 0u64); LANES];
    let mut out = vec![0u64; n];
    for t in 0..seg {
        for (l, lane) in lane_pairs.iter_mut().enumerate() {
            let idx = l * seg + t;
            if idx < n {
                *lane = inputs[idx];
            }
            // else: hold the lane's previous inputs (no activity).
        }
        let batch = LaneBatch::pack(width, &lane_pairs);
        let sampled = core.step_planes(program, &adder.input_planes(&batch));
        let lanes = LaneBatch::unpack_lanes(&sampled, LANES);
        for (l, &value) in lanes.iter().enumerate() {
            let idx = l * seg + t;
            if idx < n {
                out[idx] = value;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitsim::run_clocked_batch;
    use isa_netlist::builders::{build_exact, AdderTopology};
    use isa_netlist::cell::CellLibrary;
    use isa_netlist::sta::StaReport;

    fn fixture(topology: AdderTopology) -> (AdderNetlist, DelayAnnotation, InstructionTape, f64) {
        let adder = build_exact(16, topology);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let tape = InstructionTape::compile(adder.netlist());
        let crit = StaReport::analyze(adder.netlist(), &ann).critical_ps();
        (adder, ann, tape, crit)
    }

    fn pairs(n: usize, seed: u64) -> Vec<(u64, u64)> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFFFF, (x >> 20) & 0xFFFF)
            })
            .collect()
    }

    #[test]
    fn timed_replay_matches_event_core_across_periods() {
        // The contract in one battery: sampled outputs equal the classic
        // event queue's on every cycle, from deep overclock (transitions
        // pending across many edges) to a safe clock (no violations),
        // on both a ripple and a prefix topology.
        for (salt, topology) in [AdderTopology::Ripple, AdderTopology::KoggeStone]
            .into_iter()
            .enumerate()
        {
            let (adder, ann, tape, crit) = fixture(topology);
            let program = TimedTape::new(adder.netlist(), &tape, &ann);
            let inputs = pairs(500, 0x71AE + salt as u64);
            for factor in [0.25, 0.5, 0.75, 0.9, 1.1] {
                let period = crit * factor;
                assert_eq!(
                    run_clocked_batch_timed(&adder, &program, &tape, period, &inputs),
                    run_clocked_batch(&adder, &ann, period, &inputs),
                    "{topology:?} at {factor} x critical"
                );
            }
        }
    }

    #[test]
    fn zero_delay_tie_cells_are_accepted_and_replay_exactly() {
        // Carry-select (and skip) blocks materialize Const0/Const1 tie
        // cells, which the library annotates at 0 ps. The timed tape
        // must accept them (they never transition, so transport-delay
        // ordering is moot) and still match the event core — this
        // design class is reachable from full-space exploration.
        let (adder, ann, tape, crit) = fixture(AdderTopology::CarrySelect(4));
        assert!(
            adder
                .netlist()
                .cells()
                .iter()
                .any(|c| matches!(c.kind, CellKind::Const0 | CellKind::Const1)),
            "fixture must actually contain tie cells"
        );
        let program = TimedTape::new(adder.netlist(), &tape, &ann);
        let inputs = pairs(300, 0xC0DE);
        for factor in [0.5, 0.8, 1.1] {
            let period = crit * factor;
            assert_eq!(
                run_clocked_batch_timed(&adder, &program, &tape, period, &inputs),
                run_clocked_batch(&adder, &ann, period, &inputs),
                "carry-select at {factor} x critical"
            );
        }
    }

    #[test]
    fn settled_seed_then_steps_match_event_core() {
        // Mid-stream seeding parity: both cores settled at the same
        // operands must sample identically through violating steps.
        let (adder, ann, tape, crit) = fixture(AdderTopology::Ripple);
        let program = TimedTape::new(adder.netlist(), &tape, &ann);
        let period = crit * 0.6;
        let seed_input = pairs(LANES, 0x5EED);
        let seed_planes = adder.input_planes(&LaneBatch::pack(16, &seed_input));
        let mut timed = TimedTapeCore::with_settled(&program, &tape, period, &seed_planes);
        let mut event = crate::bitsim::BitClockedCore::with_settled_planes(
            adder.netlist(),
            &ann,
            period,
            &seed_planes,
        );
        for step in 0..32 {
            let step_input = pairs(LANES, 0xAB + step);
            let planes = adder.input_planes(&LaneBatch::pack(16, &step_input));
            assert_eq!(
                timed.step_planes(&program, &planes),
                event.step_planes(adder.netlist(), &planes),
                "step {step}"
            );
        }
    }
}
