//! The classifier's hard contract, checked exhaustively: over **all**
//! 8-bit operand pairs and several clock periods, no lane whose sampled
//! output actually differs from its settled output may ever be classified
//! safe. (The dual direction — over-approximating "unsafe" — only costs
//! speed and is deliberately allowed.)
//!
//! The stream is dealt to lanes exactly like the filtered runner deals
//! it (contiguous segments, exhausted lanes holding their operands), so
//! the verdicts line up one-to-one with the bit-sliced ground truth.

use isa_core::batch::{pack_planes_into, segment_len, LANES};
use isa_core::IsaConfig;
use isa_netlist::builders::{build_exact, isa, AdderNetlist, AdderTopology};
use isa_netlist::cell::CellLibrary;
use isa_netlist::classify::LaneClassifier;
use isa_netlist::sta::StaReport;
use isa_netlist::timing::{DelayAnnotation, VariationModel};
use isa_timing_sim::run_clocked_batch;

/// Per-cycle classifier verdicts for a stream, using the filtered
/// runner's lane dealing.
fn classify_stream(
    classifier: &LaneClassifier,
    width: u32,
    period_ps: f64,
    inputs: &[(u64, u64)],
) -> Vec<bool> {
    let n = inputs.len();
    let seg = segment_len(n);
    let mut stream = classifier.stream_classifier(period_ps);
    let mut lane_pairs = [(0u64, 0u64); LANES];
    let mut a_planes = Vec::new();
    let mut b_planes = Vec::new();
    let mut verdicts = vec![false; n];
    for t in 0..seg {
        for (l, lane) in lane_pairs.iter_mut().enumerate() {
            let idx = l * seg + t;
            if idx < n {
                *lane = inputs[idx];
            }
        }
        pack_planes_into(width, &lane_pairs, &mut a_planes, &mut b_planes);
        let safe = stream.step(&a_planes, &b_planes);
        for l in 0..LANES {
            let idx = l * seg + t;
            if idx < n {
                verdicts[idx] = safe >> l & 1 == 1;
            }
        }
    }
    verdicts
}

/// All 65536 8-bit operand pairs, in an order that mixes violating and
/// quiet transitions (sequential sweeps would understate history
/// effects).
fn exhaustive_pairs() -> Vec<(u64, u64)> {
    let mut pairs: Vec<(u64, u64)> = (0..1u64 << 16).map(|v| (v & 0xFF, v >> 8)).collect();
    // Deterministic shuffle (Fisher-Yates with an xorshift stream).
    let mut x = 0x2545F491_4F6CDD1Du64;
    for i in (1..pairs.len()).rev() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        pairs.swap(i, (x as usize) % (i + 1));
    }
    pairs
}

fn assert_conservative(adder: &AdderNetlist, annotation: &DelayAnnotation, fractions: &[f64]) {
    let classifier = LaneClassifier::build(adder, annotation);
    let crit = StaReport::analyze(adder.netlist(), annotation).critical_ps();
    let inputs = exhaustive_pairs();
    let settled = adder.add_batch(&inputs);
    for &fraction in fractions {
        let period = crit * fraction;
        let sampled = run_clocked_batch(adder, annotation, period, &inputs);
        let verdicts = classify_stream(&classifier, adder.width(), period, &inputs);
        let mut violations = 0usize;
        let mut safe = 0usize;
        for (i, &(a, b)) in inputs.iter().enumerate() {
            let violating = sampled[i] != settled[i];
            violations += usize::from(violating);
            safe += usize::from(verdicts[i]);
            assert!(
                !(violating && verdicts[i]),
                "cycle {i} (a={a:#x} b={b:#x}) violates timing but was classified safe \
                 (period {period:.1} ps, fraction {fraction})"
            );
        }
        // The run must be informative: overclocked points need real
        // violations, and the classifier must not be vacuously unsafe.
        if fraction < 0.9 {
            assert!(violations > 0, "no violations at fraction {fraction}?");
        }
        if fraction > 0.93 {
            assert!(safe > 0, "classifier vacuously unsafe at {fraction}");
        }
    }
}

#[test]
fn ripple_8bit_exhaustive_is_conservative() {
    let adder = build_exact(8, AdderTopology::Ripple);
    let lib = CellLibrary::industrial_65nm();
    let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
    assert_conservative(&adder, &ann, &[0.55, 0.75, 0.9, 1.02]);
}

#[test]
fn ripple_8bit_with_process_variation_is_conservative() {
    // A perturbed die exercises the integer-femtosecond rounding margins.
    let adder = build_exact(8, AdderTopology::Ripple);
    let lib = CellLibrary::industrial_65nm();
    let ann =
        DelayAnnotation::with_variation(adder.netlist(), &lib, &VariationModel::new(0.05, 0xD1E));
    assert_conservative(&adder, &ann, &[0.7, 0.9]);
}

#[test]
fn kogge_stone_8bit_exhaustive_is_conservative() {
    // Prefix topology: the group-PG span pinning rules carry the load.
    let adder = build_exact(8, AdderTopology::KoggeStone);
    let lib = CellLibrary::industrial_65nm();
    let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
    assert_conservative(&adder, &ann, &[0.7, 0.85, 0.95]);
}

#[test]
fn isa_8bit_exhaustive_is_conservative() {
    // An ISA assembly: SPEC window + COMP correction/reduction logic on
    // top of ripple blocks (the chain-span machinery).
    let cfg = IsaConfig::new(8, 4, 1, 1, 2).expect("valid 8-bit quadruple");
    let adder = isa::build(&cfg, AdderTopology::Ripple).expect("buildable");
    let lib = CellLibrary::industrial_65nm();
    let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
    assert_conservative(&adder, &ann, &[0.6, 0.8, 0.95]);
}
