//! Property-based tests of the event-driven simulator against randomly
//! generated netlists: the settled state must always equal the zero-delay
//! functional evaluation, sampling at/after the critical delay must be
//! error-free, and activity accounting must be consistent.

use isa_netlist::cell::{CellKind, CellLibrary};
use isa_netlist::graph::{Netlist, NetlistBuilder};
use isa_netlist::sta::StaReport;
use isa_netlist::timing::{DelayAnnotation, VariationModel};
use isa_timing_sim::{ps_to_fs, GateLevelSim};
use proptest::prelude::*;

/// Recipe for one random cell: kind selector plus input selectors.
type CellRecipe = (u8, u16, u16, u16);

/// Builds a random combinational netlist from recipes: each cell draws its
/// inputs from already-existing nets, so the result is a valid DAG.
fn build_random(n_inputs: usize, recipes: &[CellRecipe]) -> Netlist {
    let kinds = [
        CellKind::Inv,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Ao21,
        CellKind::Maj3,
        CellKind::Xor3,
    ];
    let mut b = NetlistBuilder::new("random");
    let mut nets: Vec<_> = (0..n_inputs).map(|i| b.input(format!("i{i}"))).collect();
    for &(k, s0, s1, s2) in recipes {
        let kind = kinds[k as usize % kinds.len()];
        let pick = |sel: u16, nets: &[isa_netlist::graph::NetId]| nets[sel as usize % nets.len()];
        let ins: Vec<_> = [s0, s1, s2][..kind.arity()]
            .iter()
            .map(|&s| pick(s, &nets))
            .collect();
        let out = b.cell(kind, &ins);
        nets.push(out);
    }
    // Outputs: the last few nets (always at least one).
    let n_out = nets.len().min(8);
    for (i, &net) in nets[nets.len() - n_out..].iter().enumerate() {
        b.mark_output(net, format!("o{i}"));
    }
    b.finish().expect("random netlist is well-formed")
}

fn input_vector(netlist: &Netlist, seed: u64) -> Vec<bool> {
    (0..netlist.inputs().len())
        .map(|i| (seed >> (i % 64)) & 1 == 1)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After quiescence the simulator state equals the functional eval,
    /// for any netlist, any delays, any input sequence.
    #[test]
    fn settled_equals_functional(
        recipes in prop::collection::vec(any::<CellRecipe>(), 1..60),
        seeds in prop::collection::vec(any::<u64>(), 1..8),
        delay_seed in any::<u64>(),
    ) {
        let nl = build_random(5, &recipes);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib)
            .perturbed(&VariationModel::new(0.08, delay_seed));
        let mut sim = GateLevelSim::new(&nl, &ann);
        for &seed in &seeds {
            let inputs = input_vector(&nl, seed);
            sim.set_inputs(&inputs);
            sim.run_to_quiescence(2_000_000).unwrap();
            let expected = nl.evaluate_outputs_u64(&inputs);
            prop_assert_eq!(sim.outputs_u64(), expected);
        }
    }

    /// Sampling one critical delay after each input change is always
    /// timing-error-free, regardless of history.
    #[test]
    fn sampling_after_critical_delay_is_exact(
        recipes in prop::collection::vec(any::<CellRecipe>(), 1..50),
        seeds in prop::collection::vec(any::<u64>(), 2..6),
    ) {
        let nl = build_random(4, &recipes);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib);
        let sta = StaReport::analyze(&nl, &ann);
        let period = ps_to_fs(sta.critical_ps() + 1.0);
        let mut sim = GateLevelSim::new(&nl, &ann);
        for &seed in &seeds {
            let inputs = input_vector(&nl, seed);
            let t0 = sim.now_fs();
            sim.set_inputs(&inputs);
            sim.run_until(t0 + period);
            prop_assert_eq!(sim.outputs_u64(), nl.evaluate_outputs_u64(&inputs));
        }
    }

    /// Commit counters equal the recorded waveform's transition counts.
    #[test]
    fn commit_counts_match_waveform(
        recipes in prop::collection::vec(any::<CellRecipe>(), 1..40),
        seeds in prop::collection::vec(any::<u64>(), 1..5),
    ) {
        let nl = build_random(4, &recipes);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.start_recording();
        for &seed in &seeds {
            let inputs = input_vector(&nl, seed);
            sim.set_inputs(&inputs);
            sim.run_to_quiescence(2_000_000).unwrap();
        }
        let wave = sim.take_recording().unwrap();
        let counts = sim.net_commit_counts();
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total as usize, wave.len());
        for (index, &count) in counts.iter().enumerate() {
            let net = isa_netlist::graph::NetId::from_index(index);
            prop_assert_eq!(
                count as usize,
                wave.transition_count(net),
                "net {}", net
            );
        }
    }

    /// VCD export of any recorded waveform declares every net exactly once
    /// and replays transitions in order.
    #[test]
    fn vcd_is_structurally_sound(
        recipes in prop::collection::vec(any::<CellRecipe>(), 1..30),
        seed in any::<u64>(),
    ) {
        let nl = build_random(3, &recipes);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib);
        let mut sim = GateLevelSim::new(&nl, &ann);
        sim.start_recording();
        sim.set_inputs(&input_vector(&nl, seed));
        sim.run_to_quiescence(2_000_000).unwrap();
        let wave = sim.take_recording().unwrap();
        let vcd = wave.to_vcd(&nl);
        prop_assert_eq!(vcd.matches("$var wire 1 ").count(), nl.net_count());
        // Timestamps non-decreasing.
        let mut last = 0u64;
        for line in vcd.lines() {
            if let Some(ts) = line.strip_prefix('#') {
                let t: u64 = ts.parse().unwrap();
                prop_assert!(t >= last, "timestamps must not decrease");
                last = t;
            }
        }
    }
}
