//! Lane-vs-scalar parity: every lane of a 64-lane bit-sliced simulation
//! must equal the scalar `SimCore`/`ClockedCore` result bit-for-bit — at
//! safe and overclocked settings, over random netlists, random delays and
//! random input sequences. This is the contract that makes the batched
//! backend a drop-in replacement for the scalar event queue.

use isa_core::batch::{segment_len, LaneBatch, LANES};
use isa_netlist::builders::{build_exact, isa, AdderTopology};
use isa_netlist::cell::{CellKind, CellLibrary};
use isa_netlist::graph::{Netlist, NetlistBuilder};
use isa_netlist::sta::StaReport;
use isa_netlist::timing::{DelayAnnotation, VariationModel};
use isa_timing_sim::{run_clocked_batch, BitSimCore, ClockedSim, GateLevelSim};
use proptest::prelude::*;

/// Recipe for one random cell: kind selector plus input selectors.
type CellRecipe = (u8, u16, u16, u16);

/// Builds a random combinational netlist (same generator as the scalar
/// simulator's property suite).
fn build_random(n_inputs: usize, recipes: &[CellRecipe]) -> Netlist {
    let kinds = [
        CellKind::Inv,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Ao21,
        CellKind::Oai21,
        CellKind::Maj3,
        CellKind::Xor3,
    ];
    let mut b = NetlistBuilder::new("random");
    let mut nets: Vec<_> = (0..n_inputs).map(|i| b.input(format!("i{i}"))).collect();
    for &(k, s0, s1, s2) in recipes {
        let kind = kinds[k as usize % kinds.len()];
        let pick = |sel: u16, nets: &[isa_netlist::graph::NetId]| nets[sel as usize % nets.len()];
        let ins: Vec<_> = [s0, s1, s2][..kind.arity()]
            .iter()
            .map(|&s| pick(s, &nets))
            .collect();
        let out = b.cell(kind, &ins);
        nets.push(out);
    }
    let n_out = nets.len().min(8);
    for (i, &net) in nets[nets.len() - n_out..].iter().enumerate() {
        b.mark_output(net, format!("o{i}"));
    }
    b.finish().expect("random netlist is well-formed")
}

/// Packs one bool vector per lane into per-input plane words.
fn pack_input_words(vectors: &[Vec<bool>]) -> Vec<u64> {
    let pins = vectors[0].len();
    let mut words = vec![0u64; pins];
    for (l, v) in vectors.iter().enumerate() {
        for (p, &bit) in v.iter().enumerate() {
            if bit {
                words[p] |= 1u64 << l;
            }
        }
    }
    words
}

fn lane_vector(seed: u64, lane: usize, pins: usize) -> Vec<bool> {
    let mut x = seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..pins)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random netlists, random delays, mid-flight sampling at an arbitrary
    /// time: every lane of the word simulator equals its private scalar
    /// run — including unsettled (timing-erroneous) intermediate states.
    #[test]
    fn random_netlist_lanes_match_scalar_mid_flight(
        recipes in prop::collection::vec(any::<CellRecipe>(), 1..50),
        seeds in prop::collection::vec(any::<u64>(), 1..5),
        delay_seed in any::<u64>(),
        sample_frac in 0.05f64..1.5,
    ) {
        let nl = build_random(5, &recipes);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib)
            .perturbed(&VariationModel::new(0.08, delay_seed));
        let crit_fs = isa_timing_sim::ps_to_fs(
            StaReport::analyze(&nl, &ann).critical_ps().max(1.0));
        let step_fs = ((crit_fs as f64 * sample_frac) as u64).max(1);
        let pins = nl.inputs().len();

        let mut word = BitSimCore::new(&nl, &ann);
        let mut scalars: Vec<GateLevelSim<'_>> =
            (0..LANES).map(|_| GateLevelSim::new(&nl, &ann)).collect();

        for (round, &seed) in seeds.iter().enumerate() {
            let vectors: Vec<Vec<bool>> =
                (0..LANES).map(|l| lane_vector(seed, l, pins)).collect();
            word.set_input_words(&nl, &pack_input_words(&vectors));
            let t = word.now_fs() + step_fs;
            word.run_until(&nl, t);
            for (l, scalar) in scalars.iter_mut().enumerate() {
                scalar.set_inputs(&vectors[l]);
                scalar.run_until(t);
                for net_idx in 0..nl.net_count() {
                    let net = isa_netlist::graph::NetId::from_index(net_idx);
                    prop_assert_eq!(
                        word.value_word(net) >> l & 1 == 1,
                        scalar.value(net),
                        "round {} lane {} net {}", round, l, net_idx
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full batched stream runner vs scalar `ClockedCore` runs of each
    /// contiguous segment, on real adder netlists at safe and overclocked
    /// periods — the acceptance-criterion parity check.
    #[test]
    fn clocked_stream_lanes_match_scalar_at_safe_and_overclocked(
        overclock in prop_oneof![Just(1.05f64), Just(0.7), Just(0.45), Just(0.3)],
        seed in any::<u64>(),
        n in 65usize..320,
        is_isa in any::<bool>(),
    ) {
        let adder = if is_isa {
            let cfg = isa_core::IsaConfig::new(32, 8, 0, 1, 4).unwrap();
            isa::build(&cfg, AdderTopology::Ripple).unwrap()
        } else {
            build_exact(16, AdderTopology::Ripple)
        };
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib)
            .perturbed(&VariationModel::new(0.05, seed));
        let crit = StaReport::analyze(adder.netlist(), &ann).critical_ps();
        let period = crit * overclock;
        let mask = (1u64 << adder.width()) - 1;
        let mut x = seed | 1;
        let inputs: Vec<(u64, u64)> = (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 32 & mask, x & mask)
            })
            .collect();

        let sampled = run_clocked_batch(&adder, &ann, period, &inputs);
        let seg = segment_len(n);
        for l in 0..LANES {
            let start = l * seg;
            if start >= n {
                break;
            }
            let end = (start + seg).min(n);
            let mut scalar = ClockedSim::new(adder.netlist(), &ann, period);
            for (off, &(a, b)) in inputs[start..end].iter().enumerate() {
                let expect = scalar.step(&adder.input_values(a, b));
                prop_assert_eq!(
                    sampled[start + off], expect,
                    "lane {} cycle {} at {:.2}x crit", l, off, overclock
                );
                if overclock > 1.0 {
                    prop_assert_eq!(expect, (a + b) & (mask << 1 | 1));
                }
            }
        }
    }
}

#[test]
fn batch_packing_round_trip_through_adder_planes() {
    // Directed seam check: a stream one longer than a multiple of LANES
    // exercises the ragged final segment.
    let adder = build_exact(16, AdderTopology::Cla4);
    let lib = CellLibrary::industrial_65nm();
    let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
    let crit = StaReport::analyze(adder.netlist(), &ann).critical_ps();
    let inputs: Vec<(u64, u64)> = (0..129u64)
        .map(|i| ((i * 509) & 0xFFFF, (i * 263) & 0xFFFF))
        .collect();
    let sampled = run_clocked_batch(&adder, &ann, crit + 1.0, &inputs);
    for (i, &(a, b)) in inputs.iter().enumerate() {
        assert_eq!(sampled[i], a + b, "cycle {i}");
    }
    let batch = LaneBatch::pack(16, &inputs[..LANES]);
    assert_eq!(batch.len(), LANES);
}
