//! The chaos battery: the service under seeded fault injection.
//!
//! Each test runs a fixed request script against a service configured
//! with a seeded [`FaultPlan`] and asserts *exact* outcomes:
//!
//! * **availability** — every request gets a response; injected store
//!   I/O errors, torn writes, evaluation panics and stalls never hang or
//!   kill the process;
//! * **byte determinism** — every successful payload under faults is
//!   byte-identical to the fault-free baseline (a store that "mostly"
//!   round-trips, or a degradation tier that drifts, fails here);
//! * **policy-exact degradation** — which requests degrade is decided by
//!   the admission-time cost budget alone, so it is asserted exactly,
//!   not statistically;
//! * **deterministic shedding** — with the worker gate closed, exactly
//!   the requests beyond the queue bound are shed, and they are the
//!   *last* submitted ones.
//!
//! Cycle counts are small (the battery runs in CI on every push); the
//! determinism being asserted is exact, not asymptotic, so small runs
//! prove as much as big ones.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use isa_serve::{FaultPlan, FaultPoint, Frontend, Json, ServeConfig, Service};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "isa-serve-chaos-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn service(store: Option<&PathBuf>, faults: FaultPlan, sim_budget: Option<u64>) -> Arc<Service> {
    Arc::new(
        Service::new(ServeConfig {
            threads: 2,
            store_dir: store.cloned(),
            sim_budget,
            faults,
            quiet: true,
            ..ServeConfig::default()
        })
        .expect("service"),
    )
}

/// The battery's request script: quality across designs, workloads and
/// CPR points, a kernel query, a cheapest sweep, and one malformed line.
fn script() -> Vec<String> {
    let mut lines = vec![
        r#"{"id":0,"op":"ping"}"#.to_owned(),
        r#"{"id":1,"op":"quality","design":"8,2,1,4","cpr":0.0,"workload":"uniform","cycles":800}"#.to_owned(),
        r#"{"id":2,"op":"quality","design":"8,2,1,4","cpr":0.2,"workload":"uniform","cycles":800}"#.to_owned(),
        r#"{"id":3,"op":"quality","design":"8,1,1,4","cpr":0.2,"workload":"walk","cycles":800}"#.to_owned(),
        r#"{"id":4,"op":"quality","design":"8,2,2,4","cpr":0.1,"workload":"sine","cycles":800}"#.to_owned(),
        r#"{"id":5,"op":"quality","design":"exact","cpr":0.0,"workload":"accumulate","cycles":800}"#.to_owned(),
        r#"{"id":6,"op":"quality","design":"8,2,1,4","cpr":0.1,"workload":"dot","scale":1}"#.to_owned(),
        r#"{"id":7,"op":"quality","design":"8,2,1,4","cpr":0.2,"workload":"uniform","cycles":800}"#.to_owned(),
        r#"{"id":8,"this is":"not a request"}"#.to_owned(),
    ];
    // Duplicates of id 2/7 to exercise coalescing under faults.
    lines.push(
        r#"{"id":9,"op":"quality","design":"8,2,1,4","cpr":0.2,"workload":"uniform","cycles":800}"#
            .to_owned(),
    );
    lines
}

/// Runs the script serially and returns `(status, degraded, payload)`
/// per line, id-ordered by construction.
fn run_script(service: &Service, lines: &[String]) -> Vec<(String, bool, String)> {
    lines
        .iter()
        .map(|line| {
            let response = service.answer_line(line);
            let v = Json::parse(&response).expect("responses are valid JSON");
            let status = v.get("status").and_then(Json::as_str).unwrap().to_owned();
            let degraded = v.get("degraded").and_then(Json::as_bool).unwrap_or(false);
            let payload = v
                .get("result")
                .map(Json::render)
                .or_else(|| v.get("error").map(Json::render))
                .unwrap();
            (status, degraded, payload)
        })
        .collect()
}

/// Store faults (read errors, write errors, torn writes at substantial
/// rates) must not change a single served byte relative to the
/// fault-free baseline — the service detects, logs, recomputes.
#[test]
fn store_faults_never_change_served_bytes() {
    let lines = script();
    let baseline = run_script(&service(None, FaultPlan::none(), None), &lines);

    for seed in [1u64, 2, 3] {
        let dir = temp_dir(&format!("storefaults-{seed}"));
        let faults = FaultPlan::seeded(seed)
            .with_rate(FaultPoint::StoreRead, 96)
            .with_rate(FaultPoint::StoreWrite, 96)
            .with_rate(FaultPoint::TornWrite, 96);
        let chaotic = service(Some(&dir), faults, None);
        // Two passes: the second hits whatever survived of the store.
        for pass in 0..2 {
            let got = run_script(&chaotic, &lines);
            assert_eq!(
                got, baseline,
                "seed {seed} pass {pass}: served bytes diverged from the fault-free baseline"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Hot (store-served) responses are byte-identical to cold (computed)
/// ones — across two separate service processes sharing the directory.
#[test]
fn hot_and_cold_answers_are_byte_identical() {
    let dir = temp_dir("hotcold");
    let lines = script();
    let cold = run_script(&service(Some(&dir), FaultPlan::none(), None), &lines);
    let warm_service = service(Some(&dir), FaultPlan::none(), None);
    let hot = run_script(&warm_service, &lines);
    assert_eq!(cold, hot, "hot answers diverged from cold");
    let hits = warm_service.counters().store_hits.get();
    assert!(
        hits >= 7,
        "second service must answer from the store, hits={hits}"
    );
    assert_eq!(
        warm_service.counters().computed.get(),
        0,
        "second service must not simulate at all"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// An injected evaluation panic fails exactly that request with a
/// retriable error; the service keeps answering, and a retry (the fault
/// fires once at rate 256 → next occurrence also fires, so use a fresh
/// unarmed service against the same store) succeeds.
#[test]
fn evaluation_panics_are_isolated_to_their_request() {
    let dir = temp_dir("panic");
    let line =
        r#"{"id":1,"op":"quality","design":"8,2,1,4","cpr":0.1,"workload":"uniform","cycles":500}"#;
    let panicking = service(
        Some(&dir),
        FaultPlan::seeded(7).with_rate(FaultPoint::EvalPanic, 256),
        None,
    );
    let response = panicking.answer_line(line);
    let v = Json::parse(&response).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(v.get("retriable").and_then(Json::as_bool), Some(true));
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("panicked"),
        "error names the panic"
    );
    assert_eq!(panicking.counters().eval_panics.get(), 1);
    // The process (and the same service) is still fully available.
    let pong = panicking.answer_line(r#"{"id":2,"op":"ping"}"#);
    assert!(pong.contains("\"pong\""));
    // A failed evaluation stored nothing; a healthy retry computes.
    let healthy = service(Some(&dir), FaultPlan::none(), None);
    let retried = healthy.answer_line(line);
    assert!(retried.contains("\"status\":\"ok\""), "{retried}");
    assert_eq!(healthy.counters().computed.get(), 1);
    fs::remove_dir_all(&dir).unwrap();
}

/// Degradation is policy-exact: with a budget of B additions, requests
/// costing ≤ B simulate and requests costing > B answer from the exact
/// structural bound with `degraded:true` — regardless of faults, store,
/// or request order.
#[test]
fn degradation_follows_the_budget_exactly() {
    let svc = service(None, FaultPlan::none(), Some(1_000));
    let cheap = r#"{"id":1,"op":"quality","design":"8,2,1,4","cpr":0.2,"workload":"uniform","cycles":1000}"#;
    let costly = r#"{"id":2,"op":"quality","design":"8,2,1,4","cpr":0.2,"workload":"uniform","cycles":1001}"#;
    let cheap_v = Json::parse(&svc.answer_line(cheap)).unwrap();
    let costly_v = Json::parse(&svc.answer_line(costly)).unwrap();
    assert_eq!(cheap_v.get("degraded").and_then(Json::as_bool), Some(false));
    assert_eq!(costly_v.get("degraded").and_then(Json::as_bool), Some(true));
    let bound = costly_v.get("result").unwrap();
    assert_eq!(
        bound.get("bound").and_then(Json::as_str),
        Some("structural-exact"),
        "degraded answers carry the bound marker"
    );
    assert_eq!(
        bound.get("rms_re_timing_pct"),
        Some(&Json::Null),
        "timing fields are null in a structural bound, not fake zeros"
    );
    // The structural RMS is clock-independent, so the bound must match
    // the *structural* component of a full (unbudgeted) simulation of
    // the same request, bit for bit.
    let unbudgeted = service(None, FaultPlan::none(), None);
    let full_v = Json::parse(&unbudgeted.answer_line(costly)).unwrap();
    assert_eq!(full_v.get("degraded").and_then(Json::as_bool), Some(false));
    let full = full_v.get("result").unwrap();
    assert_eq!(
        full.get("rms_re_struct_pct")
            .and_then(Json::as_f64)
            .map(f64::to_bits),
        bound
            .get("rms_re_struct_pct")
            .and_then(Json::as_f64)
            .map(f64::to_bits),
        "structural error of bound and simulation agree bit-exactly"
    );
    assert_eq!(svc.counters().degraded.get(), 1);
}

/// With the worker gate closed, submissions beyond the queue bound are
/// shed deterministically: exactly the last `N - cap` requests error
/// retriably, the first `cap` are answered.
#[test]
fn overload_sheds_exactly_the_overflow() {
    let svc = service(None, FaultPlan::none(), None);
    let mut frontend = Frontend::new(Arc::clone(&svc), 2, 3);
    let ids: Vec<u64> = (1..=7).collect();
    for id in &ids {
        frontend.submit(&format!(r#"{{"id":{id},"op":"ping"}}"#));
    }
    let responses = frontend.finish();
    assert_eq!(responses.len(), 7, "every request gets a response");
    for (i, response) in responses.iter().enumerate() {
        let v = Json::parse(response).unwrap();
        // Responses come back in submission order with ids echoed.
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(ids[i]));
        if i < 3 {
            assert_eq!(
                v.get("status").and_then(Json::as_str),
                Some("ok"),
                "request {i} was admitted"
            );
        } else {
            assert_eq!(
                v.get("status").and_then(Json::as_str),
                Some("error"),
                "request {i} was shed"
            );
            assert_eq!(v.get("retriable").and_then(Json::as_bool), Some(true));
        }
    }
    assert_eq!(svc.counters().shed.get(), 4);
}

/// Slow-evaluation faults delay but never change or drop answers, and
/// coalesced duplicates still share one computation.
#[test]
fn slow_faults_delay_but_do_not_distort() {
    let lines = script();
    let baseline = run_script(&service(None, FaultPlan::none(), None), &lines);
    let slowed = service(
        None,
        FaultPlan::seeded(5)
            .with_rate(FaultPoint::SlowEval, 128)
            .with_slow_ms(2),
        None,
    );
    assert_eq!(run_script(&slowed, &lines), baseline);
}

/// A planted corrupt record is detected, logged, recomputed and healed —
/// the recomputed answer matches a never-corrupted store byte for byte.
#[test]
fn corrupt_records_are_recomputed_and_healed() {
    let dir = temp_dir("heal");
    let lines = script();
    let first = service(Some(&dir), FaultPlan::none(), None);
    let baseline = run_script(&first, &lines);
    // Vandalize every record on disk.
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rec") {
            let mut bytes = fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x55;
            fs::write(&path, &bytes).unwrap();
        }
    }
    let second = service(Some(&dir), FaultPlan::none(), None);
    assert_eq!(
        run_script(&second, &lines),
        baseline,
        "healed answers diverged"
    );
    let corrupt = second.counters().store_corrupt.get();
    assert!(
        corrupt > 0,
        "vandalized records must be detected, saw {corrupt}"
    );
    // Healed: a third service is served from the store without computing.
    let third = service(Some(&dir), FaultPlan::none(), None);
    assert_eq!(run_script(&third, &lines), baseline);
    assert_eq!(third.counters().computed.get(), 0);
    fs::remove_dir_all(&dir).unwrap();
}
