//! Protocol-level smoke tests: quality answers match a direct engine
//! computation, cheapest answers are Pareto-consistent, and the two
//! transports (line session, Unix socket) serve the same bytes.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use isa_core::{structural_errors, Adder as _, Design, IsaConfig, Substrate as _};
use isa_engine::{Engine, ExperimentConfig, GateLevelSubstrate};
use isa_serve::{serve_lines, Json, ServeConfig, Service};
use isa_workloads::{take_pairs, UniformWorkload};

fn temp_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "isa-serve-smoke-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn service() -> Arc<Service> {
    Arc::new(
        Service::new(ServeConfig {
            threads: 2,
            quiet: true,
            ..ServeConfig::default()
        })
        .expect("service"),
    )
}

/// The service's stream quality answer equals the same numbers computed
/// directly on the engine with the same configuration — the service is a
/// front end, not a second implementation.
#[test]
fn stream_quality_matches_direct_computation() {
    let svc = service();
    let cycles = 600usize;
    let cpr = 0.2f64;
    let design = Design::Isa("(8,2,1,4)".parse::<IsaConfig>().unwrap());
    let response = svc.answer_line(&format!(
        r#"{{"id":1,"op":"quality","design":"(8,2,1,4)","cpr":{cpr},"workload":"uniform","cycles":{cycles}}}"#
    ));
    let v = Json::parse(&response).unwrap();
    assert_eq!(
        v.get("status").and_then(Json::as_str),
        Some("ok"),
        "{response}"
    );
    let result = v.get("result").unwrap();

    // Direct computation with an independent engine.
    let config = ExperimentConfig::default();
    let engine = Engine::with_threads(1);
    let substrate = GateLevelSubstrate::new(engine.cache(), config.clone());
    let inputs = take_pairs(UniformWorkload::new(32, config.workload_seed), cycles);
    let ctx = engine.try_context(&design, &config).unwrap();
    let clock_ps = config.clock_ps(cpr);
    let silvers = substrate.run_batch(&design, clock_ps, &inputs);
    let golds = ctx.gold.add_batch(&inputs);
    let exact = isa_core::ExactAdder::new(32);
    let mut stats = isa_core::CombinedErrorStats::new();
    for ((&(a, b), &silver), &gold) in inputs.iter().zip(&silvers).zip(&golds) {
        stats.push(&isa_core::OutputTriple::new(exact.add(a, b), gold, silver));
    }
    let (s_pct, t_pct, j_pct) = stats.rms_re_percent();

    let served = |k: &str| result.get(k).and_then(Json::as_f64).unwrap().to_bits();
    assert_eq!(served("rms_re_struct_pct"), s_pct.to_bits());
    assert_eq!(served("rms_re_timing_pct"), t_pct.to_bits());
    assert_eq!(served("rms_re_joint_pct"), j_pct.to_bits());
    assert_eq!(served("clock_ps"), clock_ps.to_bits());
}

/// The degraded tier equals the exact structural model, bit for bit.
#[test]
fn degraded_tier_matches_structural_model() {
    let svc = Arc::new(
        Service::new(ServeConfig {
            threads: 1,
            sim_budget: Some(1),
            quiet: true,
            ..ServeConfig::default()
        })
        .unwrap(),
    );
    let response = svc.answer_line(
        r#"{"id":1,"op":"quality","design":"(8,2,1,4)","cpr":0.3,"workload":"uniform","cycles":400}"#,
    );
    let v = Json::parse(&response).unwrap();
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true));
    let result = v.get("result").unwrap();

    let config = ExperimentConfig::default();
    let design = Design::Isa("(8,2,1,4)".parse::<IsaConfig>().unwrap());
    let inputs = take_pairs(UniformWorkload::new(32, config.workload_seed), 400);
    let gold = design.behavioural();
    let stats = structural_errors(gold.as_ref(), inputs.iter().copied());
    let (s_pct, _, _) = stats.rms_re_percent();
    assert_eq!(
        result
            .get("rms_re_struct_pct")
            .and_then(Json::as_f64)
            .unwrap()
            .to_bits(),
        s_pct.to_bits()
    );
    // No synthesis happened for a degraded stream answer.
    assert_eq!(svc.counters().computed.get(), 0);
}

/// The cheapest answer is Pareto-consistent with the per-design quality
/// answers the same service gives: the winner meets the floor, and no
/// strictly cheaper paper design does.
#[test]
fn cheapest_is_consistent_with_quality_answers() {
    let svc = service();
    let floor_db = 25.0;
    let response = svc.answer_line(&format!(
        r#"{{"id":1,"op":"cheapest","min_quality_db":{floor_db},"cpr":0.1,"workload":"uniform","cycles":500}}"#
    ));
    let v = Json::parse(&response).unwrap();
    assert_eq!(
        v.get("status").and_then(Json::as_str),
        Some("ok"),
        "{response}"
    );
    let result = v.get("result").unwrap();
    let winner = result
        .get("design")
        .and_then(Json::as_str)
        .expect("a winner")
        .to_owned();
    let winner_area = result.get("area").and_then(Json::as_f64).unwrap();
    let feasible = result.get("feasible").and_then(Json::as_u64).unwrap();
    assert!(feasible >= 1);

    // Re-ask quality for every design; recompute the winner independently.
    let config = ExperimentConfig::default();
    let engine = Engine::with_threads(1);
    let mut best: Option<(String, f64)> = None;
    for design in isa_core::paper_designs() {
        let q = svc.answer_line(&format!(
            r#"{{"id":2,"op":"quality","design":"{design}","cpr":0.1,"workload":"uniform","cycles":500}}"#
        ));
        let qv = Json::parse(&q).unwrap();
        if qv.get("status").and_then(Json::as_str) != Some("ok") {
            continue;
        }
        let db = qv
            .get("result")
            .and_then(|r| r.get("quality_db"))
            .and_then(Json::to_db)
            .unwrap();
        if db < floor_db {
            continue;
        }
        let area = engine
            .try_context(&design, &config)
            .unwrap()
            .synthesized
            .area;
        let better = match &best {
            None => true,
            Some((label, best_area)) => {
                area < *best_area || (area == *best_area && design.to_string() < *label)
            }
        };
        if better {
            best = Some((design.to_string(), area));
        }
    }
    let (expect_design, expect_area) = best.expect("at least one feasible design");
    assert_eq!(winner, expect_design);
    assert_eq!(winner_area.to_bits(), expect_area.to_bits());
}

/// One line session over `serve_lines`: ordering, id echo, and malformed
/// lines answered in place.
#[test]
fn line_session_answers_in_order() {
    let svc = service();
    let input = concat!(
        "{\"id\":\"a\",\"op\":\"ping\"}\n",
        "\n",
        "{\"id\":\"b\",\"op\":\"quality\",\"design\":\"8,2,1,4\",\"cpr\":0.0,\"workload\":\"uniform\",\"cycles\":300}\n",
        "not json at all\n",
        "{\"id\":\"d\",\"op\":\"ping\"}\n",
    );
    let mut output = Vec::new();
    serve_lines(&svc, input.as_bytes(), &mut output, 3, 16).unwrap();
    let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
    assert_eq!(
        lines.len(),
        4,
        "blank lines are skipped, bad lines answered"
    );
    assert!(lines[0].starts_with("{\"id\":\"a\""));
    assert!(lines[1].starts_with("{\"id\":\"b\""));
    assert!(lines[2].contains("\"status\":\"error\""));
    assert!(lines[3].starts_with("{\"id\":\"d\""));
}

/// The Unix socket transport serves the same bytes as an in-process
/// line session.
#[cfg(unix)]
#[test]
fn unix_socket_serves_identical_bytes() {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::os::unix::net::UnixStream;

    let svc = service();
    let script = [
        r#"{"id":1,"op":"ping"}"#,
        r#"{"id":2,"op":"quality","design":"8,2,1,4","cpr":0.1,"workload":"uniform","cycles":300}"#,
    ];
    let mut direct = Vec::new();
    for line in &script {
        direct.push(svc.answer_line(line));
    }

    let path = temp_path("socket");
    {
        let svc = Arc::clone(&svc);
        let path = path.clone();
        std::thread::spawn(move || {
            let _ = isa_serve::serve_unix(&svc, &path, 2, 8);
        });
    }
    // The listener binds asynchronously; retry the connect briefly.
    let mut stream = None;
    for _ in 0..100 {
        match UnixStream::connect(&path) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let mut stream = stream.expect("connect to isa-serve socket");
    for line in &script {
        writeln!(stream, "{line}").unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let reader = BufReader::new(&stream);
    let got: Vec<String> = reader.lines().map(Result::unwrap).collect();
    assert_eq!(got, direct, "socket transport diverged from direct answers");
    let _ = fs::remove_file(&path);
}
