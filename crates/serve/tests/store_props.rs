//! Property tests of the result store: round trips, byte-flip corruption,
//! truncation, and torn-write recovery.
//!
//! The store's contract is absolute: a validated `Hit` carries exactly
//! the bytes that were `put`, and *any* single-byte damage to a record —
//! flip, truncation, torn write — is detected as `Corrupt`/`Miss`, never
//! served. These tests drive that contract over generated payloads and
//! over every byte position / truncation length of a representative
//! record, which is feasible because records are small.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use isa_serve::store::{encode_record, validate_record};
use isa_serve::{FaultPlan, FaultPoint, ResultStore, StoreGet};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "isa-serve-props-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A printable single-line payload from arbitrary bytes (payloads are
/// rendered JSON in production, but the store must not care).
fn payload_from(bytes: &[u8]) -> String {
    bytes.iter().map(|b| char::from(b'!' + (b % 94))).collect()
}

/// A single-line key from a seed.
fn key_from(seed: u64) -> String {
    format!("quality/v1 design=({seed}) cpr={seed:016x}")
}

proptest! {
    /// Whatever went in comes out, for any key/payload pair.
    #[test]
    fn round_trip_returns_exact_payload(
        key_seed in any::<u64>(),
        payload_bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let dir = temp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let faults = FaultPlan::none();
        let key = key_from(key_seed);
        let payload = payload_from(&payload_bytes);
        store.put(&key, &payload, &faults).unwrap();
        prop_assert_eq!(store.get(&key, &faults).unwrap(), StoreGet::Hit(payload));
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Distinct keys never alias, even when payloads collide.
    #[test]
    fn distinct_keys_are_independent(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let dir = temp_dir("independent");
        let store = ResultStore::open(&dir).unwrap();
        let faults = FaultPlan::none();
        store.put(&key_from(a), "same payload", &faults).unwrap();
        prop_assert_eq!(store.get(&key_from(b), &faults).unwrap(), StoreGet::Miss);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A seeded torn write is always detected on read and always healed
    /// by a clean rewrite, whatever prefix length the seed picks.
    #[test]
    fn torn_write_is_detected_then_healed(seed in any::<u64>()) {
        let dir = temp_dir("torn");
        let store = ResultStore::open(&dir).unwrap();
        let clean = FaultPlan::none();
        let torn = FaultPlan::seeded(seed).with_rate(FaultPoint::TornWrite, 256);
        let key = key_from(seed);
        store.put(&key, "the payload", &torn).unwrap();
        match store.get(&key, &clean).unwrap() {
            StoreGet::Corrupt(_) | StoreGet::Miss => {}
            StoreGet::Hit(p) => panic!("torn record served: {p:?}"),
        }
        store.put(&key, "the payload", &clean).unwrap();
        prop_assert_eq!(
            store.get(&key, &clean).unwrap(),
            StoreGet::Hit("the payload".to_owned())
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Flipping any single byte of a record makes it unservable: every
/// position either fails validation outright or (for a key-line flip)
/// reads as a different record's key — never a `Hit` with wrong bytes.
#[test]
fn every_single_byte_flip_is_detected() {
    let key = "quality/v1 design=(8,2,1,4) cpr=3fc999999999999a";
    let payload = r#"{"kind":"stream","quality_db":71.48567690838718}"#;
    let record = encode_record(key, payload);
    let bytes = record.as_bytes();
    for pos in 0..bytes.len() {
        for flip in [0x01u8, 0x80] {
            let mut damaged = bytes.to_vec();
            damaged[pos] ^= flip;
            match validate_record(&damaged, key) {
                StoreGet::Hit(p) => {
                    panic!("flip {flip:#04x} at byte {pos} served a hit with payload {p:?}")
                }
                StoreGet::Corrupt(_) | StoreGet::Miss => {}
            }
        }
    }
}

/// Truncating a record at any length short of the full record is
/// detected (the crash-mid-write spectrum, end to end).
#[test]
fn every_truncation_is_detected() {
    let key = "cheapest/v1 min_db=403e000000000000";
    let payload = r#"{"kind":"cheapest","design":"(8,0,0,0)","area":226}"#;
    let record = encode_record(key, payload);
    let bytes = record.as_bytes();
    for len in 0..bytes.len() {
        match validate_record(&bytes[..len], key) {
            StoreGet::Hit(p) => panic!("truncation to {len} bytes served {p:?}"),
            StoreGet::Corrupt(_) | StoreGet::Miss => {}
        }
    }
    assert_eq!(
        validate_record(bytes, key),
        StoreGet::Hit(payload.to_owned()),
        "the untruncated record itself must validate"
    );
}

/// Appending trailing garbage (a torn write over a longer stale record)
/// is detected via the length field.
#[test]
fn trailing_garbage_is_detected() {
    let key = "k";
    let record = encode_record(key, "payload");
    let mut damaged = record.into_bytes();
    damaged.extend_from_slice(b"GARBAGE");
    match validate_record(&damaged, key) {
        StoreGet::Corrupt(reason) => assert!(reason.contains("length"), "{reason}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}
