//! Observability acceptance tests.
//!
//! Two contracts are pinned here:
//!
//! 1. **Exact counts** — a fixed mixed 13-request script produces exact,
//!    deterministic metric counts (requests, store hits/misses,
//!    coalesced, computed, degraded, shed) in the `metrics` snapshot and
//!    the `stats` payload. Coalescing is made deterministic with an
//!    always-firing SlowEval fault (the leader stalls inside its compute,
//!    after registering the in-flight slot) plus polling the
//!    `serve.inflight` gauge before submitting the duplicate.
//! 2. **Out-of-band observability** — response bytes are byte-identical
//!    with tracing enabled or disabled, hot or cold, and the emitted
//!    trace is well-formed JSONL that the profiler can fold.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use isa_serve::{FaultPlan, FaultPoint, Frontend, Json, ServeConfig, Service};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "isa-serve-metrics-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Extracts `result` from an ok response line.
fn result_of(response: &str) -> Json {
    let value = Json::parse(response).expect("well-formed response");
    assert_eq!(
        value.get("status").and_then(Json::as_str),
        Some("ok"),
        "{response}"
    );
    value
        .get("result")
        .cloned()
        .expect("ok responses carry a result")
}

/// Reads one counter out of a `metrics` snapshot payload.
fn metric_counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("counter {name} missing from metrics snapshot"))
}

#[test]
fn mixed_script_reports_exact_metric_counts() {
    let store_dir = temp_dir("counts");
    let svc = Arc::new(
        Service::new(ServeConfig {
            threads: 2,
            sim_budget: Some(2000),
            store_dir: Some(store_dir.clone()),
            // Every compute stalls 400ms at entry — after the leader has
            // registered its in-flight slot — so the coalescing window
            // below is wide and deterministic.
            faults: FaultPlan::seeded(1)
                .with_rate(FaultPoint::SlowEval, 256)
                .with_slow_ms(400),
            quiet: true,
            ..ServeConfig::default()
        })
        .expect("open store"),
    );

    let a_1000 = r#"{"op":"quality","id":2,"design":"(8,2,1,4)","cpr":0.1,"workload":"uniform","cycles":1000}"#;
    let b_1000 = r#"{"op":"quality","id":4,"design":"(8,1,1,4)","cpr":0.1,"workload":"uniform","cycles":1000}"#;
    let a_5000 = r#"{"op":"quality","id":5,"design":"(8,2,1,4)","cpr":0.1,"workload":"uniform","cycles":5000}"#;
    let dot =
        r#"{"op":"quality","id":6,"design":"(8,2,1,4)","cpr":0.1,"workload":"dot","scale":1}"#;
    let b_5000 = r#"{"op":"quality","id":7,"design":"(8,1,1,4)","cpr":0.1,"workload":"uniform","cycles":5000}"#;

    // Lines 1–6, serial: ping; compute; store hit; compute; degrade
    // (5000 cycles over the 2000-add budget); kernel compute.
    let _ = svc.answer_line(r#"{"op":"ping","id":1}"#);
    let first = svc.answer_line(a_1000);
    let again = svc.answer_line(a_1000);
    assert_eq!(first, again, "store hit must serve identical bytes");
    let _ = svc.answer_line(b_1000);
    let degraded = svc.answer_line(a_5000);
    assert!(degraded.contains("\"degraded\":true"), "{degraded}");
    let _ = svc.answer_line(dot);

    // Lines 7+8: a deterministic coalesce on an over-budget key (degraded
    // answers are never stored, so the duplicate cannot be a store hit).
    // The leader is known in flight once the gauge reads 1; it then
    // stalls 400ms, giving the duplicate its coalescing window.
    let (leader_response, dup_response) = std::thread::scope(|scope| {
        let leader = scope.spawn(|| svc.answer_line(b_5000));
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.registry().snapshot().gauge("serve.inflight") != Some(1) {
            assert!(Instant::now() < deadline, "leader never registered");
            std::thread::sleep(Duration::from_millis(2));
        }
        let dup = svc.answer_line(b_5000);
        (leader.join().expect("leader thread"), dup)
    });
    assert_eq!(
        result_of(&leader_response),
        result_of(&dup_response),
        "coalesced duplicate must receive the leader's answer"
    );

    // Lines 9+10: one admitted ping, one deterministically shed (single
    // gated worker, queue capacity 1 — the second submission overflows
    // before the gate opens).
    let mut frontend = Frontend::new(Arc::clone(&svc), 1, 1);
    frontend.submit(r#"{"op":"ping","id":9}"#);
    frontend.submit(r#"{"op":"ping","id":10}"#);
    let responses = frontend.finish();
    assert!(responses[0].contains("pong"), "{}", responses[0]);
    assert!(
        responses[1].contains("\"retriable\":true"),
        "{}",
        responses[1]
    );

    // Line 11: the stats op — its JSON shape and counts, pinned exactly.
    // (requests counts stats itself: 8 serial lines + 1 admitted ping +
    // this one; the shed line never reached the service.)
    let stats = result_of(&svc.answer_line(r#"{"op":"stats","id":11}"#));
    for (field, want) in [
        ("requests", 10.0),
        ("store_hits", 1.0),
        ("store_misses", 6.0),
        ("store_corrupt", 0.0),
        ("store_read_errors", 0.0),
        ("store_write_errors", 0.0),
        ("coalesced", 1.0),
        ("computed", 3.0),
        ("degraded", 2.0),
        ("shed", 1.0),
        ("eval_panics", 0.0),
        ("artifacts_resident", 2.0),
        ("store_records", 3.0),
    ] {
        assert_eq!(
            stats.get(field).and_then(Json::as_f64),
            Some(want),
            "stats field {field}"
        );
    }

    // Line 12: one more ping; line 13: the metrics op (counted in
    // `requests` before its own snapshot is taken).
    let _ = svc.answer_line(r#"{"op":"ping","id":12}"#);
    let metrics = result_of(&svc.answer_line(r#"{"op":"metrics","id":13}"#));
    assert_eq!(metrics.get("kind").and_then(Json::as_str), Some("metrics"));
    for (name, want) in [
        ("serve.requests", 12),
        ("serve.store_hits", 1),
        ("serve.store_misses", 6),
        ("serve.coalesced", 1),
        ("serve.computed", 3),
        ("serve.degraded", 2),
        ("serve.shed", 1),
        ("serve.eval_panics", 0),
        // The service's scoped cache: designs (8,2,1,4) and (8,1,1,4)
        // built once each; the kernel query reused (8,2,1,4). Degraded
        // answers build nothing.
        ("engine.cache.misses", 2),
        ("engine.cache.evictions", 0),
        ("engine.cache.failed_builds", 0),
    ] {
        assert_eq!(metric_counter(&metrics, name), want, "{name}");
    }

    // Gauges are back to rest; per-request latency histograms saw every
    // answered line except the in-progress metrics op itself.
    let gauges = metrics
        .get("metrics")
        .and_then(|m| m.get("gauges"))
        .unwrap();
    assert_eq!(
        gauges.get("serve.inflight").and_then(Json::as_f64),
        Some(0.0)
    );
    assert_eq!(
        gauges.get("serve.queue_depth").and_then(Json::as_f64),
        Some(0.0)
    );
    let request_hist = metrics
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get("serve.request_ns"))
        .expect("request_ns histogram");
    assert_eq!(
        request_hist.get("count").and_then(Json::as_f64),
        Some(11.0),
        "12 answered lines minus the metrics op still in flight"
    );

    // The merged snapshot also carries the process-global backend
    // counters (other tests share them, so only monotonicity is pinned).
    assert!(metric_counter(&metrics, "sim.filtered.runs") >= 1);
    assert!(metric_counter(&metrics, "sim.filtered.cycles") >= 1);

    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn tracing_is_out_of_band_for_response_bytes() {
    let script = [
        r#"{"op":"quality","id":1,"design":"(8,2,1,4)","cpr":0.1,"workload":"uniform","cycles":400}"#,
        r#"{"op":"quality","id":2,"design":"(8,1,1,4)","cpr":0.1,"workload":"uniform","cycles":400}"#,
        r#"{"op":"quality","id":3,"design":"(8,2,1,4)","cpr":0.1,"workload":"uniform","cycles":5000}"#,
        r#"{"op":"quality","id":4,"design":"(8,2,1,4)","cpr":0.1,"workload":"dot","scale":1}"#,
        r#"{"op":"ping","id":5}"#,
    ];
    let run = |svc: &Service| -> Vec<String> {
        script.iter().map(|line| svc.answer_line(line)).collect()
    };
    let config = |store: Option<PathBuf>| ServeConfig {
        threads: 2,
        sim_budget: Some(500),
        store_dir: store,
        quiet: true,
        ..ServeConfig::default()
    };

    // Baseline: no store, tracing disabled.
    let plain = Service::new(config(None)).expect("plain service");
    let baseline = run(&plain);

    // Traced: same script against a fresh service with the span sink
    // installed and a store attached — cold pass, then a hot pass served
    // from the store. Every response vector must be byte-identical.
    let store_dir = temp_dir("trace");
    let trace_path = temp_dir("jsonl").with_extension("jsonl");
    isa_obs::trace::install_file(&trace_path).expect("create trace file");
    let traced = Service::new(config(Some(store_dir.clone()))).expect("traced service");
    let cold = run(&traced);
    let hot = run(&traced);
    isa_obs::trace::uninstall();

    assert_eq!(baseline, cold, "tracing must not change response bytes");
    assert_eq!(baseline, hot, "hot answers must match cold bytes");
    assert!(traced.counters().store_hits.get() >= 3, "hot pass hit");

    // The trace itself is well-formed JSONL the profiler can fold, and
    // covers the request lifecycle. (The sink is process-global, so
    // spans from concurrently running tests may appear too — only
    // presence is asserted.)
    let text = std::fs::read_to_string(&trace_path).expect("read trace");
    let events = isa_obs::profile::parse_trace(&text).expect("well-formed trace");
    let has = |name: &str| events.iter().any(|e| e.name == name);
    assert!(has("serve.request"), "missing serve.request spans");
    assert!(has("serve.store.get"), "missing serve.store.get spans");
    assert!(has("serve.eval"), "missing serve.eval spans");
    assert!(
        has("engine.cache.build"),
        "missing engine.cache.build spans"
    );
    let rows = isa_obs::profile::fold(&events);
    assert!(!rows.is_empty());
    let table = isa_obs::profile::render_table(&rows);
    assert!(table.contains("serve.request"), "{table}");

    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_file(&trace_path);
}
