//! Seeded fault injection for the chaos battery.
//!
//! A [`FaultPlan`] decides, deterministically from a seed and a per-point
//! occurrence counter, whether each *fault point* fires. The service and
//! the store consult the plan at well-defined points (store reads, store
//! writes, evaluation entry); production runs use [`FaultPlan::none`],
//! which compiles down to a handful of always-false branches.
//!
//! Determinism is the whole point: the chaos tests replay the same seeded
//! plan against the same request script and assert exact outcomes (which
//! requests degrade, which error, and that every served payload is
//! byte-identical to the fault-free run). A wall-clock- or OS-entropy-
//! driven injector could not support those assertions.
//!
//! Plans can also be parsed from the `ISA_SERVE_FAULTS` environment
//! variable (see [`FaultPlan::from_env`]) so the CLI smoke tests can run
//! the released binary under injection without a special build.

use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// A store lookup fails with an I/O error (the service must recompute).
    StoreRead,
    /// A store write fails with an I/O error (the answer is still served).
    StoreWrite,
    /// A store write lands torn: a prefix of the record reaches disk.
    TornWrite,
    /// The evaluation panics (models a synthesis/simulation bug).
    EvalPanic,
    /// The evaluation stalls (models a pathological slow query).
    SlowEval,
}

const POINTS: usize = 5;

impl FaultPoint {
    fn index(self) -> usize {
        match self {
            FaultPoint::StoreRead => 0,
            FaultPoint::StoreWrite => 1,
            FaultPoint::TornWrite => 2,
            FaultPoint::EvalPanic => 3,
            FaultPoint::SlowEval => 4,
        }
    }

    fn key(name: &str) -> Option<FaultPoint> {
        match name {
            "store_read" => Some(FaultPoint::StoreRead),
            "store_write" => Some(FaultPoint::StoreWrite),
            "torn" => Some(FaultPoint::TornWrite),
            "panic" => Some(FaultPoint::EvalPanic),
            "slow" => Some(FaultPoint::SlowEval),
            _ => None,
        }
    }
}

/// A deterministic, seeded fault-injection plan.
///
/// Each point has a firing rate out of 256 (`0` = never, `256` = always).
/// The decision for the *n*-th occurrence of a point mixes the seed, the
/// point index and *n* through splitmix64, so a given plan fires at a
/// reproducible subset of occurrences regardless of thread interleaving
/// of *other* points. (Concurrent occurrences of the *same* point race
/// for counter values; chaos tests that need exact per-request outcomes
/// serialize the point, e.g. rate 256 or a single worker.)
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rates: [u16; POINTS],
    counters: [AtomicU64; POINTS],
    /// Stall duration for [`FaultPoint::SlowEval`], in milliseconds.
    slow_ms: u64,
}

impl FaultPlan {
    /// A plan that never fires (the production default).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with the given seed and no active points; chain
    /// [`with_rate`](FaultPlan::with_rate) to arm it.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            slow_ms: 20,
            ..Self::default()
        }
    }

    /// Arms one point with a firing rate out of 256.
    #[must_use]
    pub fn with_rate(mut self, point: FaultPoint, rate_of_256: u16) -> Self {
        self.rates[point.index()] = rate_of_256.min(256);
        self
    }

    /// Sets the [`FaultPoint::SlowEval`] stall duration.
    #[must_use]
    pub fn with_slow_ms(mut self, slow_ms: u64) -> Self {
        self.slow_ms = slow_ms;
        self
    }

    /// Parses `ISA_SERVE_FAULTS` (e.g.
    /// `seed=42,store_read=64,torn=256,panic=8,slow=16,slow_ms=5`);
    /// unset or empty means [`FaultPlan::none`]. Unknown keys are
    /// rejected so typos cannot silently disarm a chaos run.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("ISA_SERVE_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec),
            _ => Ok(Self::none()),
        }
    }

    /// Parses a plan spec (the `ISA_SERVE_FAULTS` syntax).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::seeded(0);
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} is not key=value"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault clause {clause:?} has a non-numeric value"))?;
            match key.trim() {
                "seed" => plan.seed = value,
                "slow_ms" => plan.slow_ms = value,
                name => {
                    let point = FaultPoint::key(name)
                        .ok_or_else(|| format!("unknown fault point {name:?}"))?;
                    #[allow(clippy::cast_possible_truncation)]
                    {
                        plan = plan.with_rate(point, value.min(256) as u16);
                    }
                }
            }
        }
        Ok(plan)
    }

    /// True if any point is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.rates.iter().any(|&r| r > 0)
    }

    /// Decides whether this occurrence of the point fires, advancing the
    /// point's occurrence counter.
    #[must_use]
    pub fn fires(&self, point: FaultPoint) -> bool {
        let i = point.index();
        let rate = self.rates[i];
        if rate == 0 {
            return false;
        }
        let n = self.counters[i].fetch_add(1, Ordering::Relaxed);
        if rate >= 256 {
            return true;
        }
        let h = splitmix64(self.seed ^ ((i as u64 + 1) << 56) ^ n);
        (h & 0xFF) < u64::from(rate)
    }

    /// The stall duration for a fired [`FaultPoint::SlowEval`].
    #[must_use]
    pub fn slow_ms(&self) -> u64 {
        self.slow_ms
    }

    /// How many bytes of a `full`-byte record a torn write leaves behind:
    /// a deterministic strict prefix (at least 1 byte short, possibly
    /// empty).
    #[must_use]
    pub fn torn_len(&self, full: usize) -> usize {
        if full == 0 {
            return 0;
        }
        let n = self.counters[FaultPoint::TornWrite.index()].load(Ordering::Relaxed);
        let h = splitmix64(self.seed ^ 0x70A2_0000 ^ n);
        (h as usize) % full
    }
}

/// The splitmix64 mixer (public-domain constants), the workspace's
/// standard seed expander.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_armed());
        for _ in 0..100 {
            assert!(!plan.fires(FaultPoint::StoreRead));
            assert!(!plan.fires(FaultPoint::EvalPanic));
        }
    }

    #[test]
    fn firing_pattern_is_seed_deterministic() {
        let pattern = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).with_rate(FaultPoint::StoreRead, 64);
            (0..64).map(|_| plan.fires(FaultPoint::StoreRead)).collect()
        };
        assert_eq!(pattern(7), pattern(7));
        assert_ne!(pattern(7), pattern(8), "different seeds differ");
        let fired = pattern(7).iter().filter(|&&b| b).count();
        assert!(fired > 0 && fired < 64, "rate 64/256 fires sometimes");
    }

    #[test]
    fn rate_256_always_fires() {
        let plan = FaultPlan::seeded(1).with_rate(FaultPoint::TornWrite, 256);
        for _ in 0..10 {
            assert!(plan.fires(FaultPoint::TornWrite));
        }
    }

    #[test]
    fn parse_round_trip_and_rejection() {
        let plan = FaultPlan::parse("seed=42, store_read=64, torn=256, slow_ms=5").unwrap();
        assert!(plan.is_armed());
        assert_eq!(plan.slow_ms(), 5);
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("store_read").is_err());
        assert!(FaultPlan::parse("store_read=x").is_err());
    }

    #[test]
    fn torn_len_is_a_strict_prefix() {
        let plan = FaultPlan::seeded(3).with_rate(FaultPoint::TornWrite, 256);
        for full in [1usize, 2, 100, 4096] {
            let torn = plan.torn_len(full);
            assert!(torn < full, "torn {torn} of {full}");
        }
    }
}
