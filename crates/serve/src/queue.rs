//! A bounded MPMC job queue with deterministic load shedding.
//!
//! The service admits work through this queue. `try_push` never blocks:
//! when the queue is at capacity the job is *shed* — returned to the
//! caller, who renders an immediate retriable error. That is the whole
//! overload policy: a client at the bound learns instantly, nothing
//! hangs, and which request is shed depends only on queue occupancy at
//! admission (not on timers or scheduling luck).
//!
//! `pop` blocks until a job or shutdown; closing the queue drains nothing
//! — workers finish what was admitted, then exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue (see the module docs).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending jobs
    /// (a capacity of zero is treated as one).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job, or sheds it (returns it) when the queue is full or
    /// closed. Never blocks.
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is at capacity or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: no further admissions; workers drain and exit.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Current occupancy (diagnostics only; racy by nature).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when no jobs are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_exactly_beyond_capacity() {
        let q = BoundedQueue::new(3);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.try_push(3).is_ok());
        // Deterministic: the 4th and every later push sheds until a pop.
        assert_eq!(q.try_push(4), Err(4));
        assert_eq!(q.try_push(5), Err(5));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(6).is_ok());
        assert_eq!(q.try_push(7), Err(7));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(2), "closed queue admits nothing");
        assert_eq!(q.pop(), Some(1), "admitted work still drains");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
