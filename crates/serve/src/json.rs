//! The serve protocol's JSON layer — re-exported from [`isa_obs::json`].
//!
//! The hand-rolled JSON value started life here; the observability spine
//! now carries the canonical copy (the trace sink and metrics snapshot
//! need it below this crate in the dependency graph), and the protocol
//! re-exports it so every existing `crate::json::Json` path keeps
//! working. The properties the service leans on are unchanged:
//!
//! * **deterministic rendering** — objects keep insertion order, numbers
//!   render through Rust's shortest-round-trip `f64` formatting (or as
//!   plain integers when they are integers), so the same value always
//!   produces the same bytes. The on-disk result store and the
//!   byte-identity guarantee of the service both lean on this.
//! * **strict parsing** — trailing garbage, unterminated strings, bad
//!   escapes and malformed numbers are errors, never best-effort values;
//!   a corrupt request should fail loudly at the protocol boundary.
//!
//! JSON has no encoding for infinities; callers encode `±inf` quality
//! figures as the strings `"inf"` / `"-inf"` (see
//! [`Json::from_db`](Json::from_db)).

pub use isa_obs::json::{escape_into, Json};
