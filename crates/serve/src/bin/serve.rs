//! `isa-serve` — the resident quality/Pareto query daemon.
//!
//! Reads line-delimited JSON requests from stdin (or a Unix socket with
//! `--socket`) and writes one response line per request, in request
//! order. See README.md ("isa-serve") for the protocol and ARCHITECTURE.md
//! for the degradation/robustness design.
//!
//! Usage:
//!
//! ```text
//! isa-serve [--store DIR] [--threads N] [--workers N] [--queue-cap N]
//!           [--sim-budget ADDS] [--artifact-cap N] [--backend B]
//!           [--socket PATH] [--metrics-file PATH] [--metrics-period-ms N]
//!           [--trace PATH] [--quiet]
//! ```
//!
//! * `--store DIR` — content-addressed on-disk result store (off by
//!   default; strongly recommended for repeated traffic);
//! * `--workers N` — concurrent request evaluations (default 2);
//! * `--queue-cap N` — admission bound; overflow is shed with a
//!   retriable error (default 64);
//! * `--sim-budget ADDS` — per-request simulation budget in additions;
//!   costlier requests are answered from the exact structural bound with
//!   `degraded:true` (default: unlimited);
//! * `--artifact-cap N` — synthesized-design LRU capacity (default 64);
//! * `--backend B` — `scalar` | `bitsliced` | `filtered` (default);
//! * `--socket PATH` — serve a Unix socket instead of stdin/stdout;
//! * `--metrics-file PATH` — atomically rewrite a Prometheus-style text
//!   exposition of every metric on a period (plus once at exit);
//! * `--metrics-period-ms N` — exposition rewrite period (default 2000);
//! * `--trace PATH` — append structured JSONL span events (fold with
//!   `trace-summary PATH`).
//!
//! Observability is strictly out-of-band: response bytes are identical
//! with or without `--metrics-file`/`--trace` (the chaos battery pins
//! this).
//!
//! Fault injection for chaos testing is env-gated: set
//! `ISA_SERVE_FAULTS=seed=42,store_read=64,torn=256,panic=8,slow=16`.

use std::io;
use std::process::exit;
use std::sync::Arc;

use isa_engine::ExperimentConfig;
use isa_serve::{serve_lines, FaultPlan, ServeConfig, Service};

fn usage() -> ! {
    eprintln!(
        "usage: isa-serve [--store DIR] [--threads N] [--workers N] [--queue-cap N] \
         [--sim-budget ADDS] [--artifact-cap N] [--backend B] [--socket PATH] \
         [--metrics-file PATH] [--metrics-period-ms N] [--trace PATH] [--quiet]"
    );
    exit(2);
}

/// `--name value` lookup; exits with usage on a malformed value.
fn arg<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    let i = args.iter().position(|a| a == name)?;
    let Some(raw) = args.get(i + 1) else {
        eprintln!("error: {name} needs a value");
        usage();
    };
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("error: bad value {raw:?} for {name}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let known = [
        "--store",
        "--threads",
        "--workers",
        "--queue-cap",
        "--sim-budget",
        "--artifact-cap",
        "--backend",
        "--socket",
        "--metrics-file",
        "--metrics-period-ms",
        "--trace",
        "--quiet",
    ];
    for a in &args {
        if a.starts_with("--") && !known.contains(&a.as_str()) {
            eprintln!("error: unknown flag {a:?}");
            usage();
        }
    }

    let quiet = args.iter().any(|a| a == "--quiet");
    let logger = isa_obs::Logger::new("isa-serve").quiet(quiet);

    let mut config = ExperimentConfig::default();
    if let Some(backend) = arg::<isa_engine::SimBackend>(&args, "--backend") {
        config.backend = backend;
    }
    let faults = match FaultPlan::from_env() {
        Ok(plan) => {
            if plan.is_armed() {
                logger.warn("fault injection ARMED via ISA_SERVE_FAULTS");
            }
            plan
        }
        Err(e) => {
            eprintln!("error: ISA_SERVE_FAULTS: {e}");
            exit(2);
        }
    };

    let cfg = ServeConfig {
        threads: arg(&args, "--threads").unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }),
        artifact_cap: arg(&args, "--artifact-cap").unwrap_or(64),
        sim_budget: arg(&args, "--sim-budget"),
        store_dir: arg::<String>(&args, "--store").map(Into::into),
        config,
        faults,
        quiet,
    };
    let workers: usize = arg(&args, "--workers").unwrap_or(2);
    let queue_cap: usize = arg(&args, "--queue-cap").unwrap_or(64);
    let socket: Option<String> = arg(&args, "--socket");
    let metrics_file: Option<String> = arg(&args, "--metrics-file");
    let metrics_period_ms: u64 = arg(&args, "--metrics-period-ms").unwrap_or(2000);
    let trace_file: Option<String> = arg(&args, "--trace");

    if let Some(path) = &trace_file {
        if let Err(e) = isa_obs::trace::install_file(std::path::Path::new(path)) {
            eprintln!("error: cannot open trace file {path}: {e}");
            exit(1);
        }
    }

    let service = match Service::new(cfg) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("error: cannot open result store: {e}");
            exit(1);
        }
    };

    // Periodic exposition rewrites; dropping the flusher at exit performs
    // one final write, so short stdin sessions still leave a fresh file.
    let _flusher = metrics_file.map(|path| {
        let producer = Arc::clone(&service);
        isa_obs::export::Flusher::spawn(
            std::path::PathBuf::from(path),
            std::time::Duration::from_millis(metrics_period_ms.max(1)),
            move || {
                let merged = producer
                    .registry()
                    .snapshot()
                    .merge(isa_obs::global().snapshot());
                isa_obs::export::render(&merged)
            },
        )
    });

    let result = match socket {
        #[cfg(unix)]
        Some(path) => {
            logger.info(&format!("listening on {path}"));
            isa_serve::serve_unix(&service, std::path::Path::new(&path), workers, queue_cap)
        }
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("error: --socket requires a Unix platform");
            exit(2);
        }
        None => {
            let stdin = io::stdin();
            serve_lines(&service, stdin.lock(), io::stdout(), workers, queue_cap)
        }
    };
    isa_obs::trace::flush();
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}
