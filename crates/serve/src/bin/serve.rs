//! `isa-serve` — the resident quality/Pareto query daemon.
//!
//! Reads line-delimited JSON requests from stdin (or a Unix socket with
//! `--socket`) and writes one response line per request, in request
//! order. See README.md ("isa-serve") for the protocol and ARCHITECTURE.md
//! for the degradation/robustness design.
//!
//! Usage:
//!
//! ```text
//! isa-serve [--store DIR] [--threads N] [--workers N] [--queue-cap N]
//!           [--sim-budget ADDS] [--artifact-cap N] [--backend B]
//!           [--socket PATH] [--quiet]
//! ```
//!
//! * `--store DIR` — content-addressed on-disk result store (off by
//!   default; strongly recommended for repeated traffic);
//! * `--workers N` — concurrent request evaluations (default 2);
//! * `--queue-cap N` — admission bound; overflow is shed with a
//!   retriable error (default 64);
//! * `--sim-budget ADDS` — per-request simulation budget in additions;
//!   costlier requests are answered from the exact structural bound with
//!   `degraded:true` (default: unlimited);
//! * `--artifact-cap N` — synthesized-design LRU capacity (default 64);
//! * `--backend B` — `scalar` | `bitsliced` | `filtered` (default);
//! * `--socket PATH` — serve a Unix socket instead of stdin/stdout.
//!
//! Fault injection for chaos testing is env-gated: set
//! `ISA_SERVE_FAULTS=seed=42,store_read=64,torn=256,panic=8,slow=16`.

use std::io;
use std::process::exit;
use std::sync::Arc;

use isa_engine::ExperimentConfig;
use isa_serve::{serve_lines, FaultPlan, ServeConfig, Service};

fn usage() -> ! {
    eprintln!(
        "usage: isa-serve [--store DIR] [--threads N] [--workers N] [--queue-cap N] \
         [--sim-budget ADDS] [--artifact-cap N] [--backend B] [--socket PATH] [--quiet]"
    );
    exit(2);
}

/// `--name value` lookup; exits with usage on a malformed value.
fn arg<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    let i = args.iter().position(|a| a == name)?;
    let Some(raw) = args.get(i + 1) else {
        eprintln!("error: {name} needs a value");
        usage();
    };
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("error: bad value {raw:?} for {name}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let known = [
        "--store",
        "--threads",
        "--workers",
        "--queue-cap",
        "--sim-budget",
        "--artifact-cap",
        "--backend",
        "--socket",
        "--quiet",
    ];
    for a in &args {
        if a.starts_with("--") && !known.contains(&a.as_str()) {
            eprintln!("error: unknown flag {a:?}");
            usage();
        }
    }

    let mut config = ExperimentConfig::default();
    if let Some(backend) = arg::<isa_engine::SimBackend>(&args, "--backend") {
        config.backend = backend;
    }
    let faults = match FaultPlan::from_env() {
        Ok(plan) => {
            if plan.is_armed() {
                eprintln!("[isa-serve] fault injection ARMED via ISA_SERVE_FAULTS");
            }
            plan
        }
        Err(e) => {
            eprintln!("error: ISA_SERVE_FAULTS: {e}");
            exit(2);
        }
    };

    let cfg = ServeConfig {
        threads: arg(&args, "--threads").unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }),
        artifact_cap: arg(&args, "--artifact-cap").unwrap_or(64),
        sim_budget: arg(&args, "--sim-budget"),
        store_dir: arg::<String>(&args, "--store").map(Into::into),
        config,
        faults,
        quiet: args.iter().any(|a| a == "--quiet"),
    };
    let workers: usize = arg(&args, "--workers").unwrap_or(2);
    let queue_cap: usize = arg(&args, "--queue-cap").unwrap_or(64);
    let socket: Option<String> = arg(&args, "--socket");

    let service = match Service::new(cfg) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("error: cannot open result store: {e}");
            exit(1);
        }
    };

    let result = match socket {
        #[cfg(unix)]
        Some(path) => {
            eprintln!("[isa-serve] listening on {path}");
            isa_serve::serve_unix(&service, std::path::Path::new(&path), workers, queue_cap)
        }
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("error: --socket requires a Unix platform");
            exit(2);
        }
        None => {
            let stdin = io::stdin();
            serve_lines(&service, stdin.lock(), io::stdout(), workers, queue_cap)
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}
