//! Serve-layer benchmark — the store/coalescing perf gate (schema
//! `isa-serve-bench/v1`).
//!
//! Builds one service with an on-disk result store, drives the same
//! request script twice — **cold** (empty store: every answer is
//! synthesized and simulated) and **hot** (same process, warm store:
//! every answer is a validated record read) — and reports both rates.
//! The point of the store is that repeated traffic costs file reads, not
//! gate-level simulation, so the hot pass must beat the cold pass by a
//! wide margin; `--min-hot-speedup X` (CI gates this) fails the process
//! below `X`.
//!
//! The script covers both op kinds (stream quality sweeps across the
//! paper designs and a kernel query) and verifies byte-identical
//! responses between passes — a speedup from a store that serves
//! different bytes would be worthless.
//!
//! Usage: `serve_bench [--cycles N] [--designs N] [--repeat N]
//! [--min-hot-speedup X] [--json PATH] [--store DIR] [--metrics-file PATH]`
//!
//! The JSON report (schema `isa-serve-bench/v1`, additive fields only)
//! also records two observability-derived figures: `safe_lane_fraction`
//! (the filtered backend's fast-path share over the whole run, from the
//! process-global `sim.filtered.*` counters) and `store_hit_ratio`
//! (store hits over store lookups). `--metrics-file PATH` additionally
//! writes the Prometheus-style exposition of the full merged registry
//! and re-parses it through the strict schema checker, failing the
//! process on any malformation.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use isa_engine::ExperimentConfig;
use isa_serve::{FaultPlan, ServeConfig, Service};

fn arg<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    let i = args.iter().position(|a| a == name)?;
    let raw = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("error: {name} needs a value");
        std::process::exit(2);
    });
    Some(raw.parse().unwrap_or_else(|_| {
        eprintln!("error: bad value {raw:?} for {name}");
        std::process::exit(2);
    }))
}

/// The benchmark request script: every paper design (capped) at two CPR
/// points on the uniform stream, plus one kernel query.
fn script(cycles: u64, designs: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut id = 0u64;
    for design in isa_core::paper_designs().into_iter().take(designs.max(1)) {
        for cpr in [0.0, 0.2] {
            id += 1;
            lines.push(format!(
                "{{\"id\":{id},\"op\":\"quality\",\"design\":\"{design}\",\"cpr\":{cpr},\
                 \"workload\":\"uniform\",\"cycles\":{cycles}}}"
            ));
        }
    }
    id += 1;
    lines.push(format!(
        "{{\"id\":{id},\"op\":\"quality\",\"design\":\"8,2,1,4\",\"cpr\":0.1,\
         \"workload\":\"fir\",\"scale\":1}}"
    ));
    lines
}

/// Runs the script serially against the service, returning the elapsed
/// seconds and every response.
fn run_pass(service: &Service, lines: &[String], repeat: usize) -> (f64, Vec<String>) {
    let start = Instant::now();
    let mut responses = Vec::new();
    for r in 0..repeat.max(1) {
        for line in lines {
            let response = service.answer_line(line);
            if r == 0 {
                responses.push(response);
            }
        }
    }
    (start.elapsed().as_secs_f64(), responses)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cycles: u64 = arg(&args, "--cycles").unwrap_or(4_000);
    let designs: usize = arg(&args, "--designs").unwrap_or(4);
    let repeat: usize = arg(&args, "--repeat").unwrap_or(3);
    let min_hot_speedup: f64 = arg(&args, "--min-hot-speedup").unwrap_or(1.0);
    let json_path: Option<String> = arg(&args, "--json");
    let metrics_file: Option<String> = arg(&args, "--metrics-file");
    let store_dir: String = arg(&args, "--store").unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("isa-serve-bench-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });

    // A stale store would turn the cold pass into a hot one.
    let _ = std::fs::remove_dir_all(&store_dir);
    let service = Arc::new(
        Service::new(ServeConfig {
            store_dir: Some(store_dir.clone().into()),
            config: ExperimentConfig::default(),
            faults: FaultPlan::none(),
            quiet: true,
            ..ServeConfig::default()
        })
        .expect("open bench store"),
    );

    let lines = script(cycles, designs);
    let n = lines.len();
    eprintln!("serve_bench: {n} requests, cycles={cycles}, repeat={repeat}");

    let (cold_s, cold_responses) = run_pass(&service, &lines, 1);
    let (hot_s, hot_responses) = run_pass(&service, &lines, repeat);
    let hot_per_pass = hot_s / repeat.max(1) as f64;

    assert_eq!(
        cold_responses, hot_responses,
        "hot responses must be byte-identical to cold"
    );
    let hits = service.counters().store_hits.get();
    assert!(
        hits >= (n * repeat) as u64,
        "hot pass must be served from the store (hits={hits})"
    );

    let cold_qps = n as f64 / cold_s;
    let hot_qps = n as f64 / hot_per_pass;
    let speedup = cold_s / hot_per_pass;
    println!("cold: {cold_s:.3}s ({cold_qps:.1} q/s)");
    println!("hot:  {hot_per_pass:.4}s ({hot_qps:.1} q/s)");
    println!("hot speedup: {speedup:.1}x (min {min_hot_speedup})");

    // Observability-derived figures: what fraction of simulated stream
    // cycles the filtered backend served functionally, and what fraction
    // of store lookups hit.
    let global = isa_obs::global().snapshot();
    let sim_cycles = global.counter("sim.filtered.cycles").unwrap_or(0);
    let sim_fast = global.counter("sim.filtered.fast_path_cycles").unwrap_or(0);
    let safe_lane_fraction = if sim_cycles == 0 {
        0.0
    } else {
        sim_fast as f64 / sim_cycles as f64
    };
    let misses = service.counters().store_misses.get();
    let store_hit_ratio = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    println!("safe lane fraction: {safe_lane_fraction:.4}");
    println!("store hit ratio: {store_hit_ratio:.4}");

    if let Some(path) = metrics_file {
        let merged = service.registry().snapshot().merge(global);
        let text = isa_obs::export::render(&merged);
        isa_obs::export::write_atomic(std::path::Path::new(&path), &text)
            .expect("write metrics exposition");
        let reread = std::fs::read_to_string(&path).expect("reread metrics exposition");
        if let Err(e) = isa_obs::export::parse(&reread) {
            eprintln!("FAIL: metrics exposition failed schema check: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} (exposition schema ok)");
    }

    let pass = speedup >= min_hot_speedup;
    if let Some(path) = json_path {
        let json = format!(
            "{{\"schema\":\"isa-serve-bench/v1\",\"requests\":{n},\"cycles\":{cycles},\
             \"repeat\":{repeat},\"cold_s\":{cold_s},\"hot_s_per_pass\":{hot_per_pass},\
             \"cold_qps\":{cold_qps},\"hot_qps\":{hot_qps},\"hot_speedup\":{speedup},\
             \"min_hot_speedup\":{min_hot_speedup},\"safe_lane_fraction\":{safe_lane_fraction},\
             \"store_hit_ratio\":{store_hit_ratio},\"pass\":{pass}}}\n"
        );
        let tmp = format!("{path}.tmp");
        let mut f = std::fs::File::create(&tmp).expect("create bench json");
        f.write_all(json.as_bytes()).expect("write bench json");
        f.sync_all().expect("sync bench json");
        std::fs::rename(&tmp, &path).expect("publish bench json");
        eprintln!("wrote {path}");
    }
    let _ = std::fs::remove_dir_all(&store_dir);
    if !pass {
        eprintln!("FAIL: hot speedup {speedup:.2} below minimum {min_hot_speedup}");
        std::process::exit(1);
    }
}
