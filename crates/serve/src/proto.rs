//! The line-delimited JSON request/response protocol.
//!
//! One request per line in, one response per line out. Requests carry an
//! optional `id` (any JSON value) that is echoed verbatim in the
//! response, so clients can correlate over the ordered stream.
//!
//! ## Requests
//!
//! ```text
//! {"op":"quality","id":1,"design":"(8,1,1,4)","cpr":0.10,
//!  "workload":"uniform","cycles":10000}
//! {"op":"quality","id":2,"design":"(8,1,1,4)","cpr":0.10,
//!  "workload":"fir","scale":1}
//! {"op":"cheapest","id":3,"min_quality_db":30,"cpr":0.10,
//!  "workload":"uniform","cycles":10000}
//! {"op":"stats","id":4}
//! {"op":"metrics","id":5}
//! {"op":"ping","id":6}
//! ```
//!
//! Stream workloads (`uniform`, `walk`, `sine`, `accumulate`) take
//! `cycles` (default 10000); kernel workloads (`fir`, `conv2d-blur`,
//! `conv2d-sobel`, `dot`, `histogram`) take `scale` (default 1).
//!
//! ## Responses
//!
//! ```text
//! {"id":1,"status":"ok","degraded":false,"result":{...}}
//! {"id":9,"status":"error","retriable":true,"error":"..."}
//! ```
//!
//! `degraded:true` marks an answer computed from the exact analytical
//! structural bound instead of gate-level simulation (over budget); the
//! result then excludes timing error entirely and its quality figure is
//! the structural ceiling. Degraded answers are never persisted.
//!
//! ## Canonical keys
//!
//! Every evaluation query maps to a single-line canonical key that folds
//! in **all** determinism-relevant configuration (design, cpr bits,
//! workload, cycles/scale, safe period bits, variation sigma bits, both
//! seeds, backend, tape flag). Identical keys coalesce in flight and
//! share one store record; float fields are keyed by their exact bit
//! patterns so "the same query" means bit-identical configuration.

use std::str::FromStr;

use isa_core::{Design, IsaConfig};
use isa_engine::ExperimentConfig;

use crate::json::Json;

/// Stream workload names, in `workload=` CLI/report order.
pub const STREAM_WORKLOADS: [&str; 4] = ["uniform", "walk", "sine", "accumulate"];

/// Kernel workload names (the standard kernel set of `isa-apps`).
pub const KERNEL_WORKLOADS: [&str; 5] = ["fir", "conv2d-blur", "conv2d-sobel", "dot", "histogram"];

/// What a quality query evaluates on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSel {
    /// A named operand stream of `cycles` pairs.
    Stream {
        /// One of [`STREAM_WORKLOADS`].
        name: String,
        /// Stream length in cycles.
        cycles: u64,
    },
    /// A named application kernel at a size scale.
    Kernel {
        /// One of [`KERNEL_WORKLOADS`].
        name: String,
        /// Kernel size multiplier (1 = the standard size).
        scale: u64,
    },
}

impl WorkloadSel {
    /// The workload's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            WorkloadSel::Stream { name, .. } | WorkloadSel::Kernel { name, .. } => name,
        }
    }

    /// The canonical-key fragment for this workload.
    #[must_use]
    pub fn key_fragment(&self) -> String {
        match self {
            WorkloadSel::Stream { name, cycles } => format!("workload={name} cycles={cycles}"),
            WorkloadSel::Kernel { name, scale } => format!("kernel={name} scale={scale}"),
        }
    }
}

/// A parsed quality query.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityQuery {
    /// The design under evaluation.
    pub design: Design,
    /// Clock-period reduction (0.0 = safe clock).
    pub cpr: f64,
    /// The workload.
    pub workload: WorkloadSel,
}

/// A parsed cheapest-design query (the Pareto question: the minimum-area
/// paper design meeting a quality floor at a clock).
#[derive(Debug, Clone, PartialEq)]
pub struct CheapestQuery {
    /// The quality floor in dB.
    pub min_quality_db: f64,
    /// Clock-period reduction every candidate is evaluated at.
    pub cpr: f64,
    /// The workload candidates are scored on.
    pub workload: WorkloadSel,
}

/// One protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one (design, cpr, workload) point.
    Quality(QualityQuery),
    /// Find the cheapest paper design meeting a quality floor.
    Cheapest(CheapestQuery),
    /// Service counters (non-deterministic; never stored).
    Stats,
    /// Full metric-registry snapshot — counters, gauges and latency
    /// histograms — merged across the service and the process-global
    /// registry (non-deterministic; never stored).
    Metrics,
    /// Liveness probe.
    Ping,
}

/// A request plus its echoed correlation id.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The client's `id`, echoed verbatim (absent → `null`).
    pub id: Json,
    /// The request proper.
    pub request: Request,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns `(id, message)` — the id (if one could be recovered) plus a
/// human-readable parse error, so the caller can still address the error
/// response.
pub fn parse_request(line: &str) -> Result<Envelope, (Json, String)> {
    let value = Json::parse(line).map_err(|e| (Json::Null, format!("bad JSON: {e}")))?;
    let id = value.get("id").cloned().unwrap_or(Json::Null);
    let fail = |msg: String| (id.clone(), msg);
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing \"op\"".to_owned()))?;
    let request = match op {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "quality" => {
            let design = parse_design(&value).map_err(&fail)?;
            let cpr = parse_cpr(&value).map_err(&fail)?;
            let workload = parse_workload(&value).map_err(&fail)?;
            Request::Quality(QualityQuery {
                design,
                cpr,
                workload,
            })
        }
        "cheapest" => {
            let min_quality_db = value
                .get("min_quality_db")
                .and_then(Json::as_f64)
                .ok_or_else(|| fail("missing numeric \"min_quality_db\"".to_owned()))?;
            let cpr = parse_cpr(&value).map_err(&fail)?;
            let workload = parse_workload(&value).map_err(&fail)?;
            Request::Cheapest(CheapestQuery {
                min_quality_db,
                cpr,
                workload,
            })
        }
        other => return Err(fail(format!("unknown op {other:?}"))),
    };
    Ok(Envelope { id, request })
}

fn parse_design(value: &Json) -> Result<Design, String> {
    let text = value
        .get("design")
        .and_then(Json::as_str)
        .ok_or("missing string \"design\" (a quadruple like \"(8,1,1,4)\" or \"exact\")")?;
    if text == "exact" {
        return Ok(Design::Exact { width: 32 });
    }
    // Both spellings are accepted — "(8,2,1,4)" and "8,2,1,4" — and fold
    // to the same canonical key, because keys carry the design's Display
    // form, not the request text.
    let canonical;
    let quadruple = if text.starts_with('(') {
        text
    } else {
        canonical = format!("({text})");
        &canonical
    };
    IsaConfig::from_str(quadruple)
        .map(Design::Isa)
        .map_err(|e| format!("bad design {text:?}: {e}"))
}

fn parse_cpr(value: &Json) -> Result<f64, String> {
    let cpr = value
        .get("cpr")
        .and_then(Json::as_f64)
        .ok_or("missing numeric \"cpr\"")?;
    if !(0.0..1.0).contains(&cpr) {
        return Err(format!("cpr {cpr} outside [0,1)"));
    }
    Ok(cpr)
}

fn parse_workload(value: &Json) -> Result<WorkloadSel, String> {
    let name = value
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("missing string \"workload\"")?;
    if STREAM_WORKLOADS.contains(&name) {
        let cycles = match value.get("cycles") {
            None => 10_000,
            Some(v) => v
                .as_u64()
                .ok_or("\"cycles\" must be a non-negative integer")?,
        };
        if cycles == 0 {
            return Err("\"cycles\" must be positive".to_owned());
        }
        if cycles > 100_000_000 {
            return Err("\"cycles\" above the 1e8 service limit".to_owned());
        }
        Ok(WorkloadSel::Stream {
            name: name.to_owned(),
            cycles,
        })
    } else if KERNEL_WORKLOADS.contains(&name) {
        let scale = match value.get("scale") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or("\"scale\" must be a non-negative integer")?,
        };
        if !(1..=64).contains(&scale) {
            return Err("\"scale\" must be in 1..=64".to_owned());
        }
        Ok(WorkloadSel::Kernel {
            name: name.to_owned(),
            scale,
        })
    } else {
        Err(format!(
            "unknown workload {name:?} (streams: {STREAM_WORKLOADS:?}; kernels: {KERNEL_WORKLOADS:?})"
        ))
    }
}

/// The configuration fragment shared by every canonical key: all fields
/// of [`ExperimentConfig`] that influence an answer, floats by bit
/// pattern.
#[must_use]
pub fn config_key_fragment(config: &ExperimentConfig) -> String {
    format!(
        "period={:016x} sigma={:016x} vseed={:016x} wseed={:016x} backend={} tape={}",
        config.period_ps.to_bits(),
        config.variation_sigma.to_bits(),
        config.variation_seed,
        config.workload_seed,
        config.backend.label(),
        config.use_tape
    )
}

/// The canonical key of a quality query under a configuration.
#[must_use]
pub fn quality_key(query: &QualityQuery, config: &ExperimentConfig) -> String {
    format!(
        "quality/v1 design={} cpr={:016x} {} {}",
        query.design,
        query.cpr.to_bits(),
        query.workload.key_fragment(),
        config_key_fragment(config)
    )
}

/// The canonical key of a cheapest query under a configuration.
#[must_use]
pub fn cheapest_key(query: &CheapestQuery, config: &ExperimentConfig) -> String {
    format!(
        "cheapest/v1 min_db={:016x} cpr={:016x} {} {}",
        query.min_quality_db.to_bits(),
        query.cpr.to_bits(),
        query.workload.key_fragment(),
        config_key_fragment(config)
    )
}

/// Renders a success response line (no trailing newline).
#[must_use]
pub fn ok_response(id: &Json, degraded: bool, result_payload: &str) -> String {
    let mut out = String::with_capacity(result_payload.len() + 64);
    out.push_str("{\"id\":");
    id.render_into(&mut out);
    out.push_str(",\"status\":\"ok\",\"degraded\":");
    out.push_str(if degraded { "true" } else { "false" });
    out.push_str(",\"result\":");
    out.push_str(result_payload);
    out.push('}');
    out
}

/// Renders an error response line (no trailing newline). `retriable`
/// distinguishes transient conditions (shed load, injected faults,
/// panicked evaluations) from permanent ones (parse errors, infeasible
/// designs).
#[must_use]
pub fn error_response(id: &Json, retriable: bool, message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 64);
    out.push_str("{\"id\":");
    id.render_into(&mut out);
    out.push_str(",\"status\":\"error\",\"retriable\":");
    out.push_str(if retriable { "true" } else { "false" });
    out.push_str(",\"error\":");
    crate::json::escape_into(message, &mut out);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_stream_quality_request() {
        let env = parse_request(
            r#"{"op":"quality","id":7,"design":"(8,1,1,4)","cpr":0.1,"workload":"uniform","cycles":5000}"#,
        )
        .unwrap();
        assert_eq!(env.id, Json::Num(7.0));
        let Request::Quality(q) = env.request else {
            panic!("wrong op");
        };
        assert_eq!(q.design.to_string(), "(8,1,1,4)");
        assert_eq!(q.cpr, 0.1);
        assert_eq!(
            q.workload,
            WorkloadSel::Stream {
                name: "uniform".to_owned(),
                cycles: 5000
            }
        );
    }

    #[test]
    fn parses_kernel_and_cheapest_requests() {
        let env = parse_request(r#"{"op":"quality","design":"exact","cpr":0.15,"workload":"fir"}"#)
            .unwrap();
        let Request::Quality(q) = env.request else {
            panic!("wrong op");
        };
        assert_eq!(q.design, Design::Exact { width: 32 });
        assert_eq!(
            q.workload,
            WorkloadSel::Kernel {
                name: "fir".to_owned(),
                scale: 1
            }
        );

        let env = parse_request(
            r#"{"op":"cheapest","id":"c1","min_quality_db":30,"cpr":0.1,"workload":"uniform"}"#,
        )
        .unwrap();
        let Request::Cheapest(c) = env.request else {
            panic!("wrong op");
        };
        assert_eq!(c.min_quality_db, 30.0);
        assert_eq!(env.id, Json::Str("c1".to_owned()));
    }

    #[test]
    fn rejects_malformed_requests_with_recovered_id() {
        let cases = [
            (r#"{"id":3}"#, "missing \"op\""),
            (r#"{"op":"quality","id":3}"#, "missing string \"design\""),
            (
                r#"{"op":"quality","id":3,"design":"(9,0,0,0)","cpr":0.1,"workload":"uniform"}"#,
                "bad design",
            ),
            (
                r#"{"op":"quality","id":3,"design":"exact","cpr":1.5,"workload":"uniform"}"#,
                "outside",
            ),
            (
                r#"{"op":"quality","id":3,"design":"exact","cpr":0.1,"workload":"nope"}"#,
                "unknown workload",
            ),
            (
                r#"{"op":"quality","id":3,"design":"exact","cpr":0.1,"workload":"uniform","cycles":0}"#,
                "positive",
            ),
        ];
        for (line, want) in cases {
            let (id, msg) = parse_request(line).unwrap_err();
            assert_eq!(id, Json::Num(3.0), "id recovered for {line}");
            assert!(msg.contains(want), "{line}: {msg}");
        }
    }

    #[test]
    fn keys_fold_in_the_whole_configuration() {
        let config = ExperimentConfig::default();
        let q = QualityQuery {
            design: Design::Exact { width: 32 },
            cpr: 0.1,
            workload: WorkloadSel::Stream {
                name: "uniform".to_owned(),
                cycles: 1000,
            },
        };
        let base = quality_key(&q, &config);
        assert!(!base.contains('\n'));
        let other_seed = ExperimentConfig {
            workload_seed: 1,
            ..config.clone()
        };
        assert_ne!(base, quality_key(&q, &other_seed));
        let other_cpr = QualityQuery {
            cpr: 0.1 + 1e-12,
            ..q.clone()
        };
        assert_ne!(
            base,
            quality_key(&other_cpr, &config),
            "bit-exact cpr keying"
        );
        assert_eq!(base, quality_key(&q.clone(), &config.clone()));
    }

    #[test]
    fn response_rendering_is_exact() {
        assert_eq!(
            ok_response(&Json::Num(1.0), false, "{\"x\":1}"),
            r#"{"id":1,"status":"ok","degraded":false,"result":{"x":1}}"#
        );
        assert_eq!(
            error_response(&Json::Null, true, "queue full"),
            r#"{"id":null,"status":"error","retriable":true,"error":"queue full"}"#
        );
    }
}
