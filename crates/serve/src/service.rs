//! The resident evaluation service.
//!
//! [`Service`] is the synchronous, testable core: it answers one request
//! at a time ([`Service::answer_line`]) through a tiered ladder —
//!
//! 1. **hot store hit** — the canonical key is looked up in the on-disk
//!    [`ResultStore`]; a validated record is served byte-identically;
//! 2. **simulation** — a miss is computed on the shared [`Engine`]
//!    (bounded-LRU artifact cache, filtered 64-lane backend) and, on
//!    success, persisted for the next process;
//! 3. **exact analytical bound** — when the request's *cost* exceeds the
//!    configured simulation budget, the service answers from the exact
//!    structural error model alone (no synthesis, no gate-level
//!    simulation) with `degraded:true`.
//!
//! Degradation is decided by an **admission-time cost budget** (stream
//! cycles, or kernel addition counts), *not* a wall-clock deadline: a
//! timer-based tier choice would make the same query answer differently
//! depending on machine load, violating the service's core guarantee
//! that the same query yields byte-identical bytes, hot or cold. The
//! budget is the deterministic proxy for a deadline — callers size it to
//! their latency target once, offline.
//!
//! Identical in-flight queries (same canonical key) **coalesce**: the
//! first requester computes, every concurrent duplicate waits on the
//! same slot and receives the same rendered payload. Evaluations run
//! under `catch_unwind`, so a panicking evaluation (or an injected one)
//! fails that request with a retriable error instead of the process.
//!
//! [`Frontend`] adds the concurrency spine: a bounded admission queue
//! (overflow is shed deterministically with a retriable error — see
//! [`crate::queue`]), a worker pool, and an in-order response buffer so
//! a request script always produces the same response byte stream.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use isa_obs::{Counter, Gauge, Histogram, Logger, Registry};

use isa_core::{
    paper_designs, structural_errors, Adder as _, CombinedErrorStats, Design, ExactAdder,
    OutputTriple, Substrate as _,
};
use isa_engine::{ArtifactCache, Engine, ExperimentConfig, GateLevelSubstrate, WorkloadSpec};
use isa_workloads::{
    take_pairs, AccumulationWorkload, RandomWalkWorkload, SineWorkload, UniformWorkload,
};

use crate::faults::{FaultPlan, FaultPoint};
use crate::json::Json;
use crate::proto::{
    cheapest_key, error_response, ok_response, parse_request, quality_key, CheapestQuery, Envelope,
    QualityQuery, Request, WorkloadSel,
};
use crate::store::{ResultStore, StoreGet};

/// Service configuration.
#[derive(Debug)]
pub struct ServeConfig {
    /// Worker threads for intra-request fan-out (the cheapest-design
    /// candidate sweep).
    pub threads: usize,
    /// Artifact-cache LRU capacity (built design contexts resident at
    /// once).
    pub artifact_cap: usize,
    /// Simulation cost budget per request, in additions (stream cycles or
    /// kernel adds); `None` = unlimited (tier 3 never used).
    pub sim_budget: Option<u64>,
    /// Result-store directory; `None` disables persistence.
    pub store_dir: Option<PathBuf>,
    /// The experiment configuration every answer is computed under.
    pub config: ExperimentConfig,
    /// Fault-injection plan (chaos tests; [`FaultPlan::none`] in
    /// production).
    pub faults: FaultPlan,
    /// Suppress stderr logging.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            artifact_cap: 64,
            sim_budget: None,
            store_dir: None,
            config: ExperimentConfig::default(),
            faults: FaultPlan::none(),
            quiet: false,
        }
    }
}

/// Monotonic service counters (the `stats` op; diagnostics only, never
/// part of a stored payload). Each field is a shared handle into the
/// service's [`Registry`] under `serve.*`, so the same numbers surface
/// through the `metrics` op and the Prometheus-style exposition.
#[derive(Debug)]
pub struct Counters {
    /// Requests received (including malformed ones).
    pub requests: Counter,
    /// Store lookups that served a validated record.
    pub store_hits: Counter,
    /// Store lookups that found nothing.
    pub store_misses: Counter,
    /// Store records that failed validation (recomputed, rewritten).
    pub store_corrupt: Counter,
    /// Store reads that failed with I/O errors (treated as misses).
    pub store_read_errors: Counter,
    /// Store writes that failed (answer served anyway).
    pub store_write_errors: Counter,
    /// Requests that waited on an identical in-flight computation.
    pub coalesced: Counter,
    /// Full simulations executed.
    pub computed: Counter,
    /// Degraded (analytical-bound) answers served.
    pub degraded: Counter,
    /// Requests shed at the admission queue.
    pub shed: Counter,
    /// Evaluations that panicked (isolated to their request).
    pub eval_panics: Counter,
}

impl Counters {
    fn new(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            store_hits: registry.counter("serve.store_hits"),
            store_misses: registry.counter("serve.store_misses"),
            store_corrupt: registry.counter("serve.store_corrupt"),
            store_read_errors: registry.counter("serve.store_read_errors"),
            store_write_errors: registry.counter("serve.store_write_errors"),
            coalesced: registry.counter("serve.coalesced"),
            computed: registry.counter("serve.computed"),
            degraded: registry.counter("serve.degraded"),
            shed: registry.counter("serve.shed"),
            eval_panics: registry.counter("serve.eval_panics"),
        }
    }
}

/// Per-stage latency histograms of the request lifecycle (`serve.*_ns`),
/// plus the live gauges: admission → coalesce → store → eval → respond.
#[derive(Debug)]
struct StageMetrics {
    /// Whole `answer_line` wall time.
    request_ns: Histogram,
    /// Submission-to-worker-pickup wait in the admission queue.
    admission_wait_ns: Histogram,
    /// Wait endured by coalesced duplicates for their leader's answer.
    coalesce_wait_ns: Histogram,
    /// Result-store lookup latency.
    store_get_ns: Histogram,
    /// Leader compute time (simulate or degrade).
    eval_ns: Histogram,
    /// Response write+flush latency.
    respond_ns: Histogram,
    /// Jobs admitted but not yet picked up by a worker.
    queue_depth: Gauge,
    /// Evaluation keys currently in flight (leaders holding a slot).
    inflight: Gauge,
}

impl StageMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            request_ns: registry.histogram("serve.request_ns"),
            admission_wait_ns: registry.histogram("serve.admission_wait_ns"),
            coalesce_wait_ns: registry.histogram("serve.coalesce_wait_ns"),
            store_get_ns: registry.histogram("serve.store_get_ns"),
            eval_ns: registry.histogram("serve.eval_ns"),
            respond_ns: registry.histogram("serve.respond_ns"),
            queue_depth: registry.gauge("serve.queue_depth"),
            inflight: registry.gauge("serve.inflight"),
        }
    }
}

/// One finished answer: the result payload (the bytes inside `result:`),
/// whether it was degraded, and whether it is eligible for the store.
#[derive(Debug, Clone)]
struct Answer {
    payload: String,
    degraded: bool,
    storeable: bool,
}

/// `Ok` = a served answer; `Err` = `(retriable, message)`.
type QResult = Result<Answer, (bool, String)>;

/// A computation slot shared by coalesced requests.
#[derive(Debug, Default)]
struct InFlight {
    done: Mutex<Option<QResult>>,
    ready: Condvar,
}

/// Pre-computed reference data of one kernel workload.
struct KernelData {
    kernel: Box<dyn isa_apps::Kernel>,
    reference: isa_apps::KernelRun,
    peak: u64,
}

/// Memoized deterministic input streams, keyed by `(workload, cycles)`.
type StreamCache = Mutex<HashMap<(String, u64), Arc<Vec<(u64, u64)>>>>;

/// The synchronous service core. Wrap in an [`Arc`] and drive it from
/// [`Frontend`]/[`serve_lines`] (or call [`Service::answer_line`]
/// directly in tests).
pub struct Service {
    cfg: ServeConfig,
    engine: Engine,
    substrate: GateLevelSubstrate,
    store: Option<ResultStore>,
    inflight: Mutex<HashMap<String, Arc<InFlight>>>,
    streams: StreamCache,
    kernels: Mutex<HashMap<(String, u64), Arc<KernelData>>>,
    registry: Registry,
    counters: Counters,
    stages: StageMetrics,
    logger: Logger,
}

impl Service {
    /// Builds a service: a shared bounded-LRU artifact cache, the
    /// filtered gate-level substrate over it, and (optionally) the
    /// on-disk result store.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store directory cannot be created.
    pub fn new(cfg: ServeConfig) -> io::Result<Self> {
        let registry = Registry::new();
        let cache = Arc::new(ArtifactCache::bounded_in(cfg.artifact_cap, &registry));
        let engine = Engine::with_cache(cfg.threads, Arc::clone(&cache));
        let substrate = GateLevelSubstrate::new(engine.cache(), cfg.config.clone());
        let store = match &cfg.store_dir {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };
        let counters = Counters::new(&registry);
        let stages = StageMetrics::new(&registry);
        let logger = Logger::new("isa-serve").quiet(cfg.quiet);
        Ok(Self {
            cfg,
            engine,
            substrate,
            store,
            inflight: Mutex::new(HashMap::new()),
            streams: Mutex::new(HashMap::new()),
            kernels: Mutex::new(HashMap::new()),
            registry,
            counters,
            stages,
            logger,
        })
    }

    /// The service counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The service's metric registry (`serve.*` plus its artifact cache's
    /// `engine.cache.*`). Process-wide metrics — the engine run totals,
    /// the filtered backend — live in [`isa_obs::global`]; the `metrics`
    /// op merges both views.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The configuration answers are computed under.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg.config
    }

    fn log(&self, msg: &str) {
        self.logger.warn(msg);
    }

    /// Answers one request line with one response line (no trailing
    /// newline). Never panics: malformed requests and failed evaluations
    /// become error responses.
    #[must_use]
    pub fn answer_line(&self, line: &str) -> String {
        let _span = isa_obs::span("serve.request");
        let started = Instant::now();
        self.counters.requests.inc();
        let response = match parse_request(line) {
            Ok(envelope) => self.answer(&envelope),
            Err((id, msg)) => error_response(&id, false, &msg),
        };
        self.stages.request_ns.observe_since(started);
        response
    }

    /// Answers one parsed request.
    #[must_use]
    pub fn answer(&self, envelope: &Envelope) -> String {
        let id = &envelope.id;
        match &envelope.request {
            Request::Ping => ok_response(id, false, "{\"kind\":\"pong\"}"),
            Request::Stats => ok_response(id, false, &self.stats_payload()),
            Request::Metrics => ok_response(id, false, &self.metrics_payload()),
            Request::Quality(query) => match self.quality_answer(query) {
                Ok(answer) => ok_response(id, answer.degraded, &answer.payload),
                Err((retriable, msg)) => error_response(id, retriable, &msg),
            },
            Request::Cheapest(query) => match self.cheapest_answer(query) {
                Ok(answer) => ok_response(id, answer.degraded, &answer.payload),
                Err((retriable, msg)) => error_response(id, retriable, &msg),
            },
        }
    }

    /// Answers a quality query through the full ladder (store, coalesce,
    /// compute-or-degrade).
    fn quality_answer(&self, query: &QualityQuery) -> QResult {
        let key = quality_key(query, &self.cfg.config);
        self.answer_keyed(&key, || self.compute_quality(query))
    }

    /// Answers a cheapest query through the same ladder.
    fn cheapest_answer(&self, query: &CheapestQuery) -> QResult {
        let key = cheapest_key(query, &self.cfg.config);
        self.answer_keyed(&key, || self.compute_cheapest(query))
    }

    /// The ladder shared by every evaluation op: hot store hit →
    /// coalesced compute → (inside `compute`) simulate or degrade.
    fn answer_keyed(&self, key: &str, compute: impl FnOnce() -> QResult) -> QResult {
        if let Some(store) = &self.store {
            let _span = isa_obs::span("serve.store.get");
            let lookup_started = Instant::now();
            let got = store.get(key, &self.cfg.faults);
            self.stages.store_get_ns.observe_since(lookup_started);
            match got {
                Ok(StoreGet::Hit(payload)) => {
                    self.counters.store_hits.inc();
                    return Ok(Answer {
                        payload,
                        degraded: false,
                        storeable: false,
                    });
                }
                Ok(StoreGet::Miss) => self.counters.store_misses.inc(),
                Ok(StoreGet::Corrupt(reason)) => {
                    self.counters.store_corrupt.inc();
                    self.log(&format!(
                        "corrupt store record for {key}: {reason}; recomputing"
                    ));
                }
                Err(e) => {
                    self.counters.store_read_errors.inc();
                    self.log(&format!("store read failed for {key}: {e}; recomputing"));
                }
            }
        }

        // Coalesce identical in-flight keys onto one computation.
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().expect("inflight lock");
            match inflight.get(key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(InFlight::default());
                    inflight.insert(key.to_owned(), Arc::clone(&flight));
                    self.stages.inflight.inc();
                    (flight, true)
                }
            }
        };
        if !leader {
            self.counters.coalesced.inc();
            let _span = isa_obs::span("serve.coalesce.wait");
            let wait_started = Instant::now();
            let mut done = flight.done.lock().expect("inflight slot lock");
            while done.is_none() {
                done = flight.ready.wait(done).expect("inflight slot lock");
            }
            self.stages.coalesce_wait_ns.observe_since(wait_started);
            return done.clone().expect("checked above");
        }

        let result = {
            let _span = isa_obs::span("serve.eval");
            let eval_started = Instant::now();
            let result = compute();
            self.stages.eval_ns.observe_since(eval_started);
            result
        };
        if let (Ok(answer), Some(store)) = (&result, &self.store) {
            if answer.storeable {
                if let Err(e) = store.put(key, &answer.payload, &self.cfg.faults) {
                    self.counters.store_write_errors.inc();
                    self.log(&format!(
                        "store write failed for {key}: {e}; serving anyway"
                    ));
                }
            }
        }
        *flight.done.lock().expect("inflight slot lock") = Some(result.clone());
        flight.ready.notify_all();
        self.inflight.lock().expect("inflight lock").remove(key);
        self.stages.inflight.dec();
        result
    }

    /// The cost of a query in additions — the deterministic degradation
    /// currency (see the module docs for why this is not a wall clock).
    fn query_cost(&self, workload: &WorkloadSel) -> u64 {
        match workload {
            WorkloadSel::Stream { cycles, .. } => *cycles,
            WorkloadSel::Kernel { name, scale } => self.kernel_data(name, *scale).reference.adds,
        }
    }

    /// Computes a quality answer: full simulation within budget, exact
    /// analytical bound beyond it.
    fn compute_quality(&self, query: &QualityQuery) -> QResult {
        if self.cfg.faults.fires(FaultPoint::SlowEval) {
            std::thread::sleep(std::time::Duration::from_millis(self.cfg.faults.slow_ms()));
        }
        let cost = self.query_cost(&query.workload);
        if self.cfg.sim_budget.is_some_and(|budget| cost > budget) {
            self.counters.degraded.inc();
            return Ok(Answer {
                payload: self.degraded_payload(query),
                degraded: true,
                storeable: false,
            });
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| self.simulate_quality(query)));
        match outcome {
            Ok(Ok(payload)) => {
                self.counters.computed.inc();
                Ok(Answer {
                    payload,
                    degraded: false,
                    storeable: true,
                })
            }
            Ok(Err(msg)) => Err((false, msg)),
            Err(payload) => {
                self.counters.eval_panics.inc();
                let msg = crate::panic_text(payload.as_ref());
                self.log(&format!("evaluation panicked (isolated): {msg}"));
                Err((true, format!("evaluation panicked: {msg}")))
            }
        }
    }

    /// Tier 2: the full gate-level evaluation of one quality query.
    /// `Err` = the design cannot be built (non-retriable).
    fn simulate_quality(&self, query: &QualityQuery) -> Result<String, String> {
        if self.cfg.faults.fires(FaultPoint::EvalPanic) {
            panic!("injected evaluation fault");
        }
        let config = &self.cfg.config;
        let clock_ps = config.clock_ps(query.cpr);
        // Feasibility first, so infeasible designs produce a clean
        // BuildError instead of a panic deep inside the substrate.
        let ctx = self
            .engine
            .try_context(&query.design, config)
            .map_err(|e| e.to_string())?;
        match &query.workload {
            WorkloadSel::Stream { name, cycles } => {
                let inputs = self.stream_inputs(name, *cycles);
                let silvers = self.substrate.run_batch(&query.design, clock_ps, &inputs);
                let golds = ctx.gold.add_batch(&inputs);
                let exact = ExactAdder::new(query.design.width());
                let mut stats = CombinedErrorStats::new();
                for ((&(a, b), &silver), &gold) in inputs.iter().zip(&silvers).zip(&golds) {
                    stats.push(&OutputTriple::new(exact.add(a, b), gold, silver));
                }
                let (s_pct, t_pct, j_pct) = stats.rms_re_percent();
                Ok(stream_payload(
                    query,
                    clock_ps,
                    config,
                    &[
                        ("rms_re_struct_pct", Json::Num(s_pct)),
                        ("rms_re_timing_pct", Json::Num(t_pct)),
                        ("rms_re_joint_pct", Json::Num(j_pct)),
                        ("timing_error_rate", Json::Num(stats.e_timing.error_rate())),
                        ("quality_db", Json::from_db(db_of_rms_pct(j_pct))),
                    ],
                ))
            }
            WorkloadSel::Kernel { name, scale } => {
                let data = self.kernel_data(name, *scale);
                let run = isa_apps::run_on_substrate(
                    data.kernel.as_ref(),
                    &self.substrate,
                    &query.design,
                    clock_ps,
                );
                let stats = isa_apps::score(&data.reference, &run);
                let behavioural = isa_apps::run_behavioural(data.kernel.as_ref(), &query.design);
                let ceiling = isa_apps::score(&data.reference, &behavioural);
                Ok(kernel_payload(
                    query,
                    clock_ps,
                    config,
                    &data,
                    &[
                        ("psnr_db", Json::from_db(stats.psnr_db(data.peak))),
                        ("snr_db", Json::from_db(stats.snr_db())),
                        ("max_abs_error", Json::Num(stats.max_abs_error() as f64)),
                        (
                            "structural_psnr_db",
                            Json::from_db(ceiling.psnr_db(data.peak)),
                        ),
                    ],
                ))
            }
        }
    }

    /// Tier 3: the exact analytical (structural-only) bound — no
    /// synthesis, no gate-level simulation, just the behavioural model.
    /// Timing-dependent fields are `null`: the bound excludes timing
    /// error by construction, and pretending it were zero would assert a
    /// falsehood.
    fn degraded_payload(&self, query: &QualityQuery) -> String {
        let config = &self.cfg.config;
        let clock_ps = config.clock_ps(query.cpr);
        match &query.workload {
            WorkloadSel::Stream { name, cycles } => {
                let inputs = self.stream_inputs(name, *cycles);
                let gold = query.design.behavioural();
                let stats = structural_errors(gold.as_ref(), inputs.iter().copied());
                let (s_pct, _, _) = stats.rms_re_percent();
                stream_payload(
                    query,
                    clock_ps,
                    config,
                    &[
                        ("bound", Json::Str("structural-exact".to_owned())),
                        ("rms_re_struct_pct", Json::Num(s_pct)),
                        ("rms_re_timing_pct", Json::Null),
                        ("rms_re_joint_pct", Json::Null),
                        ("timing_error_rate", Json::Null),
                        ("quality_db", Json::from_db(db_of_rms_pct(s_pct))),
                    ],
                )
            }
            WorkloadSel::Kernel { name, scale } => {
                let data = self.kernel_data(name, *scale);
                let behavioural = isa_apps::run_behavioural(data.kernel.as_ref(), &query.design);
                let ceiling = isa_apps::score(&data.reference, &behavioural);
                kernel_payload(
                    query,
                    clock_ps,
                    config,
                    &data,
                    &[
                        ("bound", Json::Str("structural-exact".to_owned())),
                        ("psnr_db", Json::from_db(ceiling.psnr_db(data.peak))),
                        ("snr_db", Json::from_db(ceiling.snr_db())),
                        ("max_abs_error", Json::Num(ceiling.max_abs_error() as f64)),
                        (
                            "structural_psnr_db",
                            Json::from_db(ceiling.psnr_db(data.peak)),
                        ),
                    ],
                )
            }
        }
    }

    /// Computes a cheapest-design answer: every paper design is scored at
    /// the query's (cpr, workload) through the regular quality ladder
    /// (each score coalesces and persists on its own), in parallel with
    /// per-candidate panic isolation; the minimum-area design meeting the
    /// floor wins, ties broken by label.
    ///
    /// Note the candidate sweep needs each *feasible* design's area, so
    /// synthesis still runs for meeting candidates even when their scores
    /// were degraded; the budget governs simulation volume, and synthesis
    /// is bounded by the fixed candidate set (and the artifact LRU).
    fn compute_cheapest(&self, query: &CheapestQuery) -> QResult {
        if self.cfg.faults.fires(FaultPoint::SlowEval) {
            std::thread::sleep(std::time::Duration::from_millis(self.cfg.faults.slow_ms()));
        }
        let config = &self.cfg.config;
        let clock_ps = config.clock_ps(query.cpr);
        let candidates = paper_designs();
        let points: Vec<(Design, f64)> = candidates.iter().map(|d| (*d, query.cpr)).collect();
        let spec = WorkloadSpec {
            name: query.workload.name().to_owned(),
            inputs: Arc::new(Vec::new()),
        };
        let answers = self.engine.try_map_points(config, &points, &spec, |unit| {
            self.quality_answer(&QualityQuery {
                design: unit.design,
                cpr: unit.cpr,
                workload: query.workload.clone(),
            })
        });

        let mut degraded = false;
        let mut errors = 0u64;
        let mut feasible: Vec<(Design, f64)> = Vec::new();
        for (design, outcome) in candidates.iter().zip(answers) {
            match outcome {
                Ok(Ok(answer)) => {
                    degraded |= answer.degraded;
                    let Some(db) = payload_quality_db(&answer.payload) else {
                        errors += 1;
                        continue;
                    };
                    if db >= query.min_quality_db {
                        feasible.push((*design, db));
                    }
                }
                // Non-retriable: the design cannot be built — simply not
                // a feasible candidate, not a service error.
                Ok(Err((false, _))) => {}
                Ok(Err((true, _))) | Err(_) => errors += 1,
            }
        }

        let mut cheapest: Option<(Design, f64, f64)> = None;
        for (design, db) in &feasible {
            let area = match self.engine.try_context(design, config) {
                Ok(ctx) => ctx.synthesized.area,
                Err(_) => continue,
            };
            let better = match &cheapest {
                None => true,
                Some((best, _, best_area)) => {
                    area < *best_area
                        || (area == *best_area && design.to_string() < best.to_string())
                }
            };
            if better {
                cheapest = Some((*design, *db, area));
            }
        }

        let mut fields = vec![
            ("kind", Json::Str("cheapest".to_owned())),
            ("min_quality_db", Json::Num(query.min_quality_db)),
            ("cpr", Json::Num(query.cpr)),
            ("clock_ps", Json::Num(clock_ps)),
            ("workload", Json::Str(query.workload.name().to_owned())),
            ("candidates", Json::Num(candidates.len() as f64)),
            ("feasible", Json::Num(feasible.len() as f64)),
            ("errors", Json::Num(errors as f64)),
        ];
        match &cheapest {
            Some((design, db, area)) => {
                fields.push(("design", Json::Str(design.to_string())));
                fields.push(("area", Json::Num(*area)));
                fields.push(("quality_db", Json::from_db(*db)));
            }
            None => {
                fields.push(("design", Json::Null));
                fields.push(("area", Json::Null));
                fields.push(("quality_db", Json::Null));
            }
        }
        Ok(Answer {
            payload: render_fields(&fields),
            degraded,
            // A panicked candidate would make the aggregate depend on the
            // fault, and a degraded one on the budget: only complete,
            // fully simulated sweeps are persisted.
            storeable: !degraded && errors == 0,
        })
    }

    /// The deterministic operand stream of a named stream workload
    /// (memoized; the memo is cleared past a small bound so pathological
    /// request mixes cannot hoard memory).
    fn stream_inputs(&self, name: &str, cycles: u64) -> Arc<Vec<(u64, u64)>> {
        let key = (name.to_owned(), cycles);
        {
            let streams = self.streams.lock().expect("stream memo lock");
            if let Some(inputs) = streams.get(&key) {
                return Arc::clone(inputs);
            }
        }
        let seed = self.cfg.config.workload_seed;
        #[allow(clippy::cast_possible_truncation)]
        let n = cycles as usize;
        let inputs = Arc::new(match name {
            "uniform" => take_pairs(UniformWorkload::new(32, seed), n),
            "walk" => take_pairs(RandomWalkWorkload::new(32, 4096, seed), n),
            "sine" => take_pairs(SineWorkload::new(32, 0.013, 0.029, 0.05, seed), n),
            "accumulate" => take_pairs(AccumulationWorkload::new(32, 24, seed), n),
            other => unreachable!("workload {other:?} rejected at parse time"),
        });
        let mut streams = self.streams.lock().expect("stream memo lock");
        if streams.len() >= 8 && !streams.contains_key(&key) {
            streams.clear();
        }
        streams.insert(key, Arc::clone(&inputs));
        inputs
    }

    /// The memoized kernel + exact reference of a kernel workload.
    fn kernel_data(&self, name: &str, scale: u64) -> Arc<KernelData> {
        let key = (name.to_owned(), scale);
        {
            let kernels = self.kernels.lock().expect("kernel memo lock");
            if let Some(data) = kernels.get(&key) {
                return Arc::clone(data);
            }
        }
        #[allow(clippy::cast_possible_truncation)]
        let kernel = isa_apps::kernel_by_name(name, scale as usize, self.cfg.config.workload_seed)
            .unwrap_or_else(|| unreachable!("kernel {name:?} rejected at parse time"));
        let reference = isa_apps::run_exact(kernel.as_ref());
        let peak = reference.output.iter().copied().max().unwrap_or(0).max(1);
        let data = Arc::new(KernelData {
            kernel,
            reference,
            peak,
        });
        let mut kernels = self.kernels.lock().expect("kernel memo lock");
        if kernels.len() >= 16 && !kernels.contains_key(&key) {
            kernels.clear();
        }
        kernels.insert(key, Arc::clone(&data));
        data
    }

    /// The `stats` payload (non-deterministic; never stored).
    fn stats_payload(&self) -> String {
        let c = &self.counters;
        let load = |counter: &Counter| Json::Num(counter.get() as f64);
        render_fields(&[
            ("kind", Json::Str("stats".to_owned())),
            ("requests", load(&c.requests)),
            ("store_hits", load(&c.store_hits)),
            ("store_misses", load(&c.store_misses)),
            ("store_corrupt", load(&c.store_corrupt)),
            ("store_read_errors", load(&c.store_read_errors)),
            ("store_write_errors", load(&c.store_write_errors)),
            ("coalesced", load(&c.coalesced)),
            ("computed", load(&c.computed)),
            ("degraded", load(&c.degraded)),
            ("shed", load(&c.shed)),
            ("eval_panics", load(&c.eval_panics)),
            (
                "artifacts_resident",
                Json::Num(self.engine.cache().len() as f64),
            ),
            (
                "store_records",
                match &self.store {
                    Some(store) => Json::Num(store.record_count().unwrap_or(0) as f64),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// The `metrics` payload: the full registry snapshot — this service's
    /// `serve.*` and `engine.cache.*` merged with the process-global
    /// `engine.*` / `sim.filtered.*` — as one JSON object
    /// (non-deterministic; never stored).
    fn metrics_payload(&self) -> String {
        let merged = self.registry.snapshot().merge(isa_obs::global().snapshot());
        Json::Obj(vec![
            ("kind".to_owned(), Json::Str("metrics".to_owned())),
            (
                "metrics".to_owned(),
                isa_obs::export::snapshot_json(&merged),
            ),
        ])
        .render()
    }
}

/// Renders an ordered field list as one JSON object.
fn render_fields(fields: &[(&str, Json)]) -> String {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    )
    .render()
}

/// Shared header + variable tail of a stream-quality payload.
fn stream_payload(
    query: &QualityQuery,
    clock_ps: f64,
    config: &ExperimentConfig,
    tail: &[(&str, Json)],
) -> String {
    let WorkloadSel::Stream { name, cycles } = &query.workload else {
        unreachable!("stream payload for a stream workload");
    };
    let mut fields = vec![
        ("kind", Json::Str("stream".to_owned())),
        ("design", Json::Str(query.design.to_string())),
        ("cpr", Json::Num(query.cpr)),
        ("clock_ps", Json::Num(clock_ps)),
        ("workload", Json::Str(name.clone())),
        ("cycles", Json::Num(*cycles as f64)),
        ("backend", Json::Str(config.backend.label().to_owned())),
    ];
    fields.extend_from_slice(tail);
    render_fields(&fields)
}

/// Shared header + variable tail of a kernel-quality payload.
fn kernel_payload(
    query: &QualityQuery,
    clock_ps: f64,
    config: &ExperimentConfig,
    data: &KernelData,
    tail: &[(&str, Json)],
) -> String {
    let WorkloadSel::Kernel { name, scale } = &query.workload else {
        unreachable!("kernel payload for a kernel workload");
    };
    let mut fields = vec![
        ("kind", Json::Str("kernel".to_owned())),
        ("design", Json::Str(query.design.to_string())),
        ("cpr", Json::Num(query.cpr)),
        ("clock_ps", Json::Num(clock_ps)),
        ("kernel", Json::Str(name.clone())),
        ("scale", Json::Num(*scale as f64)),
        ("backend", Json::Str(config.backend.label().to_owned())),
        ("outputs", Json::Num(data.reference.output.len() as f64)),
        ("adds", Json::Num(data.reference.adds as f64)),
    ];
    fields.extend_from_slice(tail);
    render_fields(&fields)
}

/// Quality in dB of an RMS relative error in percent (the explorer's
/// convention); infinite when error-free.
fn db_of_rms_pct(rms_pct: f64) -> f64 {
    if rms_pct <= 0.0 {
        f64::INFINITY
    } else {
        isa_metrics::snr_db(rms_pct / 100.0)
    }
}

/// Extracts the comparable quality figure from a quality payload
/// (`quality_db` for streams, `psnr_db` for kernels).
fn payload_quality_db(payload: &str) -> Option<f64> {
    let value = Json::parse(payload).ok()?;
    value
        .get("quality_db")
        .or_else(|| value.get("psnr_db"))
        .and_then(Json::to_db)
}

// ---------------------------------------------------------------------------
// Frontend: bounded admission, worker pool, in-order responses.
// ---------------------------------------------------------------------------

/// One admitted job: its submission sequence number, raw line, and
/// admission timestamp (for the queue-wait histogram).
struct Job {
    seq: u64,
    line: String,
    admitted: Instant,
}

/// The in-order response buffer: responses are inserted under their
/// submission sequence number and emitted strictly in that order, so a
/// request script always yields the same response byte stream regardless
/// of worker interleaving.
#[derive(Debug, Default)]
struct OutBuf {
    state: Mutex<OutState>,
    avail: Condvar,
}

#[derive(Debug, Default)]
struct OutState {
    slots: BTreeMap<u64, String>,
    next_emit: u64,
    submitted: u64,
    sealed: bool,
}

impl OutBuf {
    fn note_submission(&self) {
        self.state.lock().expect("outbuf lock").submitted += 1;
    }

    fn insert(&self, seq: u64, response: String) {
        let mut state = self.state.lock().expect("outbuf lock");
        state.slots.insert(seq, response);
        drop(state);
        self.avail.notify_all();
    }

    /// Marks the submission stream complete (no further sequence numbers).
    fn seal(&self) {
        let mut state = self.state.lock().expect("outbuf lock");
        state.sealed = true;
        drop(state);
        self.avail.notify_all();
    }

    /// Blocks for the next in-order response; `None` once sealed and
    /// fully drained.
    fn pop_next(&self) -> Option<String> {
        let mut state = self.state.lock().expect("outbuf lock");
        loop {
            let next = state.next_emit;
            if let Some(response) = state.slots.remove(&next) {
                state.next_emit += 1;
                return Some(response);
            }
            if state.sealed && state.next_emit >= state.submitted {
                return None;
            }
            state = self.avail.wait(state).expect("outbuf lock");
        }
    }
}

/// A gate workers wait behind until [`Frontend::start`].
#[derive(Debug, Default)]
struct Gate {
    open: Mutex<bool>,
    bell: Condvar,
}

impl Gate {
    fn wait_open(&self) {
        let mut open = self.open.lock().expect("gate lock");
        while !*open {
            open = self.bell.wait(open).expect("gate lock");
        }
    }

    fn open(&self) {
        *self.open.lock().expect("gate lock") = true;
        self.bell.notify_all();
    }
}

/// The concurrent front end over a [`Service`]: a bounded admission
/// queue, a worker pool (held behind a start gate so tests can submit a
/// whole script before any work begins, making shedding exactly
/// reproducible), and the in-order reorder buffer.
pub struct Frontend {
    service: Arc<Service>,
    queue: Arc<crate::queue::BoundedQueue<Job>>,
    out: Arc<OutBuf>,
    gate: Arc<Gate>,
    handles: Vec<JoinHandle<()>>,
    seq: u64,
}

impl Frontend {
    /// Spawns `workers` worker threads over the service with a
    /// `queue_cap`-bounded admission queue. Workers idle behind the start
    /// gate until [`Frontend::start`].
    #[must_use]
    pub fn new(service: Arc<Service>, workers: usize, queue_cap: usize) -> Self {
        let queue = Arc::new(crate::queue::BoundedQueue::<Job>::new(queue_cap));
        let out = Arc::new(OutBuf::default());
        let gate = Arc::new(Gate::default());
        let handles = (0..workers.max(1))
            .map(|_| {
                let service = Arc::clone(&service);
                let queue = Arc::clone(&queue);
                let out = Arc::clone(&out);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    gate.wait_open();
                    while let Some(job) = queue.pop() {
                        service.stages.queue_depth.dec();
                        service.stages.admission_wait_ns.observe_since(job.admitted);
                        let response = service.answer_line(&job.line);
                        out.insert(job.seq, response);
                    }
                })
            })
            .collect();
        Self {
            service,
            queue,
            out,
            gate,
            handles,
            seq: 0,
        }
    }

    /// Opens the worker gate (idempotent).
    pub fn start(&self) {
        self.gate.open();
    }

    /// Submits one request line: admitted to the queue, or — when the
    /// queue is at capacity — shed on the spot with a retriable error
    /// response in the request's output slot.
    pub fn submit(&mut self, line: &str) {
        let seq = self.seq;
        self.seq += 1;
        self.out.note_submission();
        let job = Job {
            seq,
            line: line.to_owned(),
            admitted: Instant::now(),
        };
        match self.queue.try_push(job) {
            Ok(()) => self.service.stages.queue_depth.inc(),
            Err(job) => {
                self.service.counters.shed.inc();
                let id = Json::parse(&job.line)
                    .ok()
                    .and_then(|v| v.get("id").cloned())
                    .unwrap_or(Json::Null);
                self.out.insert(
                    job.seq,
                    error_response(&id, true, "service overloaded: admission queue full, retry"),
                );
            }
        }
    }

    /// Opens the gate (if still closed), stops admissions, joins the
    /// workers and seals the reorder buffer — without consuming any
    /// responses, so a concurrent drainer (the [`serve_lines`] writer
    /// thread) receives every one. Popping here instead would race that
    /// thread for the responses and silently drop whatever it won.
    fn shutdown(&mut self) {
        self.start();
        self.queue.close();
        for handle in self.handles.drain(..) {
            handle.join().expect("serve worker");
        }
        self.out.seal();
    }

    /// Finishes the session: opens the gate (if still closed), stops
    /// admissions, drains the workers and returns every response in
    /// submission order.
    #[must_use]
    pub fn finish(mut self) -> Vec<String> {
        self.shutdown();
        let mut responses = Vec::new();
        while let Some(response) = self.out.pop_next() {
            responses.push(response);
        }
        responses
    }
}

/// Serves a line-delimited session: requests read from `reader`, ordered
/// responses written (and flushed) to `writer` as they become available.
/// Returns at end of input, after every admitted request is answered.
///
/// # Errors
///
/// Returns the first reader/writer I/O error.
pub fn serve_lines<R: BufRead, W: Write + Send>(
    service: &Arc<Service>,
    reader: R,
    mut writer: W,
    workers: usize,
    queue_cap: usize,
) -> io::Result<()> {
    let mut frontend = Frontend::new(Arc::clone(service), workers, queue_cap);
    frontend.start();
    let out = Arc::clone(&frontend.out);
    let respond_ns = Arc::clone(service);
    std::thread::scope(|scope| {
        let writer_handle = scope.spawn(move || -> io::Result<()> {
            while let Some(response) = out.pop_next() {
                let write_started = Instant::now();
                writeln!(writer, "{response}")?;
                writer.flush()?;
                respond_ns.stages.respond_ns.observe_since(write_started);
            }
            Ok(())
        });
        let mut read_error = None;
        for line in reader.lines() {
            match line {
                Ok(line) => {
                    if !line.trim().is_empty() {
                        frontend.submit(&line);
                    }
                }
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            }
        }
        frontend.shutdown();
        let write_result = writer_handle.join().expect("serve writer");
        match read_error {
            Some(e) => Err(e),
            None => write_result,
        }
    })
}

/// Serves connections on a Unix domain socket, one session thread per
/// connection, forever. Intended for the `isa-serve --socket` daemon
/// mode; tests and CI drive stdin instead.
///
/// # Errors
///
/// Returns the bind error; per-connection errors are logged and do not
/// stop the accept loop.
#[cfg(unix)]
pub fn serve_unix(
    service: &Arc<Service>,
    path: &std::path::Path,
    workers: usize,
    queue_cap: usize,
) -> io::Result<()> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let service = Arc::clone(service);
                let peer = stream.try_clone();
                std::thread::spawn(move || {
                    let result = match peer {
                        Ok(read_half) => serve_lines(
                            &service,
                            io::BufReader::new(read_half),
                            stream,
                            workers,
                            queue_cap,
                        ),
                        Err(e) => Err(e),
                    };
                    if let Err(e) = result {
                        service.log(&format!("connection error: {e}"));
                    }
                });
            }
            Err(e) => {
                service.log(&format!("accept error: {e}"));
            }
        }
    }
    Ok(())
}
