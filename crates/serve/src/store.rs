//! Content-addressed on-disk store of finished query results.
//!
//! Every finished (non-degraded) answer is persisted as one small record
//! file so repeated traffic is a lookup, not a simulation — across
//! process restarts, not just within one. The store is deliberately
//! paranoid:
//!
//! * **addressing** — the record file name is the FNV-1a 64 hash of the
//!   query's canonical key; the full key is stored *inside* the record
//!   and compared on read, so a hash collision reads as a miss, never as
//!   a wrong answer;
//! * **integrity** — the payload carries its length and its own FNV-1a 64
//!   checksum; any byte flip, truncation or header damage is detected and
//!   reported as [`StoreGet::Corrupt`] (the service logs it, recomputes,
//!   and rewrites — a corrupt record is *never* served);
//! * **atomicity** — writes go to a temp file in the same directory and
//!   are published by `rename`, so a crash mid-write leaves either the
//!   old record or none, not a torn one. (The fault injector can still
//!   plant a torn record on purpose to prove the read side heals.)
//!
//! ## Record format (`isa-serve-store/v1`)
//!
//! ```text
//! isa-serve-store/v1\n
//! key=<canonical query key>\n
//! len=<payload length in bytes>\n
//! fnv=<FNV-1a 64 of payload, 16 hex digits>\n
//! \n
//! <payload bytes>
//! ```
//!
//! The payload is the rendered result JSON (response-envelope free, so
//! the same bytes serve every requester of the same key).

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::faults::{FaultPlan, FaultPoint};

/// Outcome of a store lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum StoreGet {
    /// A validated record: the stored payload.
    Hit(String),
    /// No record for this key.
    Miss,
    /// A record exists but failed validation (reason attached); the
    /// caller must recompute and overwrite.
    Corrupt(String),
}

/// The on-disk result store rooted at one directory.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The record path for a canonical key.
    #[must_use]
    pub fn record_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.rec", fnv1a64(key.as_bytes())))
    }

    /// Looks up a key, validating the record end to end.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error for anything other than
    /// not-found (injected store-read faults surface here too).
    pub fn get(&self, key: &str, faults: &FaultPlan) -> io::Result<StoreGet> {
        if faults.fires(FaultPoint::StoreRead) {
            return Err(io::Error::other("injected store read fault"));
        }
        let path = self.record_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(StoreGet::Miss),
            Err(e) => return Err(e),
        };
        Ok(validate_record(&bytes, key))
    }

    /// Persists a payload under a key via temp-file + rename.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (injected store-write faults
    /// surface here too). An injected torn write *succeeds* from the
    /// caller's point of view but leaves a truncated record, modelling a
    /// filesystem that lied about durability; the read side detects it.
    pub fn put(&self, key: &str, payload: &str, faults: &FaultPlan) -> io::Result<()> {
        if faults.fires(FaultPoint::StoreWrite) {
            return Err(io::Error::other("injected store write fault"));
        }
        let record = encode_record(key, payload);
        let torn = if faults.fires(FaultPoint::TornWrite) {
            Some(faults.torn_len(record.len()))
        } else {
            None
        };
        let bytes = match torn {
            Some(len) => &record.as_bytes()[..len],
            None => record.as_bytes(),
        };
        let tmp = self.dir.join(format!(
            "tmp-{:016x}-{}-{}",
            fnv1a64(key.as_bytes()),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        let result = fs::rename(&tmp, self.record_path(key));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Number of record files currently on disk (diagnostics only).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory is unreadable.
    pub fn record_count(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "rec") {
                n += 1;
            }
        }
        Ok(n)
    }
}

/// Encodes one record (see the module docs for the format).
#[must_use]
pub fn encode_record(key: &str, payload: &str) -> String {
    assert!(
        !key.contains('\n'),
        "canonical keys are single-line by construction"
    );
    format!(
        "isa-serve-store/v1\nkey={key}\nlen={}\nfnv={:016x}\n\n{payload}",
        payload.len(),
        fnv1a64(payload.as_bytes())
    )
}

/// Validates raw record bytes against the expected key.
#[must_use]
pub fn validate_record(bytes: &[u8], key: &str) -> StoreGet {
    let corrupt = |reason: &str| StoreGet::Corrupt(reason.to_owned());
    let Ok(text) = std::str::from_utf8(bytes) else {
        return corrupt("record is not UTF-8");
    };
    let Some(rest) = text.strip_prefix("isa-serve-store/v1\n") else {
        return corrupt("bad magic");
    };
    let Some((key_line, rest)) = rest.split_once('\n') else {
        return corrupt("truncated header (key)");
    };
    let Some(stored_key) = key_line.strip_prefix("key=") else {
        return corrupt("malformed key line");
    };
    if stored_key != key {
        return corrupt("key mismatch (hash collision or corruption)");
    }
    let Some((len_line, rest)) = rest.split_once('\n') else {
        return corrupt("truncated header (len)");
    };
    let Some(len) = len_line
        .strip_prefix("len=")
        .and_then(|v| v.parse::<usize>().ok())
    else {
        return corrupt("malformed len line");
    };
    let Some((fnv_line, rest)) = rest.split_once('\n') else {
        return corrupt("truncated header (fnv)");
    };
    let Some(expect_fnv) = fnv_line
        .strip_prefix("fnv=")
        .and_then(|v| u64::from_str_radix(v, 16).ok())
    else {
        return corrupt("malformed fnv line");
    };
    let Some(payload) = rest.strip_prefix('\n') else {
        return corrupt("missing header/payload separator");
    };
    if payload.len() != len {
        return corrupt("payload length mismatch");
    }
    if fnv1a64(payload.as_bytes()) != expect_fnv {
        return corrupt("payload checksum mismatch");
    }
    StoreGet::Hit(payload.to_owned())
}

/// FNV-1a 64-bit hash (the store's addressing and checksum hash).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "isa-serve-store-test-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn put_get_round_trips() {
        let dir = temp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let faults = FaultPlan::none();
        assert_eq!(store.get("k1", &faults).unwrap(), StoreGet::Miss);
        store.put("k1", "{\"x\":1}", &faults).unwrap();
        assert_eq!(
            store.get("k1", &faults).unwrap(),
            StoreGet::Hit("{\"x\":1}".to_owned())
        );
        assert_eq!(store.record_count().unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_mismatch_reads_as_corrupt_not_wrong_answer() {
        // Plant a valid record under the *file name* of another key.
        let dir = temp_dir("collision");
        let store = ResultStore::open(&dir).unwrap();
        let record = encode_record("other-key", "payload");
        fs::write(store.record_path("my-key"), record).unwrap();
        match store.get("my-key", &FaultPlan::none()).unwrap() {
            StoreGet::Corrupt(reason) => assert!(reason.contains("key mismatch"), "{reason}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_write_is_detected_on_read() {
        let dir = temp_dir("torn");
        let store = ResultStore::open(&dir).unwrap();
        let torn = FaultPlan::seeded(11).with_rate(FaultPoint::TornWrite, 256);
        store.put("k", "some payload bytes", &torn).unwrap();
        match store.get("k", &FaultPlan::none()).unwrap() {
            StoreGet::Corrupt(_) | StoreGet::Miss => {}
            StoreGet::Hit(p) => panic!("torn record served: {p:?}"),
        }
        // Healing: a clean rewrite over the torn record is served again.
        store
            .put("k", "some payload bytes", &FaultPlan::none())
            .unwrap();
        assert_eq!(
            store.get("k", &FaultPlan::none()).unwrap(),
            StoreGet::Hit("some payload bytes".to_owned())
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_read_fault_is_an_io_error() {
        let dir = temp_dir("readfault");
        let store = ResultStore::open(&dir).unwrap();
        let faults = FaultPlan::seeded(1).with_rate(FaultPoint::StoreRead, 256);
        assert!(store.get("k", &faults).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
