//! `isa-serve` — a resident quality/Pareto query service over the
//! speculative-adder evaluation engine.
//!
//! The experiment binaries (`crates/experiments`) run one sweep and
//! exit; every invocation re-synthesizes and re-simulates from scratch.
//! This crate turns the same [`isa_engine::Engine`] into a long-lived
//! front end that answers small questions cheaply and repeatedly:
//!
//! * *"What is the quality of design `8,2,1,4` at 20% clock-period
//!   reduction on the Sobel kernel?"* — the `quality` op;
//! * *"What is the cheapest paper design meeting 30 dB at this clock?"*
//!   — the `cheapest` op.
//!
//! Requests and responses are line-delimited JSON over stdin/stdout or a
//! Unix socket ([`service::serve_lines`] / [`service::serve_unix`]); the
//! JSON codec is hand-rolled ([`json`]) because the workspace takes no
//! external dependencies.
//!
//! The design centre of gravity is **robustness**, in four layers:
//!
//! 1. [`store`] — a checksummed, content-addressed on-disk result store;
//!    corrupt or torn records are detected, logged and recomputed, never
//!    served;
//! 2. [`service`] — request coalescing, bounded artifact LRU, per-request
//!    cost budgets with tiered degradation, and `catch_unwind` isolation
//!    so a panicking evaluation fails one request, not the process;
//! 3. [`queue`] — bounded admission with deterministic load shedding;
//! 4. [`faults`] — a seeded fault-injection plan driving the chaos
//!    battery that proves all of the above under injected store I/O
//!    errors, torn writes, evaluation panics and stalls.
//!
//! Everything the service serves is deterministic: the same query yields
//! byte-identical result payloads whether answered hot (store),
//! coalesced (shared in-flight computation) or cold (simulation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod json;
pub mod proto;
pub mod queue;
pub mod service;
pub mod store;

pub use faults::{FaultPlan, FaultPoint};
pub use json::Json;
pub use proto::{parse_request, Envelope, Request, WorkloadSel};
pub use queue::BoundedQueue;
pub use service::{serve_lines, Frontend, ServeConfig, Service};
pub use store::{ResultStore, StoreGet};

#[cfg(unix)]
pub use service::serve_unix;

/// Renders a `catch_unwind` payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a fixed description).
#[must_use]
pub fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
