//! Tape-vs-`evaluate_words` bit-identity battery: sampled width-32 grid
//! designs (plus exact adders across topologies) × random 64-lane planes,
//! checked at the scalar plane width and at both vector chunk widths
//! (`[u64; 4]` and `[u64; 8]` — the const-generic executor makes both
//! testable regardless of the `wide-tape` feature).

use isa_core::designs::enumerate_quadruples;
use isa_netlist::builders::{build_exact, isa, AdderTopology};
use isa_netlist::graph::Netlist;
use isa_netlist::tape::InstructionTape;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scalar path, then both chunk widths, against the graph interpreter.
fn check_tape_parity(netlist: &Netlist, seed: &mut u64, batteries: usize) {
    let tape = InstructionTape::compile(netlist);
    let pins = netlist.inputs().len();
    for _ in 0..batteries {
        let planes: Vec<u64> = (0..pins).map(|_| splitmix(seed)).collect();
        let expected = netlist.evaluate_words(&planes);

        let mut arena = Vec::new();
        tape.execute_into(&planes, &mut arena);
        assert_eq!(arena, expected, "{}: scalar tape diverged", netlist.name());

        check_chunked::<4>(netlist, &tape, seed);
        check_chunked::<8>(netlist, &tape, seed);
    }
}

fn check_chunked<const C: usize>(netlist: &Netlist, tape: &InstructionTape, seed: &mut u64) {
    let pins = netlist.inputs().len();
    let sets: Vec<Vec<u64>> = (0..C)
        .map(|_| (0..pins).map(|_| splitmix(seed)).collect())
        .collect();
    let chunks: Vec<[u64; C]> = (0..pins)
        .map(|i| std::array::from_fn(|j| sets[j][i]))
        .collect();
    let mut arena = Vec::new();
    tape.execute_into(&chunks, &mut arena);
    for (j, set) in sets.iter().enumerate() {
        let expected = netlist.evaluate_words(set);
        for (slot, (chunk, want)) in arena.iter().zip(&expected).enumerate() {
            assert_eq!(
                chunk[j],
                *want,
                "{}: chunk width {C} element {j} diverged at net {slot}",
                netlist.name()
            );
        }
    }
}

#[test]
fn tape_matches_evaluate_words_on_sampled_grid_designs() {
    let grid = enumerate_quadruples(32);
    assert!(!grid.is_empty());
    let mut seed = 0x5EED_7A9E_0000_0001u64;
    let mut sampled = 0usize;
    // Every 97th quadruple: ~deterministic spread over the grid without
    // simulating thousands of designs.
    for cfg in grid.iter().step_by(97) {
        let adder = isa::build(cfg, AdderTopology::Ripple).expect("grid design must build");
        check_tape_parity(adder.netlist(), &mut seed, 4);
        sampled += 1;
    }
    assert!(sampled >= 10, "expected a meaningful grid sample");
}

#[test]
fn tape_matches_evaluate_words_on_exact_topologies() {
    let mut seed = 0x5EED_7A9E_0000_0002u64;
    for width in [8, 16, 32] {
        for topology in [
            AdderTopology::Ripple,
            AdderTopology::Cla4,
            AdderTopology::BrentKung,
            AdderTopology::Sklansky,
            AdderTopology::KoggeStone,
        ] {
            let adder = build_exact(width, topology);
            check_tape_parity(adder.netlist(), &mut seed, 4);
        }
    }
}
