//! Property-based tests of the netlist substrate: every generated adder is
//! a correct adder, every ISA netlist matches the behavioural model, and
//! the timing machinery obeys its contracts.

use isa_core::{Adder, IsaConfig, SpeculativeAdder};
use isa_netlist::builders::{build_exact, isa, AdderTopology};
use isa_netlist::cell::CellLibrary;
use isa_netlist::sdf;
use isa_netlist::sta::StaReport;
use isa_netlist::synth::area_recovery;
use isa_netlist::timing::{DelayAnnotation, VariationModel};
use proptest::prelude::*;

fn topology_strategy() -> impl Strategy<Value = AdderTopology> {
    prop_oneof![
        Just(AdderTopology::Ripple),
        Just(AdderTopology::Cla4),
        Just(AdderTopology::CarrySkip(4)),
        Just(AdderTopology::CarrySelect(4)),
        Just(AdderTopology::BrentKung),
        Just(AdderTopology::Sklansky),
        Just(AdderTopology::KoggeStone),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every topology at every supported width computes a + b exactly.
    #[test]
    fn all_topologies_add(
        topology in topology_strategy(),
        width in prop_oneof![Just(8u32), Just(16), Just(32)],
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assume!(topology.supports_width(width));
        let mask = (1u64 << width) - 1;
        let adder = build_exact(width, topology);
        prop_assert_eq!(adder.add(a & mask, b & mask), (a & mask) + (b & mask));
    }

    /// Gate-level ISA == behavioural ISA for arbitrary valid configs.
    #[test]
    fn isa_netlist_matches_behavioural(
        b_sz in prop_oneof![Just(8u32), Just(16)],
        s in 0u32..=4,
        c in 0u32..=2,
        r in 0u32..=6,
        a in any::<u64>(),
        x in any::<u64>(),
    ) {
        let cfg = IsaConfig::new(32, b_sz, s.min(b_sz), c.min(b_sz), r.min(b_sz)).unwrap();
        let behavioural = SpeculativeAdder::new(cfg);
        let gate = isa::build(&cfg, AdderTopology::Ripple).unwrap();
        let m = u32::MAX as u64;
        prop_assert_eq!(gate.add(a & m, x & m), behavioural.add(a & m, x & m));
    }

    /// STA critical delay is positive and grows monotonically when every
    /// delay is scaled up.
    #[test]
    fn sta_scales_with_delays(factor in 1.0f64..3.0) {
        let adder = build_exact(16, AdderTopology::BrentKung);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let base = StaReport::analyze(adder.netlist(), &ann).critical_ps();
        let scaled = StaReport::analyze(adder.netlist(), &ann.scaled(factor)).critical_ps();
        prop_assert!(base > 0.0);
        prop_assert!((scaled - base * factor).abs() < 1e-6);
    }

    /// Area recovery never exceeds the target and never speeds a cell up.
    #[test]
    fn area_recovery_contract(
        target in 250.0f64..600.0,
        max_factor in 1.0f64..2.5,
    ) {
        let adder = build_exact(16, AdderTopology::Sklansky);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let base_crit = StaReport::analyze(adder.netlist(), &ann).critical_ps();
        prop_assume!(target >= base_crit);
        let recovered = area_recovery(adder.netlist(), &ann, target, max_factor);
        let crit = StaReport::analyze(adder.netlist(), &recovered).critical_ps();
        prop_assert!(crit <= target + 1e-6, "crit {crit} vs target {target}");
        for (r, n) in recovered.as_slice().iter().zip(ann.as_slice()) {
            prop_assert!(*r >= *n - 1e-9);
            prop_assert!(*r <= n * max_factor + 1e-9);
        }
        // Function unchanged.
        prop_assert_eq!(adder.add(0xABCD, 0x1234), 0xABCD + 0x1234);
    }

    /// SDF write/read round-trips any variation seed at milli-ps accuracy.
    #[test]
    fn sdf_roundtrip(seed in any::<u64>(), sigma in 0.0f64..0.1) {
        let adder = build_exact(8, AdderTopology::Ripple);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::with_variation(
            adder.netlist(),
            &lib,
            &VariationModel::new(sigma, seed),
        );
        let text = sdf::write(adder.netlist(), &ann);
        let back = sdf::read(adder.netlist(), &text).unwrap();
        for (a, b) in ann.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// Variation is always within +-3 sigma multiplicatively.
    #[test]
    fn variation_bounds(seed in any::<u64>(), sigma in 0.0f64..0.2) {
        let adder = build_exact(8, AdderTopology::Cla4);
        let lib = CellLibrary::industrial_65nm();
        let nominal = DelayAnnotation::nominal(adder.netlist(), &lib);
        let varied = nominal.perturbed(&VariationModel::new(sigma, seed));
        for (v, n) in varied.as_slice().iter().zip(nominal.as_slice()) {
            prop_assert!(*v >= n * (1.0 - 3.0 * sigma) - 1e-9);
            prop_assert!(*v <= n * (1.0 + 3.0 * sigma) + 1e-9);
        }
    }

    /// The zero-delay evaluator agrees with u64 packing on every adder.
    #[test]
    fn evaluate_outputs_packing(a in any::<u32>(), b in any::<u32>()) {
        let adder = build_exact(32, AdderTopology::KoggeStone);
        let values = adder.netlist().evaluate(&adder.input_values(a.into(), b.into()));
        let packed = adder.netlist().evaluate_outputs_u64(&adder.input_values(a.into(), b.into()));
        for (i, net) in adder.netlist().outputs().iter().enumerate() {
            prop_assert_eq!(values[net.index()], (packed >> i) & 1 == 1);
        }
    }
}

mod word_level {
    use super::*;
    use isa_core::{LaneBatch, LANES};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Bit-sliced evaluation equals scalar evaluation in every lane, on
        /// both exact and ISA netlists.
        #[test]
        fn evaluate_words_matches_scalar_lanes(
            topology in topology_strategy(),
            seed in any::<u64>(),
        ) {
            prop_assume!(topology.supports_width(8));
            let cfg = IsaConfig::new(32, 8, 0, 1, 4).unwrap();
            let adders = [
                build_exact(32, topology),
                isa::build(&cfg, topology).unwrap(),
            ];
            let mut x = seed | 1;
            let pairs: Vec<(u64, u64)> = (0..LANES as u64)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x >> 32, x & 0xFFFF_FFFF)
                })
                .collect();
            for adder in &adders {
                let batch = LaneBatch::pack(32, &pairs);
                let planes = adder
                    .netlist()
                    .evaluate_output_planes(&adder.input_planes(&batch));
                let lanes = LaneBatch::unpack_lanes(&planes, LANES);
                for (l, &(a, b)) in pairs.iter().enumerate() {
                    prop_assert_eq!(lanes[l], adder.add(a, b), "lane {}", l);
                }
            }
        }

        /// `add_batch` equals mapping `add`, including ragged tails.
        #[test]
        fn add_batch_matches_add(n in 1usize..200, seed in any::<u64>()) {
            let adder = build_exact(32, AdderTopology::BrentKung);
            let mut x = seed | 1;
            let pairs: Vec<(u64, u64)> = (0..n)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 32, x & 0xFFFF_FFFF)
                })
                .collect();
            let batched = adder.add_batch(&pairs);
            for (i, &(a, b)) in pairs.iter().enumerate() {
                prop_assert_eq!(batched[i], a + b);
            }
        }
    }
}
