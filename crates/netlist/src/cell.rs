//! Standard cells: logic functions and a synthetic 65 nm-class library.
//!
//! The paper synthesizes its adders "with Synopsys Design Compiler in an
//! industrial 65 nm technology". We substitute a compact standard-cell
//! library whose *relative* delays and areas follow typical 65 nm general
//! purpose libraries (inverter-normalized): what matters for reproducing
//! timing-error behaviour is the path-depth distribution and load
//! dependence, not absolute picoseconds — the clock scale is anchored to the
//! synthesis constraint exactly as in the paper.

use std::fmt;

/// Combinational standard-cell function.
///
/// Input ordering conventions are documented per variant; they matter for
/// the asymmetric cells ([`CellKind::Mux2`], [`CellKind::Ao21`], ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Constant logic 0 (tie-low), no inputs.
    Const0,
    /// Constant logic 1 (tie-high), no inputs.
    Const1,
    /// Buffer: `Y = A`.
    Buf,
    /// Inverter: `Y = !A`.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer, inputs `[d0, d1, sel]`: `Y = sel ? d1 : d0`.
    Mux2,
    /// AND-OR: inputs `[a, b, c]`, `Y = (a & b) | c`.
    Ao21,
    /// OR-AND: inputs `[a, b, c]`, `Y = (a | b) & c`.
    Oa21,
    /// AND-OR-Invert: inputs `[a, b, c]`, `Y = !((a & b) | c)`.
    Aoi21,
    /// OR-AND-Invert: inputs `[a, b, c]`, `Y = !((a | b) & c)`.
    Oai21,
    /// 3-input majority (full-adder carry): `Y = ab | ac | bc`.
    Maj3,
    /// 3-input AND.
    And3,
    /// 3-input OR.
    Or3,
    /// 3-input XOR (full-adder sum).
    Xor3,
}

/// All cell kinds, for library iteration and tests.
pub const ALL_CELL_KINDS: [CellKind; 19] = [
    CellKind::Const0,
    CellKind::Const1,
    CellKind::Buf,
    CellKind::Inv,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Ao21,
    CellKind::Oa21,
    CellKind::Aoi21,
    CellKind::Oai21,
    CellKind::Maj3,
    CellKind::And3,
    CellKind::Or3,
    CellKind::Xor3,
];

impl CellKind {
    /// Number of input pins.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0,
            CellKind::Buf | CellKind::Inv => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Mux2
            | CellKind::Ao21
            | CellKind::Oa21
            | CellKind::Aoi21
            | CellKind::Oai21
            | CellKind::Maj3
            | CellKind::And3
            | CellKind::Or3
            | CellKind::Xor3 => 3,
        }
    }

    /// Evaluates the cell function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Self::arity`].
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "{self} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        match self {
            CellKind::Const0 => false,
            CellKind::Const1 => true,
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellKind::Ao21 => (inputs[0] & inputs[1]) | inputs[2],
            CellKind::Oa21 => (inputs[0] | inputs[1]) & inputs[2],
            CellKind::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellKind::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellKind::Maj3 => {
                (inputs[0] & inputs[1]) | (inputs[0] & inputs[2]) | (inputs[1] & inputs[2])
            }
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Xor3 => inputs[0] ^ inputs[1] ^ inputs[2],
        }
    }

    /// Evaluates the cell function over 64 independent lanes at once: bit
    /// `l` of every input word is lane `l`'s value, and bit `l` of the
    /// result is lane `l`'s output — the bit-sliced
    /// (SIMD-within-a-register) form of [`Self::eval`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Self::arity`].
    #[must_use]
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "{self} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        match self {
            CellKind::Const0 => 0,
            CellKind::Const1 => u64::MAX,
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => (inputs[1] & inputs[2]) | (inputs[0] & !inputs[2]),
            CellKind::Ao21 => (inputs[0] & inputs[1]) | inputs[2],
            CellKind::Oa21 => (inputs[0] | inputs[1]) & inputs[2],
            CellKind::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellKind::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellKind::Maj3 => {
                (inputs[0] & inputs[1]) | (inputs[0] & inputs[2]) | (inputs[1] & inputs[2])
            }
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Xor3 => inputs[0] ^ inputs[1] ^ inputs[2],
        }
    }

    /// Library cell name (as emitted into SDF files).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Const0 => "TIELO",
            CellKind::Const1 => "TIEHI",
            CellKind::Buf => "BUF",
            CellKind::Inv => "INV",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Ao21 => "AO21",
            CellKind::Oa21 => "OA21",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Maj3 => "MAJ3",
            CellKind::And3 => "AND3",
            CellKind::Or3 => "OR3",
            CellKind::Xor3 => "XOR3",
        }
    }

    /// Parses a library cell name as written by [`Self::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_CELL_KINDS.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Timing, area and energy characterization of one cell kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Intrinsic propagation delay in picoseconds (any input to output, at
    /// fanout 1).
    pub intrinsic_ps: f64,
    /// Additional delay per extra fanout load, in picoseconds.
    pub load_ps: f64,
    /// Cell area in equivalent NAND2 units.
    pub area: f64,
    /// Dynamic energy per output transition, in femtojoules (65 nm-class
    /// magnitudes; used by the activity-based energy model).
    pub energy_fj: f64,
}

/// A characterized standard-cell library.
///
/// # Examples
///
/// ```
/// use isa_netlist::cell::{CellKind, CellLibrary};
///
/// let lib = CellLibrary::industrial_65nm();
/// // An XOR is slower than a NAND in any sane library.
/// assert!(lib.timing(CellKind::Xor2).intrinsic_ps > lib.timing(CellKind::Nand2).intrinsic_ps);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    name: String,
    timings: Vec<CellTiming>,
}

impl CellLibrary {
    /// The synthetic 65 nm-class general-purpose library used throughout the
    /// reproduction.
    ///
    /// Delay ratios follow typical 65 nm GP characterization: FO1 inverter
    /// around 12 ps, NAND2 ~16 ps, XOR2 ~2.2x a NAND2, MUX2 ~1.7x, complex
    /// AOI/OAI slightly above NAND2. Load slope is a few ps per fanout.
    #[must_use]
    pub fn industrial_65nm() -> Self {
        let mut timings = vec![
            CellTiming {
                intrinsic_ps: 0.0,
                load_ps: 0.0,
                area: 0.0,
                energy_fj: 0.0,
            };
            ALL_CELL_KINDS.len()
        ];
        let mut set =
            |kind: CellKind, intrinsic_ps: f64, load_ps: f64, area: f64, energy_fj: f64| {
                timings[kind as usize] = CellTiming {
                    intrinsic_ps,
                    load_ps,
                    area,
                    energy_fj,
                };
            };
        set(CellKind::Const0, 0.0, 0.0, 0.5, 0.0);
        set(CellKind::Const1, 0.0, 0.0, 0.5, 0.0);
        set(CellKind::Buf, 14.0, 2.0, 1.0, 1.0);
        set(CellKind::Inv, 9.0, 2.5, 0.5, 0.6);
        set(CellKind::And2, 20.0, 2.5, 1.5, 1.4);
        set(CellKind::Or2, 21.0, 2.5, 1.5, 1.4);
        set(CellKind::Nand2, 13.0, 3.0, 1.0, 1.0);
        set(CellKind::Nor2, 15.0, 3.5, 1.0, 1.0);
        set(CellKind::Xor2, 29.0, 3.0, 2.5, 2.6);
        set(CellKind::Xnor2, 29.0, 3.0, 2.5, 2.6);
        set(CellKind::Mux2, 24.0, 3.0, 2.5, 2.2);
        set(CellKind::Ao21, 24.0, 3.0, 2.0, 1.8);
        set(CellKind::Oa21, 24.0, 3.0, 2.0, 1.8);
        set(CellKind::Aoi21, 17.0, 3.5, 1.5, 1.3);
        set(CellKind::Oai21, 17.0, 3.5, 1.5, 1.3);
        set(CellKind::Maj3, 27.0, 3.0, 3.0, 2.8);
        set(CellKind::And3, 25.0, 2.5, 2.0, 1.8);
        set(CellKind::Or3, 26.0, 2.5, 2.0, 1.8);
        set(CellKind::Xor3, 46.0, 3.5, 4.5, 4.4);
        Self {
            name: "synthetic-65nm-gp".to_owned(),
            timings,
        }
    }

    /// Library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Timing record of a cell kind.
    #[must_use]
    pub fn timing(&self, kind: CellKind) -> CellTiming {
        self.timings[kind as usize]
    }

    /// Nominal propagation delay of a cell driving `fanout` loads, in ps.
    ///
    /// A fanout of 0 (dangling) is charged like a fanout of 1.
    #[must_use]
    pub fn delay_ps(&self, kind: CellKind, fanout: usize) -> f64 {
        let t = self.timing(kind);
        t.intrinsic_ps + t.load_ps * fanout.max(1).saturating_sub(1) as f64
    }

    /// Area of a cell kind in NAND2-equivalent units.
    #[must_use]
    pub fn area(&self, kind: CellKind) -> f64 {
        self.timing(kind).area
    }

    /// Dynamic energy per output transition of a cell kind, in fJ.
    #[must_use]
    pub fn energy_fj(&self, kind: CellKind) -> f64 {
        self.timing(kind).energy_fj
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::industrial_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        for kind in ALL_CELL_KINDS {
            let inputs = vec![false; kind.arity()];
            let _ = kind.eval(&inputs); // must not panic
        }
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn eval_rejects_wrong_arity() {
        let _ = CellKind::And2.eval(&[true]);
    }

    #[test]
    fn eval_word_matches_eval_in_every_lane() {
        // Exhaustive: every cell kind, every input combination, packed into
        // distinct lanes of one word evaluation.
        for kind in ALL_CELL_KINDS {
            let arity = kind.arity();
            let combos = 1usize << arity;
            let mut words = vec![0u64; arity];
            for lane in 0..combos {
                for (pin, word) in words.iter_mut().enumerate() {
                    if lane >> pin & 1 == 1 {
                        *word |= 1 << lane;
                    }
                }
            }
            let out = kind.eval_word(&words);
            for lane in 0..combos {
                let pins: Vec<bool> = (0..arity).map(|p| lane >> p & 1 == 1).collect();
                assert_eq!(out >> lane & 1 == 1, kind.eval(&pins), "{kind} lane {lane}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "expects 3 inputs")]
    fn eval_word_rejects_wrong_arity() {
        let _ = CellKind::Mux2.eval_word(&[0, 1]);
    }

    #[test]
    fn truth_tables_two_input() {
        use CellKind::*;
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (a, b) in cases {
            assert_eq!(And2.eval(&[a, b]), a & b);
            assert_eq!(Or2.eval(&[a, b]), a | b);
            assert_eq!(Nand2.eval(&[a, b]), !(a & b));
            assert_eq!(Nor2.eval(&[a, b]), !(a | b));
            assert_eq!(Xor2.eval(&[a, b]), a ^ b);
            assert_eq!(Xnor2.eval(&[a, b]), !(a ^ b));
        }
    }

    #[test]
    fn truth_tables_three_input() {
        use CellKind::*;
        for i in 0..8u8 {
            let a = i & 1 != 0;
            let b = i & 2 != 0;
            let c = i & 4 != 0;
            assert_eq!(Mux2.eval(&[a, b, c]), if c { b } else { a });
            assert_eq!(Ao21.eval(&[a, b, c]), (a & b) | c);
            assert_eq!(Oa21.eval(&[a, b, c]), (a | b) & c);
            assert_eq!(Aoi21.eval(&[a, b, c]), !((a & b) | c));
            assert_eq!(Oai21.eval(&[a, b, c]), !((a | b) & c));
            assert_eq!(Maj3.eval(&[a, b, c]), (a & b) | (a & c) | (b & c));
            assert_eq!(And3.eval(&[a, b, c]), a & b & c);
            assert_eq!(Or3.eval(&[a, b, c]), a | b | c);
            assert_eq!(Xor3.eval(&[a, b, c]), a ^ b ^ c);
        }
    }

    #[test]
    fn constants_have_no_inputs() {
        assert!(!CellKind::Const0.eval(&[]));
        assert!(CellKind::Const1.eval(&[]));
    }

    #[test]
    fn names_roundtrip() {
        for kind in ALL_CELL_KINDS {
            assert_eq!(CellKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(CellKind::from_name("FLUXCAP"), None);
    }

    #[test]
    fn library_covers_all_kinds_with_positive_delay() {
        let lib = CellLibrary::industrial_65nm();
        for kind in ALL_CELL_KINDS {
            if matches!(kind, CellKind::Const0 | CellKind::Const1) {
                continue;
            }
            assert!(lib.timing(kind).intrinsic_ps > 0.0, "{kind} has no delay");
            assert!(lib.timing(kind).area > 0.0, "{kind} has no area");
            assert!(lib.energy_fj(kind) > 0.0, "{kind} has no switching energy");
        }
    }

    #[test]
    fn bigger_cells_burn_more_energy() {
        let lib = CellLibrary::industrial_65nm();
        assert!(lib.energy_fj(CellKind::Xor3) > lib.energy_fj(CellKind::Xor2));
        assert!(lib.energy_fj(CellKind::Xor2) > lib.energy_fj(CellKind::Inv));
        assert_eq!(lib.energy_fj(CellKind::Const0), 0.0);
    }

    #[test]
    fn fanout_increases_delay() {
        let lib = CellLibrary::industrial_65nm();
        let d1 = lib.delay_ps(CellKind::Nand2, 1);
        let d4 = lib.delay_ps(CellKind::Nand2, 4);
        assert!(d4 > d1);
        assert_eq!(lib.delay_ps(CellKind::Nand2, 0), d1);
    }

    #[test]
    fn relative_delay_ordering_is_sane() {
        let lib = CellLibrary::industrial_65nm();
        assert!(lib.timing(CellKind::Inv).intrinsic_ps < lib.timing(CellKind::Nand2).intrinsic_ps);
        assert!(lib.timing(CellKind::Nand2).intrinsic_ps < lib.timing(CellKind::And2).intrinsic_ps);
        assert!(lib.timing(CellKind::And2).intrinsic_ps < lib.timing(CellKind::Xor2).intrinsic_ps);
        assert!(lib.timing(CellKind::Xor3).intrinsic_ps > lib.timing(CellKind::Xor2).intrinsic_ps);
    }
}
