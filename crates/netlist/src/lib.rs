//! # isa-netlist
//!
//! The synthesis substrate for the DATE 2017 reproduction: a gate-level
//! netlist IR over a synthetic 65 nm-class standard-cell library, classic
//! adder topology generators, the Inexact Speculative Adder assembly,
//! static timing analysis, SDF-style delay annotation with process
//! variation, and a cost-driven mini-synthesis that picks the smallest
//! architecture meeting a clock constraint (with bounded area-recovery
//! derating), standing in for the paper's Synopsys Design Compiler flow.
//!
//! # Example
//!
//! ```
//! use isa_netlist::cell::CellLibrary;
//! use isa_netlist::synth::{synthesize_exact, SynthesisOptions};
//!
//! # fn main() -> Result<(), isa_netlist::synth::SynthesisError> {
//! let lib = CellLibrary::industrial_65nm();
//! // The paper's constraint: 3.3 GHz in 65 nm = 0.3 ns.
//! let synth = synthesize_exact(32, 300.0, &lib, &SynthesisOptions::paper())?;
//! assert!(synth.critical_ps <= 300.0);
//! assert_eq!(synth.adder.add(1, 2), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod cell;
pub mod classify;
pub mod graph;
pub mod sdf;
pub mod sta;
pub mod synth;
pub mod tape;
pub mod timing;
pub mod transform;
pub mod verilog;

pub use builders::{build_exact, AdderNetlist, AdderTopology, CANDIDATE_TOPOLOGIES};
pub use cell::{CellKind, CellLibrary, CellTiming};
pub use classify::{LaneClassifier, StreamClassifier};
pub use graph::{Cell, CellId, NetDriver, NetId, Netlist, NetlistBuilder, NetlistError};
pub use sta::StaReport;
pub use synth::{synthesize_exact, synthesize_isa, SynthesisError, SynthesisOptions, Synthesized};
pub use tape::{InstructionTape, Plane, CHUNK};
pub use timing::{DelayAnnotation, VariationModel};
