//! Static timing analysis.
//!
//! Computes worst-case arrival times over the netlist DAG (topological
//! single pass), the critical path, and per-output arrivals. This is what
//! the paper's synthesis constraint ("fitting the 0.3 ns timing
//! constraints") is checked against, and what defines the safe clock period
//! that overclocking reduces.

use crate::graph::{CellId, NetDriver, NetId, Netlist};
use crate::timing::DelayAnnotation;

/// Result of a static timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    arrival_ps: Vec<f64>,
    critical_ps: f64,
    critical_net: Option<NetId>,
}

impl StaReport {
    /// Runs STA over a netlist with the given per-instance delays.
    ///
    /// Primary inputs arrive at t = 0; every cell adds its annotated delay.
    ///
    /// # Panics
    ///
    /// Panics if the annotation does not cover every cell.
    #[must_use]
    pub fn analyze(netlist: &Netlist, delays: &DelayAnnotation) -> Self {
        assert_eq!(
            delays.len(),
            netlist.cell_count(),
            "annotation covers {} cells, netlist has {}",
            delays.len(),
            netlist.cell_count()
        );
        let mut arrival_ps = vec![0.0f64; netlist.net_count()];
        for cell_index in 0..netlist.cell_count() {
            let id = CellId::from_index(cell_index);
            let cell = netlist.cell(id);
            let input_arrival = cell
                .inputs
                .iter()
                .map(|n| arrival_ps[n.index()])
                .fold(0.0f64, f64::max);
            arrival_ps[cell.output.index()] = input_arrival + delays.delay_ps(id);
        }
        let (critical_ps, critical_net) = netlist
            .outputs()
            .iter()
            .map(|&n| (arrival_ps[n.index()], n))
            .fold((0.0f64, None), |(best, net), (t, n)| {
                if t > best {
                    (t, Some(n))
                } else {
                    (best, net)
                }
            });
        Self {
            arrival_ps,
            critical_ps,
            critical_net,
        }
    }

    /// Worst arrival time over all primary outputs (the design's critical
    /// delay), in picoseconds.
    #[must_use]
    pub fn critical_ps(&self) -> f64 {
        self.critical_ps
    }

    /// The primary output net with the worst arrival, if any cell delay is
    /// non-trivial.
    #[must_use]
    pub fn critical_net(&self) -> Option<NetId> {
        self.critical_net
    }

    /// Arrival time of one net.
    #[must_use]
    pub fn arrival_ps(&self, net: NetId) -> f64 {
        self.arrival_ps[net.index()]
    }

    /// Arrival time of each primary output, in declaration order.
    #[must_use]
    pub fn output_arrivals_ps(&self, netlist: &Netlist) -> Vec<f64> {
        netlist
            .outputs()
            .iter()
            .map(|n| self.arrival_ps[n.index()])
            .collect()
    }

    /// Worst-case *downstream* delay of every net: the longest path (sum of
    /// cell delays) from the net to any primary output, indexed by net.
    ///
    /// This is the dual of the arrival times — `arrival + downstream` along
    /// a net is the worst full path through it. It doubles as a sound bound
    /// on how long after a net changes the circuit can still be switching
    /// because of that change (every event chain follows a topological
    /// path), which is what the lane classifier's per-pin exposure and the
    /// area-recovery derating both consume.
    #[must_use]
    pub fn downstream_ps(netlist: &Netlist, delays: &DelayAnnotation) -> Vec<f64> {
        assert_eq!(
            delays.len(),
            netlist.cell_count(),
            "annotation covers {} cells, netlist has {}",
            delays.len(),
            netlist.cell_count()
        );
        let mut downstream = vec![0.0f64; netlist.net_count()];
        for index in (0..netlist.cell_count()).rev() {
            let id = CellId::from_index(index);
            let cell = netlist.cell(id);
            let through = delays.delay_ps(id) + downstream[cell.output.index()];
            for input in &cell.inputs {
                if through > downstream[input.index()] {
                    downstream[input.index()] = through;
                }
            }
        }
        downstream
    }

    /// Slack of the design against a clock period (positive = meets timing).
    #[must_use]
    pub fn slack_ps(&self, period_ps: f64) -> f64 {
        period_ps - self.critical_ps
    }

    /// True if every output settles within the period.
    #[must_use]
    pub fn meets(&self, period_ps: f64) -> bool {
        self.critical_ps <= period_ps
    }

    /// Extracts the critical path as a chain of cells from (near) a primary
    /// input to the critical output. Empty if the design has no cells on the
    /// critical output's cone.
    #[must_use]
    pub fn critical_path(&self, netlist: &Netlist, delays: &DelayAnnotation) -> Vec<CellId> {
        let mut path = Vec::new();
        let mut net = match self.critical_net {
            Some(n) => n,
            None => return path,
        };
        loop {
            match netlist.driver(net) {
                NetDriver::Input => break,
                NetDriver::Cell(id) => {
                    path.push(id);
                    let cell = netlist.cell(id);
                    // The input that determined this cell's arrival.
                    let expected = self.arrival_ps[net.index()] - delays.delay_ps(id);
                    let Some(&worst) = cell.inputs.iter().max_by(|a, b| {
                        self.arrival_ps[a.index()].total_cmp(&self.arrival_ps[b.index()])
                    }) else {
                        break; // constant cell: path starts here
                    };
                    debug_assert!(
                        (self.arrival_ps[worst.index()] - expected).abs() < 1e-6,
                        "arrival bookkeeping mismatch"
                    );
                    net = worst;
                }
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::graph::NetlistBuilder;
    use crate::timing::DelayAnnotation;

    /// A two-level netlist with a known longest path.
    fn chain() -> (Netlist, DelayAnnotation) {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let x = b.input("b");
        let n1 = b.and2(a, x); // cell 0
        let n2 = b.xor2(n1, x); // cell 1
        let n3 = b.inv(a); // cell 2 (short branch)
        let y = b.or2(n2, n3); // cell 3
        b.mark_output(y, "y");
        let nl = b.finish().unwrap();
        let delays = DelayAnnotation::from_delays(vec![10.0, 20.0, 5.0, 7.0]);
        (nl, delays)
    }

    #[test]
    fn arrival_is_longest_path() {
        let (nl, d) = chain();
        let sta = StaReport::analyze(&nl, &d);
        // Long branch: 10 + 20 + 7 = 37; short branch: 5 + 7 = 12.
        assert_eq!(sta.critical_ps(), 37.0);
        assert!(sta.meets(37.0));
        assert!(!sta.meets(36.9));
        assert_eq!(sta.slack_ps(40.0), 3.0);
    }

    #[test]
    fn critical_path_walks_the_long_branch() {
        let (nl, d) = chain();
        let sta = StaReport::analyze(&nl, &d);
        let path = sta.critical_path(&nl, &d);
        let kinds: Vec<_> = path.iter().map(|&c| nl.cell(c).kind).collect();
        use crate::cell::CellKind::*;
        assert_eq!(kinds, vec![And2, Xor2, Or2]);
    }

    #[test]
    fn zero_delay_netlist_has_zero_critical() {
        let mut b = NetlistBuilder::new("wire");
        let a = b.input("a");
        b.mark_output(a, "y");
        let nl = b.finish().unwrap();
        let sta = StaReport::analyze(&nl, &DelayAnnotation::from_delays(vec![]));
        assert_eq!(sta.critical_ps(), 0.0);
        assert!(sta.critical_net().is_none());
        assert!(sta
            .critical_path(&nl, &DelayAnnotation::from_delays(vec![]))
            .is_empty());
    }

    #[test]
    fn output_arrivals_in_declaration_order() {
        let mut b = NetlistBuilder::new("two");
        let a = b.input("a");
        let slow = b.xor2(a, a);
        let fast = b.inv(a);
        b.mark_output(slow, "slow");
        b.mark_output(fast, "fast");
        let nl = b.finish().unwrap();
        let lib = CellLibrary::industrial_65nm();
        let d = DelayAnnotation::nominal(&nl, &lib);
        let sta = StaReport::analyze(&nl, &d);
        let arr = sta.output_arrivals_ps(&nl);
        assert_eq!(arr.len(), 2);
        assert!(arr[0] > arr[1], "XOR2 output must arrive after INV");
    }

    #[test]
    fn deeper_logic_has_larger_critical_delay() {
        let lib = CellLibrary::industrial_65nm();
        let mut shallow = NetlistBuilder::new("shallow");
        let a = shallow.input("a");
        let y = shallow.inv(a);
        shallow.mark_output(y, "y");
        let shallow = shallow.finish().unwrap();

        let mut deep = NetlistBuilder::new("deep");
        let a = deep.input("a");
        let mut n = deep.inv(a);
        for _ in 0..9 {
            n = deep.inv(n);
        }
        deep.mark_output(n, "y");
        let deep = deep.finish().unwrap();

        let s1 = StaReport::analyze(&shallow, &DelayAnnotation::nominal(&shallow, &lib));
        let s2 = StaReport::analyze(&deep, &DelayAnnotation::nominal(&deep, &lib));
        assert!(s2.critical_ps() > 5.0 * s1.critical_ps());
    }

    #[test]
    #[should_panic(expected = "annotation covers")]
    fn mismatched_annotation_panics() {
        let (nl, _) = chain();
        let bad = DelayAnnotation::from_delays(vec![1.0]);
        let _ = StaReport::analyze(&nl, &bad);
    }
}
