//! Levelized instruction-tape compiler for the word-parallel hot path.
//!
//! [`Netlist::evaluate_words`] interprets the graph cell-by-cell on every
//! plane pass: each cell gathers its pins through a per-cell `Vec<NetId>`,
//! dispatches on [`CellKind`] and writes one net — per evaluation, per cell.
//! This module compiles a netlist **once** into an [`InstructionTape`]: a
//! flat, topologically scheduled op list over a dense plane arena indexed by
//! net position. Execution is a straight-line sweep with
//!
//! - **no graph chasing** — operands are `u32` arena slots baked into
//!   fixed-width [`TapeOp`]s, not heap-allocated pin vectors;
//! - **no per-cell dispatch** — ops are reordered *kind-major within each
//!   level* (cells on one level are mutually independent, so this preserves
//!   the schedule) into [`OpRun`]s, hoisting the `CellKind` match out of the
//!   inner loop;
//! - **no per-eval allocation** — callers pass reusable arena buffers.
//!
//! The datapath is generic over [`Plane`]: a `u64` carries the classic 64
//! simulation lanes, while `[u64; 4]` / `[u64; 8]` chunks evaluate 4 or 8
//! independent plane sets per sweep and compile to 256/512-bit vector
//! operations. [`CHUNK`] is the build-wide default width (4, or 8 with the
//! `wide-tape` feature).
//!
//! The schedule normally comes from `isa-netlint`'s replay-verified
//! `Levelization` via [`InstructionTape::compile_from_levels`]; netlint's
//! `tape.replay` lint rule then re-proves the compiled tape bit-identical to
//! [`Netlist::evaluate_words`] on every `DesignContext` build.
//!
//! # Example
//!
//! Compile a ripple-carry adder and run one 64-lane addition batch through
//! the tape:
//!
//! ```
//! use isa_core::LaneBatch;
//! use isa_netlist::{build_exact, AdderTopology, InstructionTape};
//!
//! let adder = build_exact(8, AdderTopology::Ripple);
//! let tape = InstructionTape::compile(adder.netlist());
//!
//! // Lane 0 computes 11 + 7; the other 63 lanes are idle (0 + 0).
//! let inputs = adder.input_planes(&LaneBatch::pack(8, &[(11, 7)]));
//! let mut arena = Vec::new();
//! tape.execute_into(&inputs, &mut arena);
//!
//! let mut sum_planes = Vec::new();
//! tape.read_outputs_into(&arena, &mut sum_planes);
//! assert_eq!(LaneBatch::unpack_lanes(&sum_planes, 1), vec![18]);
//!
//! // The arena is net-indexed: it holds every net's settled plane, exactly
//! // like `Netlist::evaluate_words`.
//! assert_eq!(arena, adder.netlist().evaluate_words(&inputs));
//! ```

use crate::cell::CellKind;
use crate::graph::{CellId, Netlist};

/// Default chunk width: how many independent 64-lane plane sets one tape
/// sweep evaluates. 4 chunks auto-vectorize to 256-bit ops on AVX2-class
/// hardware; the `wide-tape` feature widens to 8 (512-bit).
pub const CHUNK: usize = if cfg!(feature = "wide-tape") { 8 } else { 4 };

/// A word-parallel value plane the tape can evaluate: one or more 64-lane
/// bit planes combined in lockstep with bitwise ops.
///
/// Implemented for `u64` (the scalar plane [`Netlist::evaluate_words`]
/// uses) and for `[u64; C]` chunks of any width.
pub trait Plane: Copy {
    /// All lanes 0.
    const ZERO: Self;
    /// All lanes 1.
    const ONES: Self;
    /// Lane-wise AND.
    #[must_use]
    fn and(self, rhs: Self) -> Self;
    /// Lane-wise OR.
    #[must_use]
    fn or(self, rhs: Self) -> Self;
    /// Lane-wise XOR.
    #[must_use]
    fn xor(self, rhs: Self) -> Self;
    /// Lane-wise NOT.
    #[must_use]
    fn not(self) -> Self;
}

impl Plane for u64 {
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;
    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        self & rhs
    }
    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        self | rhs
    }
    #[inline(always)]
    fn xor(self, rhs: Self) -> Self {
        self ^ rhs
    }
    #[inline(always)]
    fn not(self) -> Self {
        !self
    }
}

impl<const C: usize> Plane for [u64; C] {
    const ZERO: Self = [0; C];
    const ONES: Self = [u64::MAX; C];
    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        let mut out = self;
        for (o, r) in out.iter_mut().zip(rhs) {
            *o &= r;
        }
        out
    }
    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        let mut out = self;
        for (o, r) in out.iter_mut().zip(rhs) {
            *o |= r;
        }
        out
    }
    #[inline(always)]
    fn xor(self, rhs: Self) -> Self {
        let mut out = self;
        for (o, r) in out.iter_mut().zip(rhs) {
            *o ^= r;
        }
        out
    }
    #[inline(always)]
    fn not(self) -> Self {
        let mut out = self;
        for o in &mut out {
            *o = !*o;
        }
        out
    }
}

/// One compiled cell: up to three operand arena slots and one output slot.
///
/// Unused operand fields (for arity-0/1/2 cells) alias a defined slot so
/// every field is always a valid arena index. Arena slots equal net indices
/// ([`crate::graph::NetId::index`]); the arena after execution *is* the
/// dense net-value table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeOp {
    /// First operand slot (`inputs[0]`).
    pub a: u32,
    /// Second operand slot (`inputs[1]`; aliases `a` below arity 2).
    pub b: u32,
    /// Third operand slot (`inputs[2]`; aliases `a` below arity 3).
    pub c: u32,
    /// Output slot (the cell's output net index).
    pub out: u32,
}

/// A maximal run of consecutive [`TapeOp`]s sharing one [`CellKind`].
///
/// Cells within a level are mutually independent, so the compiler sorts
/// each level kind-major and merges adjacent same-kind stretches; the
/// executor dispatches on `kind` once per run instead of once per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRun {
    /// The cell function every op in the run computes.
    pub kind: CellKind,
    /// Index of the run's first op in the tape.
    pub start: u32,
    /// Number of ops in the run.
    pub len: u32,
}

/// A netlist compiled to a flat, levelized instruction tape.
///
/// See the [module docs](self) for the compilation model and an example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionTape {
    ops: Vec<TapeOp>,
    runs: Vec<OpRun>,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    slots: usize,
}

impl InstructionTape {
    /// Compiles a netlist, deriving the level schedule from creation order.
    ///
    /// Builder-produced netlists are topological by construction (each
    /// cell's pins reference already-created nets), so a single sweep
    /// assigns `level(cell) = 1 + max(level of input producers)`. Prefer
    /// [`InstructionTape::compile_from_levels`] with a replay-verified
    /// `isa-netlint` levelization when one is available.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not in topological creation order (a cell
    /// reading a net defined later), as produced by e.g. a corrupted
    /// [`Netlist::from_raw_parts`] round-trip.
    #[must_use]
    pub fn compile(netlist: &Netlist) -> Self {
        // level stored +1 so 0 can mean "not yet produced" for the
        // def-before-use check; primary inputs sit at level 1.
        let mut net_level = vec![0u32; netlist.net_count()];
        for &input in netlist.inputs() {
            net_level[input.index()] = 1;
        }
        let mut level_of = vec![0u32; netlist.cell_count()];
        let mut depth = 0u32;
        for (index, cell) in netlist.cells().iter().enumerate() {
            let mut level = 1;
            for pin in &cell.inputs {
                let produced = net_level[pin.index()];
                assert!(
                    produced > 0,
                    "netlist is not topological: cell {index} reads undriven-so-far net {}",
                    pin.index()
                );
                level = level.max(produced);
            }
            level_of[index] = level;
            net_level[cell.output.index()] = level + 1;
            depth = depth.max(level);
        }
        let mut levels = vec![Vec::new(); depth as usize];
        for (index, &level) in level_of.iter().enumerate() {
            levels[level as usize - 1].push(CellId::from_index(index));
        }
        Self::compile_from_levels(netlist, levels.iter().map(Vec::as_slice))
    }

    /// Compiles a netlist from an explicit level schedule (e.g.
    /// `isa-netlint`'s `Levelization::levels`).
    ///
    /// Each level's cells are reordered kind-major (legal: cells on one
    /// level never feed each other) and adjacent same-kind stretches are
    /// merged into [`OpRun`]s.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is not a permutation of the netlist's cells
    /// or violates def-before-use (a cell reading a net whose producer is
    /// scheduled later).
    #[must_use]
    pub fn compile_from_levels<'a, I>(netlist: &Netlist, levels: I) -> Self
    where
        I: IntoIterator<Item = &'a [CellId]>,
    {
        let slots = netlist.net_count();
        let mut defined = vec![false; slots];
        for &input in netlist.inputs() {
            defined[input.index()] = true;
        }
        let mut ops = Vec::with_capacity(netlist.cell_count());
        let mut runs: Vec<OpRun> = Vec::new();
        let mut scheduled = vec![false; netlist.cell_count()];
        let mut level_buf: Vec<CellId> = Vec::new();
        for level in levels {
            level_buf.clear();
            level_buf.extend_from_slice(level);
            // Stable kind-major sort: dispatch batches, original order kept
            // within a kind.
            level_buf.sort_by_key(|&id| netlist.cell(id).kind);
            for &id in &level_buf {
                assert!(
                    !scheduled[id.index()],
                    "level schedule repeats cell {}",
                    id.index()
                );
                scheduled[id.index()] = true;
                let cell = netlist.cell(id);
                let out = cell.output.index() as u32;
                let mut pins = [out; 3];
                for (slot, pin) in pins.iter_mut().zip(&cell.inputs) {
                    assert!(
                        defined[pin.index()],
                        "level schedule violates def-before-use at cell {}",
                        id.index()
                    );
                    *slot = pin.index() as u32;
                }
                // Unused operands alias the first one: always in-range.
                let alias = pins[0];
                for slot in pins.iter_mut().skip(cell.inputs.len().max(1)) {
                    *slot = alias;
                }
                let op = TapeOp {
                    a: pins[0],
                    b: pins[1],
                    c: pins[2],
                    out,
                };
                match runs.last_mut() {
                    Some(run) if run.kind == cell.kind => run.len += 1,
                    _ => runs.push(OpRun {
                        kind: cell.kind,
                        start: ops.len() as u32,
                        len: 1,
                    }),
                }
                ops.push(op);
            }
            for &id in &level_buf {
                defined[netlist.cell(id).output.index()] = true;
            }
        }
        assert!(
            scheduled.iter().all(|&s| s),
            "level schedule misses {} cell(s)",
            scheduled.iter().filter(|&&s| !s).count()
        );
        Self {
            ops,
            runs,
            inputs: netlist.inputs().iter().map(|n| n.index() as u32).collect(),
            outputs: netlist.outputs().iter().map(|n| n.index() as u32).collect(),
            slots,
        }
    }

    /// Number of ops (equals the netlist's cell count).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The scheduled ops in execution order — for consumers that build
    /// derived programs over the same schedule (e.g. the timed replay
    /// core in `isa-timing-sim`).
    #[must_use]
    pub fn ops(&self) -> &[TapeOp] {
        &self.ops
    }

    /// The kind-major dispatch runs covering [`Self::ops`] in order.
    #[must_use]
    pub fn runs(&self) -> &[OpRun] {
        &self.runs
    }

    /// Number of kind-major dispatch runs.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Arena size in plane slots (equals the netlist's net count).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Arena slots of the primary inputs, in declaration order.
    #[must_use]
    pub fn input_slots(&self) -> &[u32] {
        &self.inputs
    }

    /// Arena slots of the primary outputs, in declaration order.
    #[must_use]
    pub fn output_slots(&self) -> &[u32] {
        &self.outputs
    }

    /// Evaluates the tape: scatters `input_planes` (one [`Plane`] per
    /// primary input, declaration order) into a zeroed arena, then sweeps
    /// the op runs in schedule order.
    ///
    /// On return `arena[i]` holds net `i`'s settled plane — for `P = u64`
    /// the arena is element-for-element identical to
    /// [`Netlist::evaluate_words`]. The arena vector is recycled across
    /// calls without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `input_planes.len()` differs from the input count.
    pub fn execute_into<P: Plane>(&self, input_planes: &[P], arena: &mut Vec<P>) {
        assert_eq!(
            input_planes.len(),
            self.inputs.len(),
            "tape expects {} input planes, got {}",
            self.inputs.len(),
            input_planes.len()
        );
        arena.clear();
        arena.resize(self.slots, P::ZERO);
        for (&slot, &plane) in self.inputs.iter().zip(input_planes) {
            arena[slot as usize] = plane;
        }
        self.sweep(arena);
    }

    /// Gathers the primary-output planes from an executed arena.
    pub fn read_outputs_into<P: Plane>(&self, arena: &[P], planes: &mut Vec<P>) {
        planes.clear();
        planes.extend(self.outputs.iter().map(|&slot| arena[slot as usize]));
    }

    /// The straight-line op loop: one `CellKind` dispatch per run, one
    /// load/combine/store per op. Generic over the plane type so the same
    /// body serves the scalar `u64` path and the `[u64; C]` chunked path
    /// (where each bitwise op vectorizes over the chunk).
    fn sweep<P: Plane>(&self, arena: &mut [P]) {
        use CellKind as K;

        // Two/three-operand helpers keep each match arm a tight loop the
        // compiler can unroll and vectorize.
        #[inline(always)]
        fn unary<P: Plane>(arena: &mut [P], ops: &[TapeOp], f: impl Fn(P) -> P) {
            for op in ops {
                arena[op.out as usize] = f(arena[op.a as usize]);
            }
        }
        #[inline(always)]
        fn binary<P: Plane>(arena: &mut [P], ops: &[TapeOp], f: impl Fn(P, P) -> P) {
            for op in ops {
                arena[op.out as usize] = f(arena[op.a as usize], arena[op.b as usize]);
            }
        }
        #[inline(always)]
        fn ternary<P: Plane>(arena: &mut [P], ops: &[TapeOp], f: impl Fn(P, P, P) -> P) {
            for op in ops {
                arena[op.out as usize] = f(
                    arena[op.a as usize],
                    arena[op.b as usize],
                    arena[op.c as usize],
                );
            }
        }

        for run in &self.runs {
            let ops = &self.ops[run.start as usize..(run.start + run.len) as usize];
            // Formulas mirror `CellKind::eval_word` exactly (proven by the
            // per-kind test below and netlint's tape.replay rule).
            match run.kind {
                K::Const0 => {
                    for op in ops {
                        arena[op.out as usize] = P::ZERO;
                    }
                }
                K::Const1 => {
                    for op in ops {
                        arena[op.out as usize] = P::ONES;
                    }
                }
                K::Buf => unary(arena, ops, |a| a),
                K::Inv => unary(arena, ops, Plane::not),
                K::And2 => binary(arena, ops, Plane::and),
                K::Or2 => binary(arena, ops, Plane::or),
                K::Nand2 => binary(arena, ops, |a, b| a.and(b).not()),
                K::Nor2 => binary(arena, ops, |a, b| a.or(b).not()),
                K::Xor2 => binary(arena, ops, Plane::xor),
                K::Xnor2 => binary(arena, ops, |a, b| a.xor(b).not()),
                K::Mux2 => ternary(arena, ops, |d0, d1, sel| d1.and(sel).or(d0.and(sel.not()))),
                K::Ao21 => ternary(arena, ops, |a, b, c| a.and(b).or(c)),
                K::Oa21 => ternary(arena, ops, |a, b, c| a.or(b).and(c)),
                K::Aoi21 => ternary(arena, ops, |a, b, c| a.and(b).or(c).not()),
                K::Oai21 => ternary(arena, ops, |a, b, c| a.or(b).and(c).not()),
                K::Maj3 => {
                    ternary(arena, ops, |a, b, c| a.and(b).or(a.and(c)).or(b.and(c)));
                }
                K::And3 => ternary(arena, ops, |a, b, c| a.and(b).and(c)),
                K::Or3 => ternary(arena, ops, |a, b, c| a.or(b).or(c)),
                K::Xor3 => ternary(arena, ops, |a, b, c| a.xor(b).xor(c)),
            }
        }
    }

    /// Decomposes the tape for inspection or fault injection
    /// (`(ops, runs, inputs, outputs, slots)`), mirroring
    /// [`Netlist::into_raw_parts`].
    #[must_use]
    pub fn into_raw_parts(self) -> (Vec<TapeOp>, Vec<OpRun>, Vec<u32>, Vec<u32>, usize) {
        (self.ops, self.runs, self.inputs, self.outputs, self.slots)
    }

    /// Reassembles a tape from raw parts **without semantic validation** —
    /// the fault-injection ingestion point for netlint's `tape.replay`
    /// rule, mirroring [`Netlist::from_raw_parts`].
    ///
    /// Only memory safety is enforced; a tape with scrambled operands
    /// executes without panicking and produces wrong planes, which the
    /// replay rule must catch.
    ///
    /// # Panics
    ///
    /// Panics if any op slot or run extent is out of range (those would
    /// make execution itself unsound, not merely wrong).
    #[must_use]
    pub fn from_raw_parts(
        ops: Vec<TapeOp>,
        runs: Vec<OpRun>,
        inputs: Vec<u32>,
        outputs: Vec<u32>,
        slots: usize,
    ) -> Self {
        for op in &ops {
            for slot in [op.a, op.b, op.c, op.out] {
                assert!((slot as usize) < slots, "tape op slot {slot} out of range");
            }
        }
        for run in &runs {
            assert!(
                (run.start as usize) + (run.len as usize) <= ops.len(),
                "tape run extent out of range"
            );
        }
        for &slot in inputs.iter().chain(&outputs) {
            assert!((slot as usize) < slots, "tape io slot {slot} out of range");
        }
        Self {
            ops,
            runs,
            inputs,
            outputs,
            slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build_exact, AdderTopology};
    use crate::cell::ALL_CELL_KINDS;
    use crate::graph::NetlistBuilder;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn every_kind_matches_eval_word() {
        // One single-cell netlist per kind: the tape formula must agree
        // with `CellKind::eval_word` on random planes.
        let mut seed = 0x7A50_0001u64;
        for kind in ALL_CELL_KINDS {
            let mut builder = NetlistBuilder::new(format!("tape_{kind}"));
            let pins: Vec<_> = (0..kind.arity())
                .map(|i| builder.input(format!("i{i}")))
                .collect();
            let y = builder.cell(kind, &pins);
            builder.mark_output(y, "y");
            let netlist = builder.finish().unwrap();
            let tape = InstructionTape::compile(&netlist);
            for _ in 0..8 {
                let words: Vec<u64> = (0..kind.arity()).map(|_| splitmix(&mut seed)).collect();
                let mut arena = Vec::new();
                tape.execute_into(&words, &mut arena);
                assert_eq!(
                    arena[y.index()],
                    kind.eval_word(&words),
                    "{kind} formula drifted from eval_word"
                );
            }
        }
    }

    #[test]
    fn tape_arena_matches_evaluate_words_on_adders() {
        let mut seed = 0x7A50_0002u64;
        for topology in [AdderTopology::Ripple, AdderTopology::KoggeStone] {
            let adder = build_exact(16, topology);
            let netlist = adder.netlist();
            let tape = InstructionTape::compile(netlist);
            assert_eq!(tape.op_count(), netlist.cell_count());
            assert_eq!(tape.slot_count(), netlist.net_count());
            if topology == AdderTopology::KoggeStone {
                // Prefix levels are wide and kind-uniform: dispatch runs
                // must batch many cells each.
                assert!(
                    tape.run_count() * 2 < tape.op_count(),
                    "kind-major merging should batch dispatches"
                );
            }
            for _ in 0..16 {
                let inputs: Vec<u64> = (0..32).map(|_| splitmix(&mut seed)).collect();
                let mut arena = Vec::new();
                tape.execute_into(&inputs, &mut arena);
                assert_eq!(arena, netlist.evaluate_words(&inputs));
            }
        }
    }

    #[test]
    fn chunked_execution_matches_scalar_planes() {
        let adder = build_exact(12, AdderTopology::Sklansky);
        let netlist = adder.netlist();
        let tape = InstructionTape::compile(netlist);
        let mut seed = 0x7A50_0003u64;
        // 4- and 8-wide chunks: element j of every chunk must equal an
        // independent scalar evaluation of plane set j.
        fn check<const C: usize>(tape: &InstructionTape, netlist: &Netlist, seed: &mut u64) {
            let scalar_sets: Vec<Vec<u64>> = (0..C)
                .map(|_| {
                    (0..netlist.inputs().len())
                        .map(|_| splitmix(seed))
                        .collect()
                })
                .collect();
            let chunks: Vec<[u64; C]> = (0..netlist.inputs().len())
                .map(|i| std::array::from_fn(|j| scalar_sets[j][i]))
                .collect();
            let mut arena = Vec::new();
            tape.execute_into(&chunks, &mut arena);
            for (j, set) in scalar_sets.iter().enumerate() {
                let expected = netlist.evaluate_words(set);
                for (slot, chunk) in arena.iter().enumerate() {
                    assert_eq!(chunk[j], expected[slot], "chunk width {C}, element {j}");
                }
            }
        }
        check::<4>(&tape, netlist, &mut seed);
        check::<8>(&tape, netlist, &mut seed);
    }

    #[test]
    fn raw_parts_round_trip() {
        let adder = build_exact(8, AdderTopology::Ripple);
        let tape = InstructionTape::compile(adder.netlist());
        let original = tape.clone();
        let (ops, runs, inputs, outputs, slots) = tape.into_raw_parts();
        let rebuilt = InstructionTape::from_raw_parts(ops, runs, inputs, outputs, slots);
        assert_eq!(rebuilt, original);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn raw_parts_reject_out_of_range_slots() {
        let adder = build_exact(8, AdderTopology::Ripple);
        let tape = InstructionTape::compile(adder.netlist());
        let (mut ops, runs, inputs, outputs, slots) = tape.into_raw_parts();
        ops[0].a = slots as u32;
        let _ = InstructionTape::from_raw_parts(ops, runs, inputs, outputs, slots);
    }
}
