//! Cost-driven mini-synthesis: topology selection under a timing constraint.
//!
//! Stands in for Synopsys Design Compiler's arithmetic synthesis: among the
//! candidate adder architectures it picks the **smallest** implementation
//! whose STA meets the clock-period constraint, then applies *area
//! recovery* — a bounded uniform delay derate that models the downsizing a
//! commercial tool performs on positive-slack designs (cells are swapped
//! for smaller, slower variants until slack is nearly zero or the minimum
//! size is reached). This is what makes every design "fit the 0.3 ns timing
//! constraint" tightly, as in the paper, while keeping each topology's
//! path-sensitization character.

use std::error::Error;
use std::fmt;

use isa_core::IsaConfig;

use crate::builders::{self, AdderNetlist, AdderTopology, CANDIDATE_TOPOLOGIES};
use crate::cell::CellLibrary;
use crate::sta::StaReport;
use crate::timing::DelayAnnotation;

/// Area-recovery behaviour after topology selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerateOptions {
    /// Fraction of the clock period the recovered arrival times aim at
    /// (e.g. 0.99 → 99 % of the constraint).
    pub target_fraction: f64,
    /// Maximum per-cell slow-down factor (minimum cell size / HVT-swap
    /// limit).
    pub max_factor: f64,
}

impl Default for DerateOptions {
    fn default() -> Self {
        Self {
            target_fraction: 0.99,
            max_factor: 1.60,
        }
    }
}

/// Synthesis options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SynthesisOptions {
    /// Slack-based area recovery; `None` keeps nominal (fastest) cell
    /// sizing, i.e. the design retains its natural slack.
    pub derate: Option<DerateOptions>,
}

impl SynthesisOptions {
    /// Area recovery enabled with default bounds — models a design
    /// *constrained at* the clock period, which commercial flows downsize
    /// until every endpoint sits at the slack wall. The paper's exact adder
    /// ("also constrained at 0.3 ns") is synthesized this way.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            derate: Some(DerateOptions::default()),
        }
    }
}

/// Slack-based area recovery: slows each cell by its available path slack,
/// bounded by `max_factor` overall, so that every path's arrival approaches
/// `target_ps` — the post-synthesis "slack wall" of a constrained design.
///
/// Each pass computes, per cell, the worst path through it
/// (`arrival(output) + worst_downstream(output)`) and scales the cell by
/// `target / worst_path_through`: every cell on a path sees a
/// `worst_path_through` at least as long as that path, so no pass can push
/// any path beyond the target, and iterating converges shared-cone subpaths
/// onto the wall exactly like repeated downsizing steps in a commercial
/// flow.
#[must_use]
pub fn area_recovery(
    netlist: &crate::graph::Netlist,
    annotation: &DelayAnnotation,
    target_ps: f64,
    max_factor: f64,
) -> DelayAnnotation {
    let original = annotation.as_slice().to_vec();
    let mut current = annotation.clone();
    for _pass in 0..12 {
        let sta = StaReport::analyze(netlist, &current);
        // Backward pass: worst remaining delay from each net to any output.
        let downstream = StaReport::downstream_ps(netlist, &current);
        let mut changed = false;
        let delays: Vec<f64> = netlist
            .cells()
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let id = crate::graph::CellId::from_index(i);
                let worst_through = sta.arrival_ps(cell.output) + downstream[cell.output.index()];
                let pass_factor = if worst_through > 0.0 {
                    (target_ps / worst_through).max(1.0)
                } else {
                    1.0
                };
                // The cumulative slow-down per cell is capped (minimum cell
                // size / HVT-swap limit).
                let new_delay = (current.delay_ps(id) * pass_factor).min(original[i] * max_factor);
                if new_delay > current.delay_ps(id) * 1.005 {
                    changed = true;
                }
                new_delay
            })
            .collect();
        current = DelayAnnotation::from_delays(delays);
        if !changed {
            break;
        }
    }
    current
}

/// A synthesized design: netlist + chosen topology + timing annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Synthesized {
    /// The gate-level adder.
    pub adder: AdderNetlist,
    /// The selected topology.
    pub topology: AdderTopology,
    /// Area in NAND2-equivalent units.
    pub area: f64,
    /// Critical delay after area recovery, in picoseconds.
    pub critical_ps: f64,
    /// The (possibly derated) per-instance delay annotation.
    pub annotation: DelayAnnotation,
}

/// Synthesis failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// No candidate topology meets the constraint; reports the fastest.
    NoFeasibleTopology {
        /// Name of the design being synthesized.
        design: String,
        /// The requested period in picoseconds.
        period_ps: f64,
        /// Best achievable critical delay.
        best_ps: f64,
        /// Topology achieving it.
        best_topology: AdderTopology,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoFeasibleTopology {
                design,
                period_ps,
                best_ps,
                best_topology,
            } => write!(
                f,
                "{design}: no topology meets {period_ps} ps (best: {} at {best_ps:.1} ps)",
                best_topology.name()
            ),
        }
    }
}

impl Error for SynthesisError {}

/// One candidate evaluation.
#[derive(Debug, Clone, PartialEq)]
struct Candidate {
    adder: AdderNetlist,
    topology: AdderTopology,
    area: f64,
    critical_ps: f64,
    annotation: DelayAnnotation,
}

fn evaluate<F>(build: F, topology: AdderTopology, lib: &CellLibrary) -> Option<Candidate>
where
    F: FnOnce(AdderTopology) -> Option<AdderNetlist>,
{
    let adder = build(topology)?;
    let annotation = DelayAnnotation::nominal(adder.netlist(), lib);
    let sta = StaReport::analyze(adder.netlist(), &annotation);
    Some(Candidate {
        area: adder.netlist().area(lib),
        critical_ps: sta.critical_ps(),
        adder,
        topology,
        annotation,
    })
}

fn pick(
    design: &str,
    candidates: Vec<Candidate>,
    period_ps: f64,
    options: &SynthesisOptions,
) -> Result<Synthesized, SynthesisError> {
    assert!(!candidates.is_empty(), "no applicable topology candidates");
    let feasible = candidates
        .iter()
        .filter(|c| c.critical_ps <= period_ps)
        .min_by(|a, b| {
            a.area
                .total_cmp(&b.area)
                .then(a.critical_ps.total_cmp(&b.critical_ps))
        })
        .cloned();
    let Some(chosen) = feasible else {
        let best = candidates
            .into_iter()
            .min_by(|a, b| a.critical_ps.total_cmp(&b.critical_ps))
            .expect("non-empty candidates");
        return Err(SynthesisError::NoFeasibleTopology {
            design: design.to_owned(),
            period_ps,
            best_ps: best.critical_ps,
            best_topology: best.topology,
        });
    };

    let (annotation, critical_ps) = match options.derate {
        None => (chosen.annotation, chosen.critical_ps),
        Some(derate) => {
            let target = derate.target_fraction * period_ps;
            let recovered = area_recovery(
                chosen.adder.netlist(),
                &chosen.annotation,
                target,
                derate.max_factor,
            );
            let crit = StaReport::analyze(chosen.adder.netlist(), &recovered).critical_ps();
            (recovered, crit)
        }
    };
    Ok(Synthesized {
        adder: chosen.adder,
        topology: chosen.topology,
        area: chosen.area,
        critical_ps,
        annotation,
    })
}

/// Synthesizes an exact adder of `width` bits against a clock period.
///
/// # Errors
///
/// Returns [`SynthesisError::NoFeasibleTopology`] when even the fastest
/// architecture misses the constraint.
pub fn synthesize_exact(
    width: u32,
    period_ps: f64,
    lib: &CellLibrary,
    options: &SynthesisOptions,
) -> Result<Synthesized, SynthesisError> {
    let candidates: Vec<Candidate> = CANDIDATE_TOPOLOGIES
        .iter()
        .filter(|t| t.supports_width(width))
        .filter_map(|&t| {
            evaluate(
                |topology| Some(builders::build_exact(width, topology)),
                t,
                lib,
            )
        })
        .collect();
    pick(&format!("exact{width}"), candidates, period_ps, options)
}

/// Synthesizes an Inexact Speculative Adder against a clock period,
/// choosing one sub-adder topology uniformly for all blocks (the paper's
/// designs use regular structures).
///
/// # Errors
///
/// Returns [`SynthesisError::NoFeasibleTopology`] when even the fastest
/// sub-adder architecture misses the constraint.
pub fn synthesize_isa(
    cfg: &IsaConfig,
    period_ps: f64,
    lib: &CellLibrary,
    options: &SynthesisOptions,
) -> Result<Synthesized, SynthesisError> {
    let candidates: Vec<Candidate> = CANDIDATE_TOPOLOGIES
        .iter()
        .filter(|t| t.supports_width(cfg.block_size()))
        .filter_map(|&t| evaluate(|topology| builders::isa::build(cfg, topology).ok(), t, lib))
        .collect();
    pick(&format!("isa{cfg}"), candidates, period_ps, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_core::paper_isa_configs;

    const PERIOD: f64 = 300.0;

    #[test]
    fn exact_32_meets_the_paper_constraint() {
        let lib = CellLibrary::industrial_65nm();
        let synth =
            synthesize_exact(32, PERIOD, &lib, &SynthesisOptions::paper()).expect("feasible");
        assert!(synth.critical_ps <= PERIOD, "{}", synth.critical_ps);
        // Area recovery should bring it close to the constraint.
        assert!(
            synth.critical_ps >= 0.75 * PERIOD,
            "exact adder left too much slack: {:.1} ps ({})",
            synth.critical_ps,
            synth.topology.name()
        );
    }

    #[test]
    fn every_paper_isa_meets_the_constraint() {
        let lib = CellLibrary::industrial_65nm();
        for cfg in paper_isa_configs() {
            let synth = synthesize_isa(&cfg, PERIOD, &lib, &SynthesisOptions::paper())
                .unwrap_or_else(|e| panic!("{cfg}: {e}"));
            assert!(synth.critical_ps <= PERIOD, "{cfg}: {}", synth.critical_ps);
        }
    }

    #[test]
    fn synthesized_isa_is_functionally_the_behavioural_model() {
        use isa_core::{Adder, SpeculativeAdder};
        let lib = CellLibrary::industrial_65nm();
        let cfg = IsaConfig::new(32, 8, 0, 0, 4).unwrap();
        let synth = synthesize_isa(&cfg, PERIOD, &lib, &SynthesisOptions::paper()).unwrap();
        let behavioural = SpeculativeAdder::new(cfg);
        let mut seed = 7u64;
        for _ in 0..300 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (a, b) = (seed >> 32, seed & 0xFFFF_FFFF);
            assert_eq!(synth.adder.add(a, b), behavioural.add(a, b));
        }
    }

    #[test]
    fn impossible_constraint_reports_best_effort() {
        let lib = CellLibrary::industrial_65nm();
        let err = synthesize_exact(32, 50.0, &lib, &SynthesisOptions::default()).unwrap_err();
        match err {
            SynthesisError::NoFeasibleTopology {
                best_ps, period_ps, ..
            } => {
                assert_eq!(period_ps, 50.0);
                assert!(best_ps > 50.0);
            }
        }
    }

    #[test]
    fn loose_constraint_selects_cheap_topology() {
        let lib = CellLibrary::industrial_65nm();
        // At a very loose constraint, ripple (minimal area) must win.
        let synth = synthesize_exact(16, 10_000.0, &lib, &SynthesisOptions::default()).unwrap();
        assert_eq!(synth.topology, AdderTopology::Ripple);
    }

    #[test]
    fn tight_constraint_selects_faster_topology_than_loose() {
        let lib = CellLibrary::industrial_65nm();
        let loose = synthesize_exact(32, 10_000.0, &lib, &SynthesisOptions::default()).unwrap();
        let tight = synthesize_exact(32, PERIOD, &lib, &SynthesisOptions::default()).unwrap();
        assert!(tight.area > loose.area, "speed must cost area");
    }

    #[test]
    fn derate_never_violates_the_constraint() {
        let lib = CellLibrary::industrial_65nm();
        for period in [280.0, 300.0, 350.0, 500.0] {
            let synth =
                synthesize_exact(32, period, &lib, &SynthesisOptions::paper()).expect("feasible");
            assert!(synth.critical_ps <= period, "period {period}");
        }
    }

    #[test]
    fn derate_is_bounded_by_max_factor() {
        let lib = CellLibrary::industrial_65nm();
        let nominal = synthesize_exact(16, 5_000.0, &lib, &SynthesisOptions::default()).unwrap();
        let derated = synthesize_exact(16, 5_000.0, &lib, &SynthesisOptions::paper()).unwrap();
        assert_eq!(nominal.topology, derated.topology);
        let factor = derated.critical_ps / nominal.critical_ps;
        assert!(factor <= 1.60 + 1e-9, "factor {factor}");
    }

    #[test]
    fn area_recovery_pushes_every_endpoint_toward_the_wall() {
        use crate::sta::StaReport;
        let lib = CellLibrary::industrial_65nm();
        let synth = synthesize_exact(32, PERIOD, &lib, &SynthesisOptions::default()).unwrap();
        let target = 0.99 * PERIOD;
        let recovered = area_recovery(synth.adder.netlist(), &synth.annotation, target, 50.0);
        let sta = StaReport::analyze(synth.adder.netlist(), &recovered);
        // No output may exceed the target...
        assert!(sta.critical_ps() <= target + 1e-6, "{}", sta.critical_ps());
        // ...and with a generous factor cap, every output with a non-trivial
        // cone should sit near the slack wall. (Single-gate LSB cones are
        // capped by the factor limit in practice; with 50x they reach it
        // too, except sum[0] which is one XOR deep.)
        let arrivals = sta.output_arrivals_ps(synth.adder.netlist());
        let near_wall = arrivals.iter().filter(|a| **a >= 0.80 * target).count();
        assert!(
            near_wall >= arrivals.len() - 2,
            "only {near_wall}/{} outputs reached the wall",
            arrivals.len()
        );
    }

    #[test]
    fn area_recovery_respects_max_factor_cap() {
        let lib = CellLibrary::industrial_65nm();
        let synth = synthesize_exact(32, PERIOD, &lib, &SynthesisOptions::default()).unwrap();
        let recovered = area_recovery(
            synth.adder.netlist(),
            &synth.annotation,
            0.99 * PERIOD,
            1.25,
        );
        for (r, n) in recovered.as_slice().iter().zip(synth.annotation.as_slice()) {
            assert!(*r <= n * 1.25 + 1e-9);
            assert!(*r >= *n - 1e-9, "recovery must never speed a cell up");
        }
    }

    #[test]
    fn area_recovery_preserves_function() {
        let lib = CellLibrary::industrial_65nm();
        let synth = synthesize_exact(16, PERIOD, &lib, &SynthesisOptions::paper()).unwrap();
        // Delays changed, logic did not.
        assert_eq!(synth.adder.add(1234, 4321), 5555);
        assert_eq!(synth.adder.add(0xFFFF, 1), 0x10000);
    }

    #[test]
    fn block_size_drives_subadder_architecture_choice() {
        // 8-bit blocks are loose enough for the cheapest (ripple-class)
        // sub-adder, while 16-bit blocks force a faster architecture —
        // that architectural difference (not the raw critical delay, which
        // area recovery pushes toward the constraint for everyone) is what
        // later differentiates their timing-error sensitization.
        let lib = CellLibrary::industrial_65nm();
        let opts = SynthesisOptions::default(); // no derate: raw structure speed
        let isa8 = synthesize_isa(
            &IsaConfig::new(32, 8, 0, 0, 4).unwrap(),
            PERIOD,
            &lib,
            &opts,
        )
        .unwrap();
        let isa16 = synthesize_isa(
            &IsaConfig::new(32, 16, 2, 0, 4).unwrap(),
            PERIOD,
            &lib,
            &opts,
        )
        .unwrap();
        assert_eq!(
            isa8.topology,
            AdderTopology::Ripple,
            "8-bit blocks should afford the cheapest sub-adder"
        );
        assert_ne!(
            isa16.topology,
            AdderTopology::Ripple,
            "16-bit ripple blocks cannot meet 300 ps"
        );
        assert!(isa8.area < isa16.area);
    }
}
