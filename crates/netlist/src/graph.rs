//! Gate-level netlist representation.
//!
//! A [`Netlist`] is a DAG of standard cells over single-bit nets. The
//! [`NetlistBuilder`] can only reference nets that already exist, so built
//! netlists are combinational-loop-free *by construction* and the cell
//! creation order is a valid topological order; [`Netlist::validate`]
//! re-checks these invariants for netlists obtained by other means.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::cell::{CellKind, CellLibrary};

/// Identifier of a single-bit net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(u32);

impl NetId {
    /// Index into per-net storage.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a storage index (for iteration over a
    /// [`Netlist`]'s nets).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(u32::try_from(index).expect("net index overflow"))
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(u32);

impl CellId {
    /// Index into per-cell storage.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a storage index (for iteration over a
    /// [`Netlist`]'s cells).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(u32::try_from(index).expect("cell index overflow"))
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One cell instance: a kind, its input nets and its output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The cell's logic function.
    pub kind: CellKind,
    /// Input nets, in the pin order documented on [`CellKind`].
    pub inputs: Vec<NetId>,
    /// The net driven by this cell.
    pub output: NetId,
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDriver {
    /// The net is a primary input.
    Input,
    /// The net is driven by a cell.
    Cell(CellId),
}

/// Structural validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A cell references a net created after it (would break topological
    /// evaluation) — impossible via the builder, checked for foreign
    /// netlists.
    ForwardReference {
        /// The offending cell.
        cell: CellId,
    },
    /// The netlist declares no primary outputs.
    NoOutputs,
    /// A cell has the wrong number of input pins.
    BadArity {
        /// The offending cell.
        cell: CellId,
        /// Expected pin count.
        expected: usize,
        /// Actual pin count.
        actual: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ForwardReference { cell } => {
                write!(f, "cell {cell} reads a net defined after it")
            }
            NetlistError::NoOutputs => write!(f, "netlist declares no primary outputs"),
            NetlistError::BadArity {
                cell,
                expected,
                actual,
            } => write!(f, "cell {cell} has {actual} inputs, expected {expected}"),
        }
    }
}

impl Error for NetlistError {}

/// An immutable, validated gate-level netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    drivers: Vec<NetDriver>,
    net_names: Vec<Option<String>>,
    cells: Vec<Cell>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    output_names: Vec<String>,
    fanouts: Vec<Vec<CellId>>,
}

impl Netlist {
    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.drivers.len()
    }

    /// Number of cell instances (excluding nothing; constants count).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The cell instances in topological (creation) order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// A specific cell.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Primary input nets, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Name of the `i`-th primary output.
    #[must_use]
    pub fn output_name(&self, i: usize) -> &str {
        &self.output_names[i]
    }

    /// Driver of a net.
    #[must_use]
    pub fn driver(&self, net: NetId) -> NetDriver {
        self.drivers[net.index()]
    }

    /// Cells reading a net.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> &[CellId] {
        &self.fanouts[net.index()]
    }

    /// Fanout count of a net, counting a primary-output connection as one
    /// extra load.
    #[must_use]
    pub fn load_count(&self, net: NetId) -> usize {
        let po = usize::from(self.outputs.contains(&net));
        self.fanouts[net.index()].len() + po
    }

    /// Net name, if one was assigned.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> Option<&str> {
        self.net_names[net.index()].as_deref()
    }

    /// Total area in NAND2-equivalent units under a library.
    #[must_use]
    pub fn area(&self, lib: &CellLibrary) -> f64 {
        self.cells.iter().map(|c| lib.area(c.kind)).sum()
    }

    /// Histogram of cell kinds.
    #[must_use]
    pub fn kind_histogram(&self) -> HashMap<CellKind, usize> {
        let mut h = HashMap::new();
        for c in &self.cells {
            *h.entry(c.kind).or_insert(0) += 1;
        }
        h
    }

    /// Assembles a netlist from raw parts **without structural
    /// validation**, recomputing only the fanout index (inputs of
    /// out-of-range cell references are skipped).
    ///
    /// This is the ingestion point for *foreign* netlists — anything not
    /// produced by [`NetlistBuilder`], whose construction rules make
    /// malformed graphs unrepresentable — and for the fault-injection
    /// mutations `isa-netlint`'s negative-path battery uses. The result
    /// may violate every invariant [`Self::validate`] checks (and more:
    /// combinational loops, multi-driven or floating nets, dead cones);
    /// run it through `isa-netlint` before evaluating or simulating it.
    /// [`Self::evaluate`]-family methods on an unvalidated netlist are
    /// well-defined memory-wise (any in-range indices) but may compute
    /// garbage (a cell reading a net defined after it sees a stale 0).
    ///
    /// # Panics
    ///
    /// Panics if `drivers` and `net_names` lengths disagree (per-net
    /// storage must stay parallel) or a cell references a net index out of
    /// range (such a netlist could not be stored, let alone linted).
    #[must_use]
    pub fn from_raw_parts(
        name: impl Into<String>,
        drivers: Vec<NetDriver>,
        net_names: Vec<Option<String>>,
        cells: Vec<Cell>,
        inputs: Vec<NetId>,
        outputs: Vec<NetId>,
        output_names: Vec<String>,
    ) -> Self {
        assert_eq!(
            drivers.len(),
            net_names.len(),
            "per-net storage must stay parallel"
        );
        let net_count = drivers.len();
        for cell in &cells {
            assert!(
                cell.output.index() < net_count
                    && cell.inputs.iter().all(|n| n.index() < net_count),
                "cell references a net outside per-net storage"
            );
        }
        let mut fanouts = vec![Vec::new(); net_count];
        for (i, cell) in cells.iter().enumerate() {
            for input in &cell.inputs {
                fanouts[input.index()].push(CellId(i as u32));
            }
        }
        Self {
            name: name.into(),
            drivers,
            net_names,
            cells,
            inputs,
            outputs,
            output_names,
            fanouts,
        }
    }

    /// Decomposes the netlist into the raw parts [`Self::from_raw_parts`]
    /// accepts (fanouts are derived, so they are not returned): `(name,
    /// drivers, net_names, cells, inputs, outputs, output_names)`. The
    /// mutation harness round-trips through this to inject faults.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn into_raw_parts(
        self,
    ) -> (
        String,
        Vec<NetDriver>,
        Vec<Option<String>>,
        Vec<Cell>,
        Vec<NetId>,
        Vec<NetId>,
        Vec<String>,
    ) {
        (
            self.name,
            self.drivers,
            self.net_names,
            self.cells,
            self.inputs,
            self.outputs,
            self.output_names,
        )
    }

    /// Re-checks the structural invariants (topological creation order,
    /// pin arities, outputs present).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        for (i, cell) in self.cells.iter().enumerate() {
            let id = CellId(i as u32);
            if cell.inputs.len() != cell.kind.arity() {
                return Err(NetlistError::BadArity {
                    cell: id,
                    expected: cell.kind.arity(),
                    actual: cell.inputs.len(),
                });
            }
            for &input in &cell.inputs {
                if input.index() >= cell.output.index() {
                    return Err(NetlistError::ForwardReference { cell: id });
                }
            }
        }
        Ok(())
    }

    /// Zero-delay functional evaluation: returns the value of every net for
    /// the given primary input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of primary
    /// inputs.
    #[must_use]
    pub fn evaluate(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "expected {} input values, got {}",
            self.inputs.len(),
            input_values.len()
        );
        let mut values = vec![false; self.net_count()];
        for (net, &v) in self.inputs.iter().zip(input_values) {
            values[net.index()] = v;
        }
        let mut pins = Vec::with_capacity(3);
        for cell in &self.cells {
            pins.clear();
            pins.extend(cell.inputs.iter().map(|n| values[n.index()]));
            values[cell.output.index()] = cell.kind.eval(&pins);
        }
        values
    }

    /// Evaluates and packs the primary outputs, LSB-first, into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics like [`Self::evaluate`]; additionally if there are more than
    /// 64 outputs.
    #[must_use]
    pub fn evaluate_outputs_u64(&self, input_values: &[bool]) -> u64 {
        assert!(self.outputs.len() <= 64, "too many outputs for u64 packing");
        let values = self.evaluate(input_values);
        let mut out = 0u64;
        for (i, net) in self.outputs.iter().enumerate() {
            if values[net.index()] {
                out |= 1 << i;
            }
        }
        out
    }

    /// Bit-sliced zero-delay evaluation: like [`Self::evaluate`], but each
    /// net carries 64 independent lanes packed into a `u64` word (bit `l`
    /// is lane `l`'s value). One topological sweep evaluates all 64 lanes.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of primary
    /// inputs.
    #[must_use]
    pub fn evaluate_words(&self, input_words: &[u64]) -> Vec<u64> {
        let mut values = Vec::new();
        self.evaluate_words_into(input_words, &mut values);
        values
    }

    /// [`Self::evaluate_words`] into a reusable buffer (cleared and
    /// resized to the net count, keeping its allocation) — the hot-loop
    /// form for per-step functional evaluation in batched simulators.
    ///
    /// # Panics
    ///
    /// Panics like [`Self::evaluate_words`].
    pub fn evaluate_words_into(&self, input_words: &[u64], values: &mut Vec<u64>) {
        assert_eq!(
            input_words.len(),
            self.inputs.len(),
            "expected {} input words, got {}",
            self.inputs.len(),
            input_words.len()
        );
        values.clear();
        values.resize(self.net_count(), 0);
        for (net, &w) in self.inputs.iter().zip(input_words) {
            values[net.index()] = w;
        }
        let mut pins = [0u64; 3];
        for cell in &self.cells {
            for (slot, n) in pins.iter_mut().zip(&cell.inputs) {
                *slot = values[n.index()];
            }
            values[cell.output.index()] = cell.kind.eval_word(&pins[..cell.inputs.len()]);
        }
    }

    /// Bit-sliced evaluation of the primary outputs: returns one plane per
    /// output net, in declaration order (bit `l` of plane `i` is output `i`
    /// in lane `l`). The word-level counterpart of
    /// [`Self::evaluate_outputs_u64`].
    ///
    /// # Panics
    ///
    /// Panics like [`Self::evaluate_words`].
    #[must_use]
    pub fn evaluate_output_planes(&self, input_words: &[u64]) -> Vec<u64> {
        let values = self.evaluate_words(input_words);
        self.outputs.iter().map(|n| values[n.index()]).collect()
    }

    /// [`Self::evaluate_output_planes`] with reusable buffers: `values`
    /// is the all-nets scratch, `planes` receives one plane per output.
    ///
    /// # Panics
    ///
    /// Panics like [`Self::evaluate_words`].
    pub fn evaluate_output_planes_into(
        &self,
        input_words: &[u64],
        values: &mut Vec<u64>,
        planes: &mut Vec<u64>,
    ) {
        self.evaluate_words_into(input_words, values);
        planes.clear();
        planes.extend(self.outputs.iter().map(|n| values[n.index()]));
    }
}

/// Incremental netlist constructor.
///
/// # Examples
///
/// ```
/// use isa_netlist::graph::NetlistBuilder;
///
/// # fn main() -> Result<(), isa_netlist::graph::NetlistError> {
/// let mut b = NetlistBuilder::new("half_adder");
/// let a = b.input("a");
/// let x = b.input("b");
/// let sum = b.xor2(a, x);
/// let carry = b.and2(a, x);
/// b.mark_output(sum, "sum");
/// b.mark_output(carry, "carry");
/// let netlist = b.finish()?;
/// assert_eq!(netlist.evaluate_outputs_u64(&[true, true]), 0b10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    drivers: Vec<NetDriver>,
    net_names: Vec<Option<String>>,
    cells: Vec<Cell>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    output_names: Vec<String>,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl NetlistBuilder {
    /// Starts a new design.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            drivers: Vec::new(),
            net_names: Vec::new(),
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            output_names: Vec::new(),
            const0: None,
            const1: None,
        }
    }

    fn new_net(&mut self, driver: NetDriver, name: Option<String>) -> NetId {
        let id = NetId(self.drivers.len() as u32);
        self.drivers.push(driver);
        self.net_names.push(name);
        id
    }

    /// Declares a named primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.new_net(NetDriver::Input, Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Declares a bus of primary inputs `name[0]..name[width-1]`, LSB first.
    pub fn input_bus(&mut self, name: &str, width: u32) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Instantiates a cell and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the cell arity or an
    /// input net does not exist.
    pub fn cell(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "{kind} expects {} inputs, got {}",
            kind.arity(),
            inputs.len()
        );
        for net in inputs {
            assert!(
                net.index() < self.drivers.len(),
                "input net {net} does not exist"
            );
        }
        let output = self.new_net(NetDriver::Cell(CellId(self.cells.len() as u32)), None);
        self.cells.push(Cell {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// The constant-0 net (shared tie cell).
    pub fn const0(&mut self) -> NetId {
        if let Some(n) = self.const0 {
            return n;
        }
        let n = self.cell(CellKind::Const0, &[]);
        self.const0 = Some(n);
        n
    }

    /// The constant-1 net (shared tie cell).
    pub fn const1(&mut self) -> NetId {
        if let Some(n) = self.const1 {
            return n;
        }
        let n = self.cell(CellKind::Const1, &[]);
        self.const1 = Some(n);
        n
    }

    /// `!a`
    pub fn inv(&mut self, a: NetId) -> NetId {
        self.cell(CellKind::Inv, &[a])
    }

    /// `a` (buffer)
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.cell(CellKind::Buf, &[a])
    }

    /// `a & b`
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(CellKind::And2, &[a, b])
    }

    /// `a | b`
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(CellKind::Or2, &[a, b])
    }

    /// `!(a & b)`
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(CellKind::Nand2, &[a, b])
    }

    /// `!(a | b)`
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(CellKind::Nor2, &[a, b])
    }

    /// `a ^ b`
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(CellKind::Xor2, &[a, b])
    }

    /// `!(a ^ b)`
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(CellKind::Xnor2, &[a, b])
    }

    /// `sel ? d1 : d0`
    pub fn mux2(&mut self, d0: NetId, d1: NetId, sel: NetId) -> NetId {
        self.cell(CellKind::Mux2, &[d0, d1, sel])
    }

    /// `(a & b) | c`
    pub fn ao21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.cell(CellKind::Ao21, &[a, b, c])
    }

    /// `(a | b) & c`
    pub fn oa21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.cell(CellKind::Oa21, &[a, b, c])
    }

    /// `!((a & b) | c)`
    pub fn aoi21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.cell(CellKind::Aoi21, &[a, b, c])
    }

    /// `!((a | b) & c)`
    pub fn oai21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.cell(CellKind::Oai21, &[a, b, c])
    }

    /// `majority(a, b, c)` — a full adder's carry.
    pub fn maj3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.cell(CellKind::Maj3, &[a, b, c])
    }

    /// `a & b & c`
    pub fn and3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.cell(CellKind::And3, &[a, b, c])
    }

    /// `a | b | c`
    pub fn or3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.cell(CellKind::Or3, &[a, b, c])
    }

    /// `a ^ b ^ c` — a full adder's sum.
    pub fn xor3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.cell(CellKind::Xor3, &[a, b, c])
    }

    /// Reduces a slice of nets with a binary op, as a balanced tree (keeps
    /// logical depth logarithmic).
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty.
    pub fn reduce_tree(
        &mut self,
        nets: &[NetId],
        mut op: impl FnMut(&mut Self, NetId, NetId) -> NetId,
    ) -> NetId {
        assert!(!nets.is_empty(), "cannot reduce an empty net list");
        let mut level: Vec<NetId> = nets.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(op(self, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    }

    /// Declares a named primary output.
    pub fn mark_output(&mut self, net: NetId, name: impl Into<String>) {
        assert!(
            net.index() < self.drivers.len(),
            "output net {net} does not exist"
        );
        self.outputs.push(net);
        self.output_names.push(name.into());
    }

    /// Declares a bus of primary outputs `name[0]..`, LSB first.
    pub fn mark_output_bus(&mut self, nets: &[NetId], name: &str) {
        for (i, &n) in nets.iter().enumerate() {
            self.mark_output(n, format!("{name}[{i}]"));
        }
    }

    /// Number of cells instantiated so far.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoOutputs`] if no output was marked. Other
    /// structural errors are impossible via this builder but are re-checked.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        let mut fanouts = vec![Vec::new(); self.drivers.len()];
        for (i, cell) in self.cells.iter().enumerate() {
            for input in &cell.inputs {
                fanouts[input.index()].push(CellId(i as u32));
            }
        }
        let netlist = Netlist {
            name: self.name,
            drivers: self.drivers,
            net_names: self.net_names,
            cells: self.cells,
            inputs: self.inputs,
            outputs: self.outputs,
            output_names: self.output_names,
            fanouts,
        };
        netlist.validate()?;
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("cin");
        let sum = b.xor3(a, x, c);
        let cout = b.maj3(a, x, c);
        b.mark_output(sum, "sum");
        b.mark_output(cout, "cout");
        b.finish().unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder_netlist();
        for i in 0..8u32 {
            let a = i & 1 != 0;
            let x = i & 2 != 0;
            let c = i & 4 != 0;
            let expected = (a as u64 + x as u64 + c as u64) & 0b11;
            assert_eq!(nl.evaluate_outputs_u64(&[a, x, c]), expected);
        }
    }

    #[test]
    fn empty_outputs_rejected() {
        let mut b = NetlistBuilder::new("empty");
        let _ = b.input("a");
        assert_eq!(b.finish().unwrap_err(), NetlistError::NoOutputs);
    }

    #[test]
    fn constants_are_shared() {
        let mut b = NetlistBuilder::new("c");
        let z1 = b.const0();
        let z2 = b.const0();
        let o1 = b.const1();
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
        b.mark_output(z1, "z");
        b.mark_output(o1, "o");
        let nl = b.finish().unwrap();
        assert_eq!(nl.evaluate_outputs_u64(&[]), 0b10);
    }

    #[test]
    fn fanout_and_load_counting() {
        let mut b = NetlistBuilder::new("f");
        let a = b.input("a");
        let x = b.inv(a);
        let y = b.inv(a);
        let z = b.and2(x, y);
        b.mark_output(z, "z");
        b.mark_output(a, "a_passthrough");
        let nl = b.finish().unwrap();
        assert_eq!(nl.fanout(a).len(), 2);
        assert_eq!(nl.load_count(a), 3); // two INVs + primary output
        assert_eq!(nl.load_count(z), 1);
    }

    #[test]
    fn creation_order_is_topological() {
        let nl = full_adder_netlist();
        nl.validate().unwrap();
        for cell in nl.cells() {
            for input in &cell.inputs {
                assert!(input.index() < cell.output.index());
            }
        }
    }

    #[test]
    fn reduce_tree_matches_flat_reduction() {
        let mut b = NetlistBuilder::new("tree");
        let bits = b.input_bus("x", 7);
        let all = b.reduce_tree(&bits.clone(), |b, l, r| b.and2(l, r));
        b.mark_output(all, "and_all");
        let nl = b.finish().unwrap();
        for pattern in 0..(1u32 << 7) {
            let inputs: Vec<bool> = (0..7).map(|i| pattern & (1 << i) != 0).collect();
            let expected = u64::from(pattern == 0x7F);
            assert_eq!(
                nl.evaluate_outputs_u64(&inputs),
                expected,
                "pattern {pattern:#b}"
            );
        }
    }

    #[test]
    fn area_and_histogram() {
        let nl = full_adder_netlist();
        let lib = CellLibrary::industrial_65nm();
        assert!(nl.area(&lib) > 0.0);
        let hist = nl.kind_histogram();
        assert_eq!(hist[&CellKind::Xor3], 1);
        assert_eq!(hist[&CellKind::Maj3], 1);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics_at_build_time() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let _ = b.cell(CellKind::And2, &[a]);
    }

    #[test]
    fn input_bus_names_bits() {
        let mut b = NetlistBuilder::new("bus");
        let bits = b.input_bus("a", 3);
        let y = b.or3(bits[0], bits[1], bits[2]);
        b.mark_output(y, "y");
        let nl = b.finish().unwrap();
        assert_eq!(nl.net_name(bits[1]), Some("a[1]"));
        assert_eq!(nl.output_name(0), "y");
    }

    #[test]
    fn evaluate_rejects_wrong_input_count() {
        let nl = full_adder_netlist();
        let result = std::panic::catch_unwind(|| nl.evaluate(&[true]));
        assert!(result.is_err());
    }
}
