//! Per-instance delay annotation (the SDF content) and process variation.
//!
//! The paper extracts a Standard Delay Format file from synthesis and runs
//! delay-annotated gate-level simulation. Here, a [`DelayAnnotation`] holds
//! one propagation delay per cell instance, derived from the library's
//! intrinsic + load model and optionally perturbed by a deterministic
//! Gaussian process-variation model (seeded, reproducible) that stands in
//! for the PVT spread of a real die.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cell::CellLibrary;
use crate::graph::{CellId, Netlist};

/// Femtoseconds per picosecond — the resolution both the event-driven
/// simulators and the timing classifier keep time in.
pub const FS_PER_PS: f64 = 1000.0;

/// Converts picoseconds to integer femtoseconds (rounded).
///
/// Every consumer that compares against simulated event times (the event
/// queues in `isa-timing-sim`, the lane classifier in
/// [`classify`](crate::classify)) must quantize delays through this one
/// function, so that analytically summed path delays are bit-identical to
/// the simulator's accumulated event times.
#[must_use]
pub fn ps_to_fs(ps: f64) -> u64 {
    debug_assert!(ps.is_finite() && ps >= 0.0);
    (ps * FS_PER_PS).round() as u64
}

/// Multiplicative Gaussian process-variation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Relative standard deviation of each instance's delay (e.g. 0.03 for
    /// ±3 % sigma).
    pub sigma: f64,
    /// RNG seed, so annotations are reproducible die samples.
    pub seed: u64,
}

impl VariationModel {
    /// Creates a variation model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    #[must_use]
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be >= 0");
        Self { sigma, seed }
    }

    /// No variation: nominal delays.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            sigma: 0.0,
            seed: 0,
        }
    }
}

/// Standard normal sample via Box-Muller (avoids a `rand_distr` dependency).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One propagation delay per cell instance, in picoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayAnnotation {
    delays_ps: Vec<f64>,
}

impl DelayAnnotation {
    /// Nominal annotation: library intrinsic delay plus load-dependent term
    /// from the actual fanout of each instance's output net.
    #[must_use]
    pub fn nominal(netlist: &Netlist, lib: &CellLibrary) -> Self {
        let delays_ps = netlist
            .cells()
            .iter()
            .map(|c| lib.delay_ps(c.kind, netlist.load_count(c.output)))
            .collect();
        Self { delays_ps }
    }

    /// Annotation with per-instance Gaussian variation, clamped to ±3 sigma
    /// (no negative or absurd delays).
    #[must_use]
    pub fn with_variation(
        netlist: &Netlist,
        lib: &CellLibrary,
        variation: &VariationModel,
    ) -> Self {
        let mut annotation = Self::nominal(netlist, lib);
        if variation.sigma == 0.0 {
            return annotation;
        }
        let mut rng = StdRng::seed_from_u64(variation.seed);
        for d in &mut annotation.delays_ps {
            let z = standard_normal(&mut rng).clamp(-3.0, 3.0);
            *d *= 1.0 + variation.sigma * z;
        }
        annotation
    }

    /// Builds an annotation from raw per-cell delays.
    ///
    /// # Panics
    ///
    /// Panics if any delay is negative or non-finite.
    #[must_use]
    pub fn from_delays(delays_ps: Vec<f64>) -> Self {
        assert!(
            delays_ps.iter().all(|d| d.is_finite() && *d >= 0.0),
            "delays must be finite and non-negative"
        );
        Self { delays_ps }
    }

    /// Builds an annotation from raw per-cell delays **without the
    /// finite/non-negative validation** of [`Self::from_delays`] — the
    /// ingestion point for foreign (SDF-parsed) or fault-injected delay
    /// data that `isa-netlint`'s timing pass validates. Simulators and
    /// STA assume validated delays; lint before use.
    #[must_use]
    pub fn from_delays_unchecked(delays_ps: Vec<f64>) -> Self {
        Self { delays_ps }
    }

    /// Number of annotated instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.delays_ps.len()
    }

    /// True if no instance is annotated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.delays_ps.is_empty()
    }

    /// Delay of one instance in picoseconds.
    #[must_use]
    pub fn delay_ps(&self, cell: CellId) -> f64 {
        self.delays_ps[cell.index()]
    }

    /// All delays, indexed by cell.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.delays_ps
    }

    /// Returns a uniformly scaled copy (used by synthesis "derating").
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "scale must be positive");
        Self {
            delays_ps: self.delays_ps.iter().map(|d| d * factor).collect(),
        }
    }

    /// Returns a copy with per-instance Gaussian variation applied on top of
    /// the existing delays (e.g. after area recovery), clamped to ±3 sigma.
    #[must_use]
    pub fn perturbed(&self, variation: &VariationModel) -> Self {
        if variation.sigma == 0.0 {
            return self.clone();
        }
        let mut rng = StdRng::seed_from_u64(variation.seed);
        Self {
            delays_ps: self
                .delays_ps
                .iter()
                .map(|d| {
                    let z = standard_normal(&mut rng).clamp(-3.0, 3.0);
                    d * (1.0 + variation.sigma * z)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetlistBuilder;

    fn small_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.input("b");
        let n1 = b.and2(a, x);
        let n2 = b.xor2(a, n1);
        let n3 = b.or2(n1, n2);
        b.mark_output(n3, "y");
        b.finish().unwrap()
    }

    #[test]
    fn nominal_matches_library_model() {
        let nl = small_netlist();
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib);
        assert_eq!(ann.len(), nl.cell_count());
        for (i, cell) in nl.cells().iter().enumerate() {
            let expected = lib.delay_ps(cell.kind, nl.load_count(cell.output));
            assert_eq!(ann.as_slice()[i], expected);
        }
    }

    #[test]
    fn fanout_affects_annotated_delay() {
        let mut b = NetlistBuilder::new("fan");
        let a = b.input("a");
        let x = b.input("b");
        let hot = b.and2(a, x); // will have fanout 3
        let i1 = b.inv(hot);
        let i2 = b.inv(hot);
        let i3 = b.inv(hot);
        let y1 = b.and2(i1, i2);
        let y = b.and2(y1, i3);
        b.mark_output(y, "y");
        let nl = b.finish().unwrap();
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib);
        // The hot AND2 (cell 0) drives 3 loads, the final AND2 drives 1.
        let hot_cell = CellId::from_index(0);
        let last_cell = CellId::from_index(nl.cell_count() - 1);
        assert!(ann.delay_ps(hot_cell) > ann.delay_ps(last_cell));
    }

    #[test]
    fn variation_is_deterministic_per_seed() {
        let nl = small_netlist();
        let lib = CellLibrary::industrial_65nm();
        let v1 = DelayAnnotation::with_variation(&nl, &lib, &VariationModel::new(0.05, 7));
        let v2 = DelayAnnotation::with_variation(&nl, &lib, &VariationModel::new(0.05, 7));
        let v3 = DelayAnnotation::with_variation(&nl, &lib, &VariationModel::new(0.05, 8));
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
    }

    #[test]
    fn variation_stays_within_three_sigma() {
        let nl = small_netlist();
        let lib = CellLibrary::industrial_65nm();
        let nominal = DelayAnnotation::nominal(&nl, &lib);
        let sigma = 0.05;
        let varied = DelayAnnotation::with_variation(&nl, &lib, &VariationModel::new(sigma, 99));
        for (v, n) in varied.as_slice().iter().zip(nominal.as_slice()) {
            assert!(*v >= n * (1.0 - 3.0 * sigma) - 1e-9);
            assert!(*v <= n * (1.0 + 3.0 * sigma) + 1e-9);
        }
    }

    #[test]
    fn zero_sigma_is_nominal() {
        let nl = small_netlist();
        let lib = CellLibrary::industrial_65nm();
        let nominal = DelayAnnotation::nominal(&nl, &lib);
        let varied = DelayAnnotation::with_variation(&nl, &lib, &VariationModel::nominal());
        assert_eq!(nominal, varied);
    }

    #[test]
    fn scaling_multiplies_every_delay() {
        let nl = small_netlist();
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib);
        let scaled = ann.scaled(1.5);
        for (s, n) in scaled.as_slice().iter().zip(ann.as_slice()) {
            assert!((s - n * 1.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_delays_rejects_negative() {
        let _ = DelayAnnotation::from_delays(vec![1.0, -2.0]);
    }

    #[test]
    fn normal_samples_have_sane_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
