//! Gate-level Inexact Speculative Adder assembly (Fig. 1 of the paper).
//!
//! Each speculative path instantiates:
//!
//! * a **SPEC** carry speculator: a balanced carry-lookahead tree over the
//!   `S` operand bits below the path (group generate, plus the group
//!   propagate term when speculating at 1);
//! * a **sub-ADD**: any of the adder topologies from this crate, taking the
//!   speculated carry as carry-in;
//! * a **COMP** block implementing the ISA's dual-direction compensation:
//!   fault detection (`SPEC` vs previous sub-ADD carry-out), a `C`-bit LSB
//!   increment (speculate-at-0) or decrement (speculate-at-1) chain with
//!   internal-overflow detection, and an `R`-bit reduction forcing the
//!   preceding sum's MSBs to ones (missed carry) or zeros (spurious carry).
//!
//! The produced netlist is bit-equivalent to
//! [`isa_core::SpeculativeAdder`] for **both** speculation guesses — an
//! invariant enforced by this module's tests and the cross-crate
//! integration suite.

use std::error::Error;
use std::fmt;

use isa_core::{IsaConfig, SpecGuess};

use crate::graph::{NetId, NetlistBuilder};

use super::{AdderNetlist, AdderTopology};

/// Error building an ISA netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaBuildError {
    /// The chosen sub-adder topology cannot implement the block width.
    IncompatibleTopology {
        /// The requested topology.
        topology: AdderTopology,
        /// The ISA block width it must implement.
        block_size: u32,
    },
}

impl fmt::Display for IsaBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaBuildError::IncompatibleTopology {
                topology,
                block_size,
            } => write!(
                f,
                "topology {} cannot implement {block_size}-bit blocks",
                topology.name()
            ),
        }
    }
}

impl Error for IsaBuildError {}

/// Balanced group-generate/propagate tree over LSB-first (g, p) pairs.
fn gp_tree(b: &mut NetlistBuilder, g: &[NetId], p: &[NetId]) -> (NetId, NetId) {
    debug_assert!(!g.is_empty() && g.len() == p.len());
    if g.len() == 1 {
        return (g[0], p[0]);
    }
    let mid = g.len() / 2;
    let (gl, pl) = gp_tree(b, &g[..mid], &p[..mid]);
    let (gh, ph) = gp_tree(b, &g[mid..], &p[mid..]);
    // (G, P) = (Gh | Ph·Gl, Ph·Pl)
    (b.ao21(ph, gl, gh), b.and2(ph, pl))
}

/// Builds the SPEC block: the speculated carry into the path starting at
/// `boundary`, looking at the `s` bits below it.
///
/// Speculating at 0 the output is the window's group generate `G`; at 1 it
/// is `G | P` (an undetermined full-propagate window guesses a carry).
/// Returns `None` when the carry is the constant implied by the guess
/// (`s = 0`), letting the sub-adder drop its carry-in logic for guess 0.
fn build_spec(
    b: &mut NetlistBuilder,
    a_bits: &[NetId],
    b_bits: &[NetId],
    boundary: usize,
    s: usize,
    guess: SpecGuess,
) -> Option<NetId> {
    if s == 0 {
        return match guess {
            SpecGuess::Zero => None,
            SpecGuess::One => Some(b.const1()),
        };
    }
    let window = boundary - s..boundary;
    let g: Vec<NetId> = window
        .clone()
        .map(|i| b.and2(a_bits[i], b_bits[i]))
        .collect();
    let p: Vec<NetId> = window.map(|i| b.xor2(a_bits[i], b_bits[i])).collect();
    let (gen, prop) = gp_tree(b, &g, &p);
    Some(match guess {
        SpecGuess::Zero => gen,
        SpecGuess::One => b.or2(gen, prop),
    })
}

/// Builds the gate-level ISA for a configuration, using `topology` for
/// every sub-ADD block. Supports both speculation guesses (the ISA's
/// dual-direction compensation).
///
/// # Errors
///
/// Returns [`IsaBuildError::IncompatibleTopology`] when the topology cannot
/// implement the block width.
pub fn build(cfg: &IsaConfig, topology: AdderTopology) -> Result<AdderNetlist, IsaBuildError> {
    let bsz = cfg.block_size();
    if !topology.supports_width(bsz) {
        return Err(IsaBuildError::IncompatibleTopology {
            topology,
            block_size: bsz,
        });
    }
    let width = cfg.width();
    let guess = cfg.guess();
    let paths = cfg.num_paths() as usize;
    let bsz = bsz as usize;
    let c = cfg.correction() as usize;
    let r = cfg.reduction() as usize;

    let mut b = NetlistBuilder::new(format!(
        "isa_{}_{}_{}_{}_g{}_w{width}_{}",
        cfg.block_size(),
        cfg.spec_size(),
        cfg.correction(),
        cfg.reduction(),
        guess,
        topology.name()
    ));
    let a_bits = b.input_bus("a", width);
    let b_bits = b.input_bus("b", width);

    // Phase 1: SPEC + sub-ADD per path.
    let mut spec: Vec<Option<NetId>> = Vec::with_capacity(paths);
    let mut raw_sums: Vec<Vec<NetId>> = Vec::with_capacity(paths);
    let mut couts: Vec<NetId> = Vec::with_capacity(paths);
    for k in 0..paths {
        let lo = k * bsz;
        let cin = if k == 0 {
            None
        } else {
            build_spec(
                &mut b,
                &a_bits,
                &b_bits,
                lo,
                cfg.spec_size() as usize,
                guess,
            )
        };
        spec.push(cin);
        let (sums, cout) =
            topology.chain(&mut b, &a_bits[lo..lo + bsz], &b_bits[lo..lo + bsz], cin);
        raw_sums.push(sums);
        couts.push(cout);
    }

    // Phase 2: COMP per boundary — fault detect + C-bit correction. With
    // speculate-at-0 every fault is a missed carry (+1, increment); with
    // speculate-at-1 every fault is a spurious carry (-1, decrement).
    let mut final_sums = raw_sums.clone();
    let mut forces: Vec<Option<NetId>> = vec![None; paths];
    for k in 1..paths {
        let prev_cout = couts[k - 1];
        // fault = spec XOR prev_cout (spec absent = constant-0 guess).
        let fault = match spec[k] {
            None => prev_cout,
            Some(s) => b.xor2(s, prev_cout),
        };
        if c > 0 {
            let group: Vec<NetId> = raw_sums[k][..c].to_vec();
            // Internal-overflow detection: incrementing is impossible iff
            // the group is all ones; decrementing iff it is all zeros.
            let blocked = match guess {
                SpecGuess::Zero => b.reduce_tree(&group, |bb, l, r| bb.and2(l, r)),
                SpecGuess::One => {
                    let any = b.reduce_tree(&group, |bb, l, r| bb.or2(l, r));
                    b.inv(any)
                }
            };
            let not_blocked = b.inv(blocked);
            let enable = b.and2(fault, not_blocked);
            // Increment chain: t propagates while the bit was 1.
            // Decrement chain: borrow propagates while the bit was 0.
            let mut t = enable;
            for i in 0..c {
                let raw = raw_sums[k][i];
                final_sums[k][i] = b.xor2(raw, t);
                if i + 1 < c {
                    t = match guess {
                        SpecGuess::Zero => b.and2(t, raw),
                        SpecGuess::One => {
                            let raw_n = b.inv(raw);
                            b.and2(t, raw_n)
                        }
                    };
                }
            }
            if r > 0 {
                forces[k] = Some(b.and2(fault, blocked));
            }
        } else if r > 0 {
            forces[k] = Some(fault);
        }
        // c == 0 && r == 0: the error stands, no hardware.
    }

    // Phase 3: R-bit reduction forces the preceding sum's MSBs: to ones for
    // a missed carry (guess 0), to zeros for a spurious one (guess 1).
    for k in 1..paths {
        if let Some(force) = forces[k] {
            match guess {
                SpecGuess::Zero => {
                    for slot in final_sums[k - 1][bsz - r..].iter_mut() {
                        *slot = b.or2(*slot, force);
                    }
                }
                SpecGuess::One => {
                    let keep = b.inv(force);
                    for slot in final_sums[k - 1][bsz - r..].iter_mut() {
                        *slot = b.and2(*slot, keep);
                    }
                }
            }
        }
    }

    for (k, sums) in final_sums.iter().enumerate() {
        for (i, &s) in sums.iter().enumerate() {
            b.mark_output(s, format!("sum[{}]", k * bsz + i));
        }
    }
    b.mark_output(couts[paths - 1], format!("sum[{width}]"));

    Ok(AdderNetlist::from_netlist(
        b.finish().expect("ISA netlist is well-formed"),
        width,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_core::{paper_isa_configs, Adder, SpeculativeAdder};

    fn random_pairs(n: usize, width: u32) -> Vec<(u64, u64)> {
        let mask = (1u64 << width) - 1;
        let mut seed = 0x0123_4567_89AB_CDEFu64;
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed & mask, (seed >> 24).wrapping_mul(seed) & mask)
            })
            .collect()
    }

    #[test]
    fn matches_behavioural_model_for_all_paper_designs() {
        for cfg in paper_isa_configs() {
            let behavioural = SpeculativeAdder::new(cfg);
            let gate = build(&cfg, AdderTopology::Ripple).unwrap();
            for &(a, b) in &random_pairs(500, 32) {
                assert_eq!(
                    gate.add(a, b),
                    behavioural.add(a, b),
                    "cfg {cfg} a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn topology_choice_does_not_change_function() {
        let cfg = IsaConfig::new(32, 8, 2, 1, 4).unwrap();
        let behavioural = SpeculativeAdder::new(cfg);
        for topology in [
            AdderTopology::Ripple,
            AdderTopology::Cla4,
            AdderTopology::CarrySkip(4),
            AdderTopology::CarrySelect(4),
            AdderTopology::BrentKung,
            AdderTopology::Sklansky,
            AdderTopology::KoggeStone,
        ] {
            let gate = build(&cfg, topology).unwrap();
            for &(a, b) in &random_pairs(200, 32) {
                assert_eq!(
                    gate.add(a, b),
                    behavioural.add(a, b),
                    "{} a={a:#x} b={b:#x}",
                    topology.name()
                );
            }
        }
    }

    #[test]
    fn corner_cases_match_behavioural() {
        let cfg = IsaConfig::new(32, 8, 0, 1, 4).unwrap();
        let behavioural = SpeculativeAdder::new(cfg);
        let gate = build(&cfg, AdderTopology::Cla4).unwrap();
        let m = u32::MAX as u64;
        for (a, b) in [
            (0, 0),
            (m, m),
            (m, 1),
            (0x0000_00FF, 1),
            (0x0000_01FF, 1),
            (0x0000_02FF, 1),
            (0x00FF_FFFF, 1),
            (0xFFFF_FFFF, 0),
            (0x8000_0000, 0x8000_0000),
        ] {
            assert_eq!(gate.add(a, b), behavioural.add(a, b), "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn speculate_at_one_matches_behavioural() {
        // Dual-direction compensation: decrement correction + force-to-zero
        // reduction, across several (C, R) combinations.
        for (c, r) in [(0u32, 0u32), (0, 2), (0, 4), (1, 4), (2, 6), (8, 8)] {
            let cfg = IsaConfig::with_guess(32, 8, 0, c, r, SpecGuess::One).unwrap();
            let behavioural = SpeculativeAdder::new(cfg);
            let gate = build(&cfg, AdderTopology::Ripple).unwrap();
            for &(a, b) in &random_pairs(400, 32) {
                assert_eq!(
                    gate.add(a, b),
                    behavioural.add(a, b),
                    "cfg {cfg} guess 1 a={a:#x} b={b:#x}"
                );
            }
            // Directed: all-zero operands maximize spurious carries.
            assert_eq!(gate.add(0, 0), behavioural.add(0, 0), "cfg {cfg}");
        }
    }

    #[test]
    fn speculate_at_one_with_window_matches_behavioural() {
        for s in [1u32, 2, 4, 7] {
            let cfg = IsaConfig::with_guess(32, 8, s, 1, 4, SpecGuess::One).unwrap();
            let behavioural = SpeculativeAdder::new(cfg);
            let gate = build(&cfg, AdderTopology::Cla4).unwrap();
            for &(a, b) in &random_pairs(300, 32) {
                assert_eq!(
                    gate.add(a, b),
                    behavioural.add(a, b),
                    "cfg {cfg} S={s} a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn incompatible_topology_is_rejected() {
        // Brent-Kung requires power-of-two blocks; 12-bit blocks are not.
        let cfg = IsaConfig::new(48, 12, 0, 0, 0).unwrap();
        let err = build(&cfg, AdderTopology::BrentKung).unwrap_err();
        assert!(matches!(err, IsaBuildError::IncompatibleTopology { .. }));
    }

    #[test]
    fn sixteen_bit_blocks_match_behavioural() {
        for quad in [(16u32, 7u32, 0u32, 8u32), (16, 2, 1, 6), (16, 1, 0, 2)] {
            let cfg = IsaConfig::new(32, quad.0, quad.1, quad.2, quad.3).unwrap();
            let behavioural = SpeculativeAdder::new(cfg);
            let gate = build(&cfg, AdderTopology::CarrySkip(4)).unwrap();
            for &(a, b) in &random_pairs(300, 32) {
                assert_eq!(gate.add(a, b), behavioural.add(a, b), "cfg {cfg}");
            }
        }
    }

    #[test]
    fn netlist_name_encodes_design_and_guess() {
        let cfg = IsaConfig::new(32, 8, 0, 0, 4).unwrap();
        let gate = build(&cfg, AdderTopology::Ripple).unwrap();
        assert!(gate.netlist().name().contains("isa_8_0_0_4_g0"));
        let cfg1 = IsaConfig::with_guess(32, 8, 0, 0, 4, SpecGuess::One).unwrap();
        let gate1 = build(&cfg1, AdderTopology::Ripple).unwrap();
        assert!(gate1.netlist().name().contains("g1"));
    }
}
