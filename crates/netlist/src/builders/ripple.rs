//! Ripple-carry adder: minimal area, linear delay.

use crate::graph::{NetId, NetlistBuilder};

use super::AdderNetlist;

/// Builds the ripple-carry sum/carry chain over the given operand bits.
///
/// `cin` of `None` means a constant-0 carry-in, letting the first stage
/// degrade to a half adder. Returns the sum bits and the carry-out.
///
/// # Panics
///
/// Panics if the operand slices are empty or of different lengths.
pub(crate) fn ripple_chain(
    b: &mut NetlistBuilder,
    a_bits: &[NetId],
    b_bits: &[NetId],
    cin: Option<NetId>,
) -> (Vec<NetId>, NetId) {
    assert!(!a_bits.is_empty(), "ripple chain needs at least one bit");
    assert_eq!(a_bits.len(), b_bits.len(), "operand width mismatch");
    let mut sums = Vec::with_capacity(a_bits.len());
    let mut carry = cin;
    for (&x, &y) in a_bits.iter().zip(b_bits) {
        match carry {
            None => {
                // Half adder.
                sums.push(b.xor2(x, y));
                carry = Some(b.and2(x, y));
            }
            Some(c) => {
                // Full adder.
                sums.push(b.xor3(x, y, c));
                carry = Some(b.maj3(x, y, c));
            }
        }
    }
    (sums, carry.expect("at least one bit processed"))
}

/// Builds a standalone `width`-bit ripple-carry adder.
///
/// # Panics
///
/// Panics if `width` is 0 or above 63.
#[must_use]
pub fn build(width: u32) -> AdderNetlist {
    assert!(width > 0 && width <= 63, "width must be in 1..=63");
    let mut b = NetlistBuilder::new(format!("ripple{width}"));
    let a_bits = b.input_bus("a", width);
    let b_bits = b.input_bus("b", width);
    let (sums, cout) = ripple_chain(&mut b, &a_bits, &b_bits, None);
    b.mark_output_bus(&sums, "sum");
    b.mark_output(cout, format!("sum[{width}]"));
    AdderNetlist::from_netlist(b.finish().expect("ripple adder is well-formed"), width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::test_support::check_adder;
    use crate::cell::CellLibrary;
    use crate::sta::StaReport;
    use crate::timing::DelayAnnotation;

    #[test]
    fn ripple_4_exhaustive() {
        check_adder(&build(4));
    }

    #[test]
    fn ripple_8_and_16() {
        check_adder(&build(8));
        check_adder(&build(16));
    }

    #[test]
    fn ripple_32_randomized() {
        check_adder(&build(32));
    }

    #[test]
    fn ripple_1_bit() {
        check_adder(&build(1));
    }

    #[test]
    fn delay_grows_linearly() {
        let lib = CellLibrary::industrial_65nm();
        let d8 = {
            let a = build(8);
            StaReport::analyze(a.netlist(), &DelayAnnotation::nominal(a.netlist(), &lib))
                .critical_ps()
        };
        let d32 = {
            let a = build(32);
            StaReport::analyze(a.netlist(), &DelayAnnotation::nominal(a.netlist(), &lib))
                .critical_ps()
        };
        let ratio = d32 / d8;
        assert!(
            (3.0..5.0).contains(&ratio),
            "32-bit ripple should be ~4x slower than 8-bit, got {ratio}"
        );
    }

    #[test]
    fn cell_count_is_linear_and_small() {
        let a = build(32);
        // 2 cells for the half adder + 2 per remaining bit.
        assert_eq!(a.netlist().cell_count(), 2 + 31 * 2);
    }
}
