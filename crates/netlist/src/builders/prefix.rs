//! Parallel-prefix adders: Kogge-Stone, Brent-Kung and Sklansky.
//!
//! All three compute group generate/propagate pairs over a prefix network
//! and differ only in the network shape: Kogge-Stone is the fastest and
//! largest (minimal depth, fanout 2), Brent-Kung the smallest and slowest
//! of the family (≈2·log2 n levels), Sklansky in between (log2 n levels but
//! high fanout, which the load-dependent delay model penalizes —
//! realistically).

use crate::graph::{NetId, NetlistBuilder};

use super::{pg_init, sum_from_carries, AdderNetlist};

/// Prefix network shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefixScheme {
    /// Minimal-depth, fanout-2, O(n log n) nodes.
    KoggeStone,
    /// Minimal-node, ≈2 log2(n) depth.
    BrentKung,
    /// Log-depth divide-and-conquer with growing fanout.
    Sklansky,
}

impl PrefixScheme {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PrefixScheme::KoggeStone => "kogge_stone",
            PrefixScheme::BrentKung => "brent_kung",
            PrefixScheme::Sklansky => "sklansky",
        }
    }
}

/// `(G, P) = (Gh | Ph·Gl, Ph·Pl)` — the prefix combine operator.
fn combine(b: &mut NetlistBuilder, gh: NetId, ph: NetId, gl: NetId, pl: NetId) -> (NetId, NetId) {
    (b.ao21(ph, gl, gh), b.and2(ph, pl))
}

/// Builds the prefix carry network over per-bit (g, p) pairs and returns
/// `G[i:0]`/`P[i:0]` for every bit position `i`.
fn prefix_network(
    b: &mut NetlistBuilder,
    scheme: PrefixScheme,
    g0: &[NetId],
    p0: &[NetId],
) -> (Vec<NetId>, Vec<NetId>) {
    let n = g0.len();
    let mut g = g0.to_vec();
    let mut p = p0.to_vec();
    match scheme {
        PrefixScheme::KoggeStone => {
            let mut d = 1;
            while d < n {
                let (prev_g, prev_p) = (g.clone(), p.clone());
                for i in d..n {
                    let (ng, np) = combine(b, prev_g[i], prev_p[i], prev_g[i - d], prev_p[i - d]);
                    g[i] = ng;
                    p[i] = np;
                }
                d *= 2;
            }
        }
        PrefixScheme::BrentKung => {
            assert!(
                n.is_power_of_two(),
                "Brent-Kung requires power-of-two width"
            );
            // Up-sweep.
            let mut d = 1;
            while 2 * d <= n {
                let mut i = 2 * d - 1;
                while i < n {
                    let (ng, np) = combine(b, g[i], p[i], g[i - d], p[i - d]);
                    g[i] = ng;
                    p[i] = np;
                    i += 2 * d;
                }
                d *= 2;
            }
            // Down-sweep.
            d = n / 4;
            while d >= 1 {
                let mut i = 3 * d - 1;
                while i < n {
                    let (ng, np) = combine(b, g[i], p[i], g[i - d], p[i - d]);
                    g[i] = ng;
                    p[i] = np;
                    i += 2 * d;
                }
                d /= 2;
            }
        }
        PrefixScheme::Sklansky => {
            let mut level = 0usize;
            while (1usize << level) < n {
                let step = 1usize << level;
                for i in 0..n {
                    if i & step != 0 {
                        let j = (i & !(2 * step - 1)) + step - 1;
                        let (ng, np) = combine(b, g[i], p[i], g[j], p[j]);
                        g[i] = ng;
                        p[i] = np;
                    }
                }
                level += 1;
            }
        }
    }
    (g, p)
}

/// Builds a prefix sum/carry structure over operand bit slices.
///
/// Returns the sum bits and the carry-out. A `cin` of `None` is a constant
/// 0 and costs nothing; a real carry-in adds one AO21 per carry.
///
/// # Panics
///
/// Panics on empty/mismatched operands, or a non-power-of-two width with
/// [`PrefixScheme::BrentKung`].
pub(crate) fn prefix_chain(
    b: &mut NetlistBuilder,
    scheme: PrefixScheme,
    a_bits: &[NetId],
    b_bits: &[NetId],
    cin: Option<NetId>,
) -> (Vec<NetId>, NetId) {
    assert!(!a_bits.is_empty(), "prefix adder needs at least one bit");
    assert_eq!(a_bits.len(), b_bits.len(), "operand width mismatch");
    let n = a_bits.len();
    let (g0, p0) = pg_init(b, a_bits, b_bits);
    let (gg, gp) = prefix_network(b, scheme, &g0, &p0);

    // Carry into bit i (i >= 1) is G[i-1:0], plus the cin term when present:
    // c_i = G[i-1:0] | P[i-1:0] & cin.
    let mut carries: Vec<Option<NetId>> = Vec::with_capacity(n);
    carries.push(cin);
    for i in 1..n {
        let c = match cin {
            None => gg[i - 1],
            Some(c0) => b.ao21(gp[i - 1], c0, gg[i - 1]),
        };
        carries.push(Some(c));
    }
    let cout = match cin {
        None => gg[n - 1],
        Some(c0) => b.ao21(gp[n - 1], c0, gg[n - 1]),
    };
    let sums = sum_from_carries(b, &p0, &carries);
    (sums, cout)
}

/// Builds a standalone `width`-bit parallel-prefix adder.
///
/// # Panics
///
/// Panics if `width` is 0 or above 63, or if the scheme requires a
/// power-of-two width and `width` is not one.
#[must_use]
pub fn build(width: u32, scheme: PrefixScheme) -> AdderNetlist {
    assert!(width > 0 && width <= 63, "width must be in 1..=63");
    let mut b = NetlistBuilder::new(format!("{}{width}", scheme.name()));
    let a_bits = b.input_bus("a", width);
    let b_bits = b.input_bus("b", width);
    let (sums, cout) = prefix_chain(&mut b, scheme, &a_bits, &b_bits, None);
    b.mark_output_bus(&sums, "sum");
    b.mark_output(cout, format!("sum[{width}]"));
    AdderNetlist::from_netlist(b.finish().expect("prefix adder is well-formed"), width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::ripple;
    use crate::builders::test_support::check_adder;
    use crate::cell::CellLibrary;
    use crate::sta::StaReport;
    use crate::timing::DelayAnnotation;

    fn critical(adder: &AdderNetlist) -> f64 {
        let lib = CellLibrary::industrial_65nm();
        StaReport::analyze(
            adder.netlist(),
            &DelayAnnotation::nominal(adder.netlist(), &lib),
        )
        .critical_ps()
    }

    #[test]
    fn kogge_stone_exhaustive_small() {
        check_adder(&build(4, PrefixScheme::KoggeStone));
        check_adder(&build(5, PrefixScheme::KoggeStone)); // non-power-of-two
    }

    #[test]
    fn brent_kung_exhaustive_small() {
        check_adder(&build(4, PrefixScheme::BrentKung));
    }

    #[test]
    fn sklansky_exhaustive_small() {
        check_adder(&build(4, PrefixScheme::Sklansky));
        check_adder(&build(6, PrefixScheme::Sklansky));
    }

    #[test]
    fn all_schemes_32_bit_randomized() {
        for scheme in [
            PrefixScheme::KoggeStone,
            PrefixScheme::BrentKung,
            PrefixScheme::Sklansky,
        ] {
            check_adder(&build(32, scheme));
        }
    }

    #[test]
    fn schemes_16_and_8_bit() {
        for scheme in [
            PrefixScheme::KoggeStone,
            PrefixScheme::BrentKung,
            PrefixScheme::Sklansky,
        ] {
            check_adder(&build(8, scheme));
            check_adder(&build(16, scheme));
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn brent_kung_rejects_odd_width() {
        let _ = build(12, PrefixScheme::BrentKung);
    }

    #[test]
    fn prefix_beats_ripple_delay_at_32() {
        let r = critical(&ripple::build(32));
        for scheme in [
            PrefixScheme::KoggeStone,
            PrefixScheme::BrentKung,
            PrefixScheme::Sklansky,
        ] {
            let p = critical(&build(32, scheme));
            assert!(p < r / 2.0, "{} not much faster than ripple", scheme.name());
        }
    }

    #[test]
    fn kogge_stone_is_fastest_and_biggest() {
        let ks = build(32, PrefixScheme::KoggeStone);
        let bk = build(32, PrefixScheme::BrentKung);
        assert!(critical(&ks) < critical(&bk));
        assert!(ks.netlist().cell_count() > bk.netlist().cell_count());
    }

    #[test]
    fn carry_in_variant_is_correct() {
        // Wrap prefix_chain with an explicit carry-in and check a+b+1.
        let mut b = NetlistBuilder::new("ks_cin");
        let a_bits = b.input_bus("a", 8);
        let b_bits = b.input_bus("b", 8);
        let one = b.const1();
        let (sums, cout) = prefix_chain(
            &mut b,
            PrefixScheme::KoggeStone,
            &a_bits,
            &b_bits,
            Some(one),
        );
        b.mark_output_bus(&sums, "sum");
        b.mark_output(cout, "sum[8]");
        let nl = b.finish().unwrap();
        let adder = AdderNetlist::from_netlist(nl, 8);
        for (x, y) in [(0u64, 0u64), (255, 255), (127, 1), (200, 55)] {
            assert_eq!(adder.add(x, y), x + y + 1);
        }
    }
}
