//! Block-structured adders: 4-bit carry-lookahead groups, carry-skip and
//! carry-select.
//!
//! These fill the area/delay space between ripple and parallel-prefix: the
//! structures a cost-driven synthesis picks when the timing constraint is
//! loose enough — which is exactly how the paper's ISA sub-adders end up
//! with data-dependent (rarely-sensitized) near-critical paths.

use crate::graph::{NetId, NetlistBuilder};

use super::{pg_init, ripple::ripple_chain, sum_from_carries, AdderNetlist};

/// Builds a chain of flat 4-bit carry-lookahead groups.
///
/// Within each group the carries are two-level lookahead logic; between
/// groups the carry ripples through one AO21 per group (`c = G + P·c`).
///
/// # Panics
///
/// Panics if the width is not a positive multiple of 4.
pub(crate) fn cla4_chain(
    b: &mut NetlistBuilder,
    a_bits: &[NetId],
    b_bits: &[NetId],
    cin: Option<NetId>,
) -> (Vec<NetId>, NetId) {
    let n = a_bits.len();
    assert!(
        n > 0 && n.is_multiple_of(4),
        "CLA4 requires a positive multiple of 4"
    );
    assert_eq!(a_bits.len(), b_bits.len(), "operand width mismatch");
    let (g, p) = pg_init(b, a_bits, b_bits);

    let mut carries: Vec<Option<NetId>> = vec![None; n];
    carries[0] = cin;
    let mut block_cin = cin;
    for blk in 0..n / 4 {
        let o = blk * 4;
        let (g0, g1, g2, g3) = (g[o], g[o + 1], g[o + 2], g[o + 3]);
        let (p0, p1, p2, p3) = (p[o], p[o + 1], p[o + 2], p[o + 3]);

        // c[o+1] = g0 | p0*c ; c[o+2] = g1 | p1*g0 | p1*p0*c ;
        // c[o+3] = g2 | p2*g1 | p2*p1*g0 | p2*p1*p0*c ;
        // Gblk   = g3 | p3*g2 | p3*p2*g1 | p3*p2*p1*g0 ; Pblk = p3*p2*p1*p0.
        let p1p0 = b.and2(p1, p0);
        let p2p1 = b.and2(p2, p1);
        let p3p2 = b.and2(p3, p2);
        let p2p1p0 = b.and2(p2, p1p0);
        let p3p2p1 = b.and2(p3p2, p1);

        let c1 = match block_cin {
            None => g0,
            Some(c) => b.ao21(p0, c, g0),
        };
        carries[o + 1] = Some(c1);

        let t_g1 = b.and2(p1, g0);
        let c2 = match block_cin {
            None => b.or2(g1, t_g1),
            Some(c) => {
                let t_c = b.and2(p1p0, c);
                b.or3(g1, t_g1, t_c)
            }
        };
        carries[o + 2] = Some(c2);

        let t2_g1 = b.and2(p2, g1);
        let t2_g0 = b.and2(p2p1, g0);
        let c3 = match block_cin {
            None => b.or3(g2, t2_g1, t2_g0),
            Some(c) => {
                let t2_c = b.and2(p2p1p0, c);
                let lhs = b.or3(g2, t2_g1, t2_g0);
                b.or2(lhs, t2_c)
            }
        };
        carries[o + 3] = Some(c3);

        let t3_g2 = b.and2(p3, g2);
        let t3_g1 = b.and2(p3p2, g1);
        let t3_g0 = b.and2(p3p2p1, g0);
        let g_blk = {
            let lhs = b.or3(g3, t3_g2, t3_g1);
            b.or2(lhs, t3_g0)
        };
        let p_blk = b.and2(p3p2p1, p0);
        let cout_blk = match block_cin {
            None => g_blk,
            Some(c) => b.ao21(p_blk, c, g_blk),
        };
        block_cin = Some(cout_blk);
        if o + 4 < n {
            carries[o + 4] = Some(cout_blk);
        }
    }
    let cout = block_cin.expect("at least one block processed");
    let sums = sum_from_carries(b, &p, &carries);
    (sums, cout)
}

/// Builds a carry-skip chain with `block` wide ripple groups and a
/// propagate-controlled bypass mux per group.
///
/// # Panics
///
/// Panics if the width is not a positive multiple of `block`, or `block < 2`.
pub(crate) fn skip_chain(
    b: &mut NetlistBuilder,
    a_bits: &[NetId],
    b_bits: &[NetId],
    cin: Option<NetId>,
    block: usize,
) -> (Vec<NetId>, NetId) {
    let n = a_bits.len();
    assert!(block >= 2, "skip blocks need at least 2 bits");
    assert!(
        n > 0 && n.is_multiple_of(block),
        "carry-skip requires width divisible by the block size"
    );
    let mut sums = Vec::with_capacity(n);
    let mut carry = cin;
    for blk in 0..n / block {
        let range = blk * block..(blk + 1) * block;
        let a_blk = &a_bits[range.clone()];
        let b_blk = &b_bits[range];
        // Ripple inside the block; a real carry-in net is needed for the
        // bypass, so materialize a constant when absent.
        let cin_net = match carry {
            Some(c) => c,
            None => b.const0(),
        };
        let (s_blk, ripple_cout) = ripple_chain(b, a_blk, b_blk, Some(cin_net));
        sums.extend_from_slice(&s_blk);
        // Block propagate = AND of per-bit propagates.
        let props: Vec<NetId> = a_blk
            .iter()
            .zip(b_blk)
            .map(|(&x, &y)| b.xor2(x, y))
            .collect();
        let p_blk = b.reduce_tree(&props, |bb, l, r| bb.and2(l, r));
        // Bypass: when the whole block propagates, the carry-out is the
        // carry-in without waiting for the ripple.
        let cout = b.mux2(ripple_cout, cin_net, p_blk);
        carry = Some(cout);
    }
    (sums, carry.expect("at least one block processed"))
}

/// Builds a carry-select chain with `block` wide groups: each non-first
/// group is computed twice (carry 0 and 1) and muxed by the incoming carry.
///
/// # Panics
///
/// Panics if the width is not a positive multiple of `block`.
pub(crate) fn select_chain(
    b: &mut NetlistBuilder,
    a_bits: &[NetId],
    b_bits: &[NetId],
    cin: Option<NetId>,
    block: usize,
) -> (Vec<NetId>, NetId) {
    let n = a_bits.len();
    assert!(
        n > 0 && block > 0 && n.is_multiple_of(block),
        "carry-select requires width divisible by the block size"
    );
    let mut sums = Vec::with_capacity(n);
    let mut carry: Option<NetId> = cin;
    for blk in 0..n / block {
        let range = blk * block..(blk + 1) * block;
        let a_blk = &a_bits[range.clone()];
        let b_blk = &b_bits[range];
        match carry {
            None => {
                // First group with constant-0 carry-in: single ripple.
                let (s_blk, cout) = ripple_chain(b, a_blk, b_blk, None);
                sums.extend_from_slice(&s_blk);
                carry = Some(cout);
            }
            Some(c) => {
                let zero = b.const0();
                let one = b.const1();
                let (s0, cout0) = ripple_chain(b, a_blk, b_blk, Some(zero));
                let (s1, cout1) = ripple_chain(b, a_blk, b_blk, Some(one));
                for (x0, x1) in s0.iter().zip(&s1) {
                    sums.push(b.mux2(*x0, *x1, c));
                }
                carry = Some(b.mux2(cout0, cout1, c));
            }
        }
    }
    (sums, carry.expect("at least one block processed"))
}

/// Block-structured adder family selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockScheme {
    /// Flat 4-bit carry-lookahead groups chained by `G + P·c`.
    Cla4,
    /// Carry-skip with the given ripple block width.
    CarrySkip(u32),
    /// Carry-select with the given block width.
    CarrySelect(u32),
}

impl BlockScheme {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            BlockScheme::Cla4 => "cla4".to_owned(),
            BlockScheme::CarrySkip(k) => format!("carry_skip{k}"),
            BlockScheme::CarrySelect(k) => format!("carry_select{k}"),
        }
    }
}

/// Builds a standalone block-structured adder.
///
/// # Panics
///
/// Panics if the width is incompatible with the scheme's block size.
#[must_use]
pub fn build(width: u32, scheme: BlockScheme) -> AdderNetlist {
    assert!(width > 0 && width <= 63, "width must be in 1..=63");
    let mut b = NetlistBuilder::new(format!("{}_{width}", scheme.name()));
    let a_bits = b.input_bus("a", width);
    let b_bits = b.input_bus("b", width);
    let (sums, cout) = match scheme {
        BlockScheme::Cla4 => cla4_chain(&mut b, &a_bits, &b_bits, None),
        BlockScheme::CarrySkip(k) => skip_chain(&mut b, &a_bits, &b_bits, None, k as usize),
        BlockScheme::CarrySelect(k) => select_chain(&mut b, &a_bits, &b_bits, None, k as usize),
    };
    b.mark_output_bus(&sums, "sum");
    b.mark_output(cout, format!("sum[{width}]"));
    AdderNetlist::from_netlist(b.finish().expect("block adder is well-formed"), width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::ripple;
    use crate::builders::test_support::check_adder;
    use crate::cell::CellLibrary;
    use crate::sta::StaReport;
    use crate::timing::DelayAnnotation;

    fn critical(adder: &AdderNetlist) -> f64 {
        let lib = CellLibrary::industrial_65nm();
        StaReport::analyze(
            adder.netlist(),
            &DelayAnnotation::nominal(adder.netlist(), &lib),
        )
        .critical_ps()
    }

    #[test]
    fn cla4_exhaustive_4_bit() {
        check_adder(&build(4, BlockScheme::Cla4));
    }

    #[test]
    fn cla4_wider() {
        check_adder(&build(8, BlockScheme::Cla4));
        check_adder(&build(16, BlockScheme::Cla4));
        check_adder(&build(32, BlockScheme::Cla4));
    }

    #[test]
    fn skip_exhaustive_and_wide() {
        check_adder(&build(4, BlockScheme::CarrySkip(2)));
        check_adder(&build(8, BlockScheme::CarrySkip(4)));
        check_adder(&build(16, BlockScheme::CarrySkip(4)));
        check_adder(&build(32, BlockScheme::CarrySkip(4)));
        check_adder(&build(32, BlockScheme::CarrySkip(8)));
    }

    #[test]
    fn select_exhaustive_and_wide() {
        check_adder(&build(4, BlockScheme::CarrySelect(2)));
        check_adder(&build(8, BlockScheme::CarrySelect(4)));
        check_adder(&build(16, BlockScheme::CarrySelect(4)));
        check_adder(&build(32, BlockScheme::CarrySelect(8)));
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn cla4_rejects_width_6() {
        let _ = build(6, BlockScheme::Cla4);
    }

    #[test]
    #[should_panic(expected = "divisible by the block size")]
    fn skip_rejects_mismatched_block() {
        let _ = build(10, BlockScheme::CarrySkip(4));
    }

    #[test]
    fn block_adders_beat_ripple_at_32() {
        let r = critical(&ripple::build(32));
        for scheme in [BlockScheme::Cla4, BlockScheme::CarrySelect(8)] {
            let c = critical(&build(32, scheme));
            assert!(c < r, "{} slower than ripple", scheme.name());
        }
    }

    #[test]
    fn carry_skip_structural_path_is_a_false_path() {
        // Pure structural STA cannot see that the bypass mux makes the full
        // ripple chain a false path, so carry-skip looks *slower* than
        // ripple to STA — the textbook reason skip adders need false-path
        // constraints in commercial flows. Pin that behaviour down.
        let r = critical(&ripple::build(32));
        let s = critical(&build(32, BlockScheme::CarrySkip(4)));
        assert!(s > r, "STA must report the structural (false) path");
    }

    #[test]
    fn skip_worst_case_path_is_sensitizable() {
        // All-propagate pattern: a = 0xAAAA..., b = !a; adding 1 forces the
        // longest functional transition. Functional correctness only here;
        // the timing aspect is exercised by the simulator crate.
        let adder = build(16, BlockScheme::CarrySkip(4));
        let a = 0xAAAAu64;
        let b = !a & 0xFFFF;
        assert_eq!(adder.add(a, b), 0xFFFF);
        assert_eq!(adder.add(a, b + 1), 0x10000);
    }
}
