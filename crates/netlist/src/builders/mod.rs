//! Gate-level adder generators.
//!
//! These play the role of Design Compiler's arithmetic architecture
//! library: several classic adder topologies with different area/delay
//! trade-offs ([`ripple`], [`prefix`] parallel-prefix families, [`blocks`]
//! carry-lookahead/skip/select), plus the Inexact Speculative Adder
//! assembly ([`isa`]) that stitches SPEC, sub-ADD and COMP blocks together
//! exactly as in Fig. 1 of the paper.

pub mod blocks;
pub mod isa;
pub mod prefix;
pub mod ripple;

use isa_core::LaneBatch;

use crate::graph::{NetId, Netlist, NetlistBuilder};
use crate::tape::InstructionTape;

/// An adder implementation choice — the architectural degree of freedom a
/// cost-driven synthesis explores under a timing constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdderTopology {
    /// Ripple-carry: smallest, slowest.
    Ripple,
    /// Chained flat 4-bit carry-lookahead groups.
    Cla4,
    /// Carry-skip with the given ripple block width.
    CarrySkip(u32),
    /// Carry-select with the given block width.
    CarrySelect(u32),
    /// Brent-Kung parallel prefix.
    BrentKung,
    /// Sklansky parallel prefix.
    Sklansky,
    /// Kogge-Stone parallel prefix: fastest, largest.
    KoggeStone,
}

/// All topologies a synthesis run considers, with representative block
/// sizes.
pub const CANDIDATE_TOPOLOGIES: [AdderTopology; 9] = [
    AdderTopology::Ripple,
    AdderTopology::CarrySkip(2),
    AdderTopology::CarrySkip(4),
    AdderTopology::CarrySelect(4),
    AdderTopology::CarrySelect(8),
    AdderTopology::Cla4,
    AdderTopology::BrentKung,
    AdderTopology::Sklansky,
    AdderTopology::KoggeStone,
];

impl AdderTopology {
    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            AdderTopology::Ripple => "ripple".to_owned(),
            AdderTopology::Cla4 => "cla4".to_owned(),
            AdderTopology::CarrySkip(k) => format!("carry_skip{k}"),
            AdderTopology::CarrySelect(k) => format!("carry_select{k}"),
            AdderTopology::BrentKung => "brent_kung".to_owned(),
            AdderTopology::Sklansky => "sklansky".to_owned(),
            AdderTopology::KoggeStone => "kogge_stone".to_owned(),
        }
    }

    /// Whether the topology can implement the given operand width.
    #[must_use]
    pub fn supports_width(&self, width: u32) -> bool {
        if width == 0 || width > 63 {
            return false;
        }
        match self {
            AdderTopology::Ripple | AdderTopology::Sklansky | AdderTopology::KoggeStone => true,
            AdderTopology::Cla4 => width.is_multiple_of(4),
            AdderTopology::CarrySkip(k) => *k >= 2 && width.is_multiple_of(*k) && width > *k,
            AdderTopology::CarrySelect(k) => *k >= 1 && width.is_multiple_of(*k) && width > *k,
            AdderTopology::BrentKung => width.is_power_of_two(),
        }
    }

    /// Builds the sum/carry chain of this topology over operand bit slices.
    ///
    /// # Panics
    ///
    /// Panics if the topology does not support the slice width (check with
    /// [`Self::supports_width`] first).
    pub(crate) fn chain(
        &self,
        b: &mut NetlistBuilder,
        a_bits: &[NetId],
        b_bits: &[NetId],
        cin: Option<NetId>,
    ) -> (Vec<NetId>, NetId) {
        match self {
            AdderTopology::Ripple => ripple::ripple_chain(b, a_bits, b_bits, cin),
            AdderTopology::Cla4 => blocks::cla4_chain(b, a_bits, b_bits, cin),
            AdderTopology::CarrySkip(k) => blocks::skip_chain(b, a_bits, b_bits, cin, *k as usize),
            AdderTopology::CarrySelect(k) => {
                blocks::select_chain(b, a_bits, b_bits, cin, *k as usize)
            }
            AdderTopology::BrentKung => {
                prefix::prefix_chain(b, prefix::PrefixScheme::BrentKung, a_bits, b_bits, cin)
            }
            AdderTopology::Sklansky => {
                prefix::prefix_chain(b, prefix::PrefixScheme::Sklansky, a_bits, b_bits, cin)
            }
            AdderTopology::KoggeStone => {
                prefix::prefix_chain(b, prefix::PrefixScheme::KoggeStone, a_bits, b_bits, cin)
            }
        }
    }
}

/// Builds a standalone exact adder of the given width and topology.
///
/// # Panics
///
/// Panics if the topology does not support the width.
#[must_use]
pub fn build_exact(width: u32, topology: AdderTopology) -> AdderNetlist {
    assert!(
        topology.supports_width(width),
        "{} cannot implement width {width}",
        topology.name()
    );
    let mut b = NetlistBuilder::new(format!("exact{width}_{}", topology.name()));
    let a_bits = b.input_bus("a", width);
    let b_bits = b.input_bus("b", width);
    let (sums, cout) = topology.chain(&mut b, &a_bits, &b_bits, None);
    b.mark_output_bus(&sums, "sum");
    b.mark_output(cout, format!("sum[{width}]"));
    AdderNetlist::from_netlist(b.finish().expect("exact adder is well-formed"), width)
}

/// A gate-level adder with its I/O convention attached.
///
/// Inputs are `a[0..width]` then `b[0..width]` (LSB first); outputs are
/// `sum[0..=width]` with the carry-out as the last bit, matching
/// [`isa_core::Adder`]'s behavioural convention.
#[derive(Debug, Clone, PartialEq)]
pub struct AdderNetlist {
    netlist: Netlist,
    width: u32,
}

impl AdderNetlist {
    /// Wraps a netlist that follows the adder I/O convention.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's I/O counts do not match `width`.
    #[must_use]
    pub fn from_netlist(netlist: Netlist, width: u32) -> Self {
        assert_eq!(
            netlist.inputs().len(),
            2 * width as usize,
            "adder of width {width} must have {} inputs",
            2 * width
        );
        assert_eq!(
            netlist.outputs().len(),
            width as usize + 1,
            "adder of width {width} must have {} outputs",
            width + 1
        );
        Self { netlist, width }
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Extracts the underlying netlist.
    #[must_use]
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Packs two operands into the netlist's primary-input ordering.
    #[must_use]
    pub fn input_values(&self, a: u64, b: u64) -> Vec<bool> {
        let w = self.width;
        let mut values = Vec::with_capacity(2 * w as usize);
        for i in 0..w {
            values.push((a >> i) & 1 == 1);
        }
        for i in 0..w {
            values.push((b >> i) & 1 == 1);
        }
        values
    }

    /// Zero-delay functional addition (the netlist's settled output).
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        self.netlist.evaluate_outputs_u64(&self.input_values(a, b))
    }

    /// Packs a 64-lane operand batch into the netlist's primary-input
    /// ordering: one plane per input pin (`a[0..width]` then
    /// `b[0..width]`), the word-level counterpart of
    /// [`Self::input_values`].
    ///
    /// # Panics
    ///
    /// Panics if the batch width differs from the adder width.
    #[must_use]
    pub fn input_planes(&self, batch: &LaneBatch) -> Vec<u64> {
        assert_eq!(
            batch.width(),
            self.width,
            "batch width {} vs adder width {}",
            batch.width(),
            self.width
        );
        let mut planes = Vec::with_capacity(2 * self.width as usize);
        planes.extend_from_slice(batch.a_planes());
        planes.extend_from_slice(batch.b_planes());
        planes
    }

    /// Zero-delay functional addition of a whole operand stream, 64 lanes
    /// per topological sweep. Bit-for-bit equal to mapping [`Self::add`]
    /// over `pairs`, at roughly 1/64th of the gate evaluations. All plane
    /// and net-value buffers are reused across the stream's chunks.
    #[must_use]
    pub fn add_batch(&self, pairs: &[(u64, u64)]) -> Vec<u64> {
        let w = self.width as usize;
        let mut out = Vec::with_capacity(pairs.len());
        let mut a_planes = Vec::new();
        let mut b_planes = Vec::new();
        let mut input_planes = Vec::with_capacity(2 * w);
        let mut values = Vec::new();
        let mut planes = Vec::new();
        for chunk in pairs.chunks(isa_core::LANES) {
            isa_core::pack_planes_into(self.width, chunk, &mut a_planes, &mut b_planes);
            input_planes.clear();
            input_planes.extend_from_slice(&a_planes);
            input_planes.extend_from_slice(&b_planes);
            self.netlist
                .evaluate_output_planes_into(&input_planes, &mut values, &mut planes);
            out.extend(LaneBatch::unpack_lanes(&planes, chunk.len()));
        }
        out
    }

    /// [`Self::add_batch`] through a precompiled [`InstructionTape`]:
    /// [`CHUNK`](crate::tape::CHUNK) 64-lane plane sets per topological
    /// sweep instead of one, so the op loop runs on 256/512-bit vectors.
    /// Bit-for-bit equal to [`Self::add_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the tape was not compiled from this adder's netlist.
    #[must_use]
    pub fn add_batch_with_tape(&self, tape: &InstructionTape, pairs: &[(u64, u64)]) -> Vec<u64> {
        use crate::tape::CHUNK;
        let w = self.width as usize;
        assert_eq!(tape.input_slots().len(), 2 * w, "tape/adder input mismatch");
        let mut out = Vec::with_capacity(pairs.len());
        let mut a_planes = Vec::new();
        let mut b_planes = Vec::new();
        let mut chunk_in = vec![[0u64; CHUNK]; 2 * w];
        let mut arena: Vec<[u64; CHUNK]> = Vec::new();
        let mut planes = Vec::with_capacity(w + 1);
        // Up to CHUNK 64-lane groups travel through one sweep.
        for group in pairs.chunks(isa_core::LANES * CHUNK) {
            let lane_chunks: Vec<&[(u64, u64)]> = group.chunks(isa_core::LANES).collect();
            chunk_in.fill([0; CHUNK]);
            for (j, chunk) in lane_chunks.iter().enumerate() {
                isa_core::pack_planes_into(self.width, chunk, &mut a_planes, &mut b_planes);
                for i in 0..w {
                    chunk_in[i][j] = a_planes[i];
                    chunk_in[w + i][j] = b_planes[i];
                }
            }
            tape.execute_into(&chunk_in, &mut arena);
            for (j, chunk) in lane_chunks.iter().enumerate() {
                planes.clear();
                planes.extend(tape.output_slots().iter().map(|&s| arena[s as usize][j]));
                out.extend(LaneBatch::unpack_lanes(&planes, chunk.len()));
            }
        }
        out
    }
}

/// Generate/propagate pair for each bit: `g = a & b`, `p = a ^ b`.
pub(crate) fn pg_init(
    b: &mut NetlistBuilder,
    a_bits: &[NetId],
    b_bits: &[NetId],
) -> (Vec<NetId>, Vec<NetId>) {
    let g = a_bits
        .iter()
        .zip(b_bits)
        .map(|(&x, &y)| b.and2(x, y))
        .collect();
    let p = a_bits
        .iter()
        .zip(b_bits)
        .map(|(&x, &y)| b.xor2(x, y))
        .collect();
    (g, p)
}

/// Final sum bits from propagate signals and per-bit carries:
/// `sum_i = p_i ^ c_i` (`c_0` may be absent for a constant-0 carry-in).
pub(crate) fn sum_from_carries(
    b: &mut NetlistBuilder,
    p: &[NetId],
    carries: &[Option<NetId>],
) -> Vec<NetId> {
    p.iter()
        .zip(carries)
        .map(|(&pi, c)| match c {
            Some(ci) => b.xor2(pi, *ci),
            None => b.buf(pi),
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::AdderNetlist;

    /// Exhaustive check for narrow adders, randomized for wide ones.
    pub(crate) fn check_adder(adder: &AdderNetlist) {
        let w = adder.width();
        if w <= 6 {
            for a in 0..(1u64 << w) {
                for b in 0..(1u64 << w) {
                    assert_eq!(adder.add(a, b), a + b, "w={w} a={a} b={b}");
                }
            }
        } else {
            let mask = (1u64 << w) - 1;
            let mut seed = 0x9E37_79B9_7F4A_7C15u64;
            for _ in 0..4000 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let a = seed & mask;
                let b = (seed >> 32).wrapping_mul(seed) & mask;
                assert_eq!(adder.add(a, b), a + b, "w={w} a={a:#x} b={b:#x}");
            }
            // Directed corners: carry chains and boundaries.
            for (a, b) in [
                (0, 0),
                (mask, 1),
                (mask, mask),
                (mask ^ 1, 1),
                (1u64 << (w - 1), 1u64 << (w - 1)),
                (0x5555_5555_5555_5555 & mask, 0xAAAA_AAAA_AAAA_AAAA & mask),
            ] {
                assert_eq!(adder.add(a, b), a + b, "w={w} a={a:#x} b={b:#x}");
            }
        }
    }
}
