//! Operand-adaptive timing safety classification for overclocked adders.
//!
//! An overclocking error is a rare event: it needs an operand pair (and
//! circuit history) that sensitizes a path longer than the clock period.
//! This module proves — per 64-lane batch step, with word operations only —
//! that most lanes *cannot* violate timing, so a batched simulator can give
//! them a single functional plane evaluation and spend event-driven
//! simulation only on the unsafe minority (`isa-timing-sim`'s filtered
//! runner).
//!
//! The hard contract is conservatism: the classifier may call a safe lane
//! unsafe (costing only speed), but must never call a truly-violating lane
//! safe (which would change results). Everything below is therefore an
//! *upper bound* on when switching activity can die out, built from the
//! same integer-femtosecond cell delays the event simulator uses
//! ([`ps_to_fs`]), so analytical path sums compare exactly against event
//! times.
//!
//! Three bounds compose (all per lane, all word ops at runtime):
//!
//! 1. **Static critical delay** (`crit_fs`): every commit caused by an
//!    input edge happens within the longest combinational path from a
//!    changed input — event chains follow topological paths. If the period
//!    exceeds the critical delay, *no* lane can ever violate (tier-0).
//! 2. **Per-pin exposure**: the longest path from each primary input pin
//!    to any output ([`StaReport::downstream_ps`](crate::sta::StaReport::downstream_ps)
//!    at the inputs). A lane's
//!    activity from one edge dies within the worst exposure among its
//!    *changed* pins, whatever the previous state — unchanged pins start
//!    no chains.
//! 3. **Carry-chain run bound** (`bound_fs[L]`): a run-limited arrival
//!    analysis specialised to the two carry structures the generators
//!    emit, both resting on the same controlling-value ("floating mode")
//!    argument anchored at primary inputs:
//!
//!    * **ripple chains** — MAJ3 cells whose two data inputs are the
//!      primary operand bits `a[i]`, `b[i]`. When the *new* vector has
//!      `p[i] = a[i] ^ b[i] = 0`, the MAJ3 output is pinned by its
//!      settled controlling pair within one cell delay, independent of
//!      the carry input — carries propagate at most along runs of
//!      `p = 1`, so chain cells take the worst run-limited window of
//!      stage delays instead of the full rippled arrival;
//!    * **prefix (group-PG) networks** — cells *semantically typed* as
//!      group propagate/generate over a bit span: `xor2`/`and2` of a
//!      primary pair are `P`/`G` of one bit, `and2` of two adjacent `P`s
//!      is their union's `P`, and `ao21(Ph, Gl, Gh)` with adjacent spans
//!      is the union's `G` (the identities hold whatever the builder
//!      meant, so typing cannot be wrong). A span wider than the longest
//!      propagate run must contain a `p = 0`, so its group `P` settles
//!      to 0 — which pins the AND above it, and reduces the `G` combine
//!      (and the carry-in term `G | P·cin`) to its *high* half, cutting
//!      off the deep low-side cone. That is how log-depth adders get
//!      operand-adaptive bounds below their static critical delay.
//!
//!    `bound_fs[L]` is the worst settle time over all vectors whose
//!    longest propagate run *within any analysis region* is at most `L`.
//!    Untyped logic (COMP, muxes, sum XORs) keeps its full static
//!    arrival, which keeps the bound sound for every topology.
//!
//! The multi-cycle bookkeeping (events from an earlier edge still in
//! flight at the next one) is a per-lane countdown of clock periods,
//! maintained from the same bounds; see [`StreamClassifier::step`].
//! Conservatism is pinned by exhaustive 8-bit tests and 32-bit
//! filtered-vs-bit-sliced parity tests at every figure clock point.

use isa_core::{lanes_with_run_at_least, LANES};

use crate::builders::AdderNetlist;
use crate::cell::CellKind;
use crate::graph::Netlist;
use crate::timing::{ps_to_fs, DelayAnnotation};

/// Per-design (netlist + die annotation) classifier artifacts, period
/// independent: build once per synthesized design, then derive a
/// [`StreamClassifier`] per (clock period, stream).
#[derive(Debug, Clone)]
pub struct LaneClassifier {
    width: usize,
    crit_fs: u64,
    /// Primary input pins in `input_planes` order (`a[0..w]` then
    /// `b[0..w]`) sorted by descending exposure: `(plane index,
    /// exposure_fs)`.
    pins_by_exposure: Vec<(u32, u64)>,
    /// `bound_fs[L]`: settle bound for new vectors whose longest
    /// **in-chain** propagate run is at most `L` (length `width + 1`).
    bound_fs: Vec<u64>,
    /// Maximal contiguous operand-position intervals covered by detected
    /// chains, `start..end`. Runs of `p = 1` only lengthen a carry chain
    /// while they stay inside one span (chains break at block boundaries,
    /// where the carry comes from non-chain logic at static arrival), so
    /// the runtime run criterion measures runs per span, not globally.
    run_regions: Vec<(usize, usize)>,
    /// Detected ripple carry-chain cells (diagnostics / tests).
    chain_cells: usize,
    /// Nets the prefix detector typed as a group **propagate** over a bit
    /// span, `(net, start..end)` — the spans whose zero-group-P pinning
    /// the bound DP relies on. Kept for the `isa-netlint` audit, which
    /// re-verifies each claim semantically against the netlist.
    p_spans: Vec<(crate::graph::NetId, (usize, usize))>,
    /// Nets typed as a group **generate** over a bit span (audit only —
    /// `G` spans never constrain the vector class).
    g_spans: Vec<(crate::graph::NetId, (usize, usize))>,
}

impl LaneClassifier {
    /// Builds the classifier for an adder netlist under one delay
    /// annotation (the die sample the simulator will run with).
    ///
    /// # Panics
    ///
    /// Panics if the annotation does not cover the netlist.
    #[must_use]
    pub fn build(adder: &AdderNetlist, annotation: &DelayAnnotation) -> Self {
        let netlist = adder.netlist();
        assert_eq!(
            annotation.len(),
            netlist.cell_count(),
            "annotation covers {} cells, netlist has {}",
            annotation.len(),
            netlist.cell_count()
        );
        let width = adder.width() as usize;
        let delays_fs: Vec<u64> = annotation.as_slice().iter().map(|&d| ps_to_fs(d)).collect();

        // Forward arrivals and critical delay, in exact femtoseconds.
        let arrival_fs = arrivals_fs(netlist, &delays_fs);
        let crit_fs = netlist
            .outputs()
            .iter()
            .map(|n| arrival_fs[n.index()])
            .max()
            .unwrap_or(0);

        // Backward exposure per net, then per primary input pin.
        let exposure_fs = exposures_fs(netlist, &delays_fs);
        let mut pins_by_exposure: Vec<(u32, u64)> = netlist
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, exposure_fs[n.index()]))
            .collect();
        pins_by_exposure.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // Carry-structure detection + run-limited bound table.
        let chain_pos = detect_chain_cells(netlist, width);
        let chain_cells = chain_pos.iter().flatten().count();
        let prefix = detect_prefix_spans(netlist, width);
        let regions = run_regions(netlist, &chain_pos, &prefix);
        let bound_fs = (0..=width)
            .map(|l| run_limited_bound_fs(netlist, &delays_fs, &chain_pos, &prefix, l))
            .collect::<Vec<u64>>();
        debug_assert!(bound_fs.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(
            bound_fs[width], crit_fs,
            "unrestricted runs must recover the static critical delay"
        );

        let collect_spans = |spans: &[Option<(usize, usize)>]| {
            spans
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|span| (crate::graph::NetId::from_index(i), span)))
                .collect::<Vec<_>>()
        };
        let p_spans = collect_spans(&prefix.p_span);
        let g_spans = collect_spans(&prefix.g_span);

        Self {
            width,
            crit_fs,
            pins_by_exposure,
            bound_fs,
            run_regions: regions,
            chain_cells,
            p_spans,
            g_spans,
        }
    }

    /// Operand width the classifier was built for.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The nets typed as group *propagate* signals, with their claimed bit
    /// spans `start..end`. Every zero-group-P pinning step in the bound DP
    /// presupposes these typings; `isa-netlint` re-proves each one
    /// semantically (the net must equal `AND of p[i]` over its span on a
    /// word-evaluation battery).
    #[must_use]
    pub fn typed_p_spans(&self) -> &[(crate::graph::NetId, (usize, usize))] {
        &self.p_spans
    }

    /// The nets typed as group *generate* signals, with their claimed bit
    /// spans `start..end` (see [`Self::typed_p_spans`]).
    #[must_use]
    pub fn typed_g_spans(&self) -> &[(crate::graph::NetId, (usize, usize))] {
        &self.g_spans
    }

    /// The static critical delay in femtoseconds — any strictly longer
    /// clock period is timing-safe for every lane and every history.
    #[must_use]
    pub fn critical_fs(&self) -> u64 {
        self.crit_fs
    }

    /// Settle bound (fs) for vectors with longest propagate run `<= L`.
    ///
    /// # Panics
    ///
    /// Panics if `run_len` exceeds the operand width.
    #[must_use]
    pub fn bound_fs(&self, run_len: usize) -> u64 {
        self.bound_fs[run_len]
    }

    /// Number of ripple carry-chain cells the bound table is specialised
    /// to (zero for prefix/CLA-only netlists, which fall back to the
    /// exposure and critical bounds).
    #[must_use]
    pub fn chain_cells(&self) -> usize {
        self.chain_cells
    }

    /// The operand-position spans of the detected (linked) carry chains;
    /// the run criterion measures propagate runs within these.
    #[must_use]
    pub fn run_regions(&self) -> &[(usize, usize)] {
        &self.run_regions
    }

    /// Starts per-stream classification state for one clock period: lanes
    /// begin in the circuit's reset state (all-zero inputs, settled), like
    /// both the scalar and the bit-sliced simulator.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive/finite.
    #[must_use]
    pub fn stream_classifier(&self, period_ps: f64) -> StreamClassifier {
        assert!(
            period_ps.is_finite() && period_ps > 0.0,
            "period must be positive"
        );
        let period_fs = ps_to_fs(period_ps).max(1);
        // Pins that can keep a lane busy across at least one full period;
        // pins below the period contribute countdown 0 and need no scan.
        let pin_ks: Vec<(u32, u32)> = self
            .pins_by_exposure
            .iter()
            .take_while(|&&(_, exp)| exp / period_fs >= 1)
            .map(|&(pin, exp)| (pin, (exp / period_fs) as u32))
            .collect();
        // The smallest run length whose bound reaches the period: lanes
        // containing such a run in some region are not proven to settle
        // within one period by the run criterion (0 = every lane, None =
        // even a full-width run settles). Only the one-period level
        // matters: the run bound never carries across edges (see `step`),
        // so deeper horizons would be computed and then discarded.
        let run_window = self.bound_fs.iter().position(|&b| b >= period_fs);
        StreamClassifier {
            width: self.width,
            pin_ks,
            run_window,
            run_regions: self.run_regions.clone(),
            prev_a: vec![0; self.width],
            prev_b: vec![0; self.width],
            p_scratch: vec![0; self.width],
            countdown: [0; LANES],
        }
    }
}

/// Per-(period, stream) classification state: previous operand planes and
/// the per-lane settle countdown.
#[derive(Debug, Clone)]
pub struct StreamClassifier {
    width: usize,
    /// `(plane index, periods-to-settle)` for pins whose exposure spans at
    /// least one period, exposure-descending.
    pin_ks: Vec<(u32, u32)>,
    /// One-period run window (see `stream_classifier`).
    run_window: Option<usize>,
    /// Chain position spans the run criterion scans (runs crossing a span
    /// boundary split — carries do not chain across blocks).
    run_regions: Vec<(usize, usize)>,
    prev_a: Vec<u64>,
    prev_b: Vec<u64>,
    p_scratch: Vec<u64>,
    /// Per-lane count of upcoming clock edges at which earlier activity
    /// may still be in flight (0 = settled at the next edge).
    countdown: [u32; LANES],
}

impl StreamClassifier {
    /// Classifies one batch step: the new operand planes are applied at
    /// this clock edge, and the returned mask has bit `l` set iff lane `l`
    /// is **proven safe** — its sampled outputs at the next edge equal the
    /// settled (functional) outputs of the new operands, so the lane needs
    /// no event simulation this step.
    ///
    /// Safety requires both:
    ///
    /// * every earlier edge's activity dies before this step's *sampling*
    ///   edge (countdown at most 1 — in-flight events may still commit
    ///   during this period, but none at or after the sample, so the
    ///   queue holds only no-op events when the outputs are read), and
    /// * this edge's activity dies within one period, by the cheaper of
    ///   the changed-pin exposure bound and the propagate-run bound (the
    ///   run bound's pinning is anchored at primary inputs, which never
    ///   glitch, so it holds against leftover in-flight events too).
    ///
    /// The countdown is then advanced: a step whose activity dies within
    /// its period (either criterion) leaves nothing behind; otherwise the
    /// *exposure* bound alone caps how many further edges the activity can
    /// span — a run bound beyond one period is not carried across edges,
    /// because the next edge may re-sensitize a chain that the run
    /// argument assumed blocked (in-flight carries can traverse positions
    /// whose propagate bit the new vector flips to 1, bounded only by the
    /// topological path — the exposure).
    ///
    /// # Panics
    ///
    /// Panics if the plane counts differ from the operand width.
    pub fn step(&mut self, a_planes: &[u64], b_planes: &[u64]) -> u64 {
        let w = self.width;
        assert_eq!(a_planes.len(), w, "expected {w} a-planes");
        assert_eq!(b_planes.len(), w, "expected {w} b-planes");

        // Exposure criterion: periods-to-settle of the worst changed pin.
        // Pins are scanned in descending exposure, so a lane's first hit is
        // its maximum; lanes never hit (unchanged, or only sub-period pins
        // changed) settle within the period.
        let mut k_exp = [0u32; LANES];
        let mut assigned = 0u64;
        for &(pin, k) in &self.pin_ks {
            let p = pin as usize;
            let changed = if p < w {
                self.prev_a[p] ^ a_planes[p]
            } else {
                self.prev_b[p - w] ^ b_planes[p - w]
            };
            let mut newly = changed & !assigned;
            if newly == 0 {
                continue;
            }
            assigned |= newly;
            while newly != 0 {
                k_exp[newly.trailing_zeros() as usize] = k;
                newly &= newly - 1;
            }
            if assigned == u64::MAX {
                break;
            }
        }

        // Run criterion: lanes whose new propagate vector contains the
        // one-period run window inside some analysis region are not
        // run-proven to settle this period. Runs are measured per region —
        // a propagate run crossing a block boundary does not lengthen any
        // single carry chain.
        let run_unsafe = match self.run_window {
            None => 0,
            Some(0) => u64::MAX,
            Some(window) => {
                for i in 0..w {
                    self.p_scratch[i] = a_planes[i] ^ b_planes[i];
                }
                self.run_regions
                    .iter()
                    .filter(|&&(s, e)| e - s >= window)
                    .fold(0u64, |acc, &(s, e)| {
                        acc | lanes_with_run_at_least(&self.p_scratch[s..e], window)
                    })
            }
        };

        let mut safe = 0u64;
        for (l, (count, &k)) in self.countdown.iter_mut().zip(&k_exp).enumerate() {
            let settles_now = k == 0 || run_unsafe >> l & 1 == 0;
            // countdown <= 1: old activity commits, if at all, strictly
            // before this step's sample edge. A safe step always leaves
            // countdown 0 behind (see below), so an unsafe run following
            // a safe step still starts from a fully settled launch edge —
            // the invariant the filtered runner's seeding relies on.
            if *count <= 1 && settles_now {
                safe |= 1u64 << l;
            }
            // Within-period settlement leaves nothing in flight; otherwise
            // only the path-attributed exposure bound survives the next
            // edge (see the method docs).
            let carry_over = if settles_now { 0 } else { k };
            *count = count.saturating_sub(1).max(carry_over);
        }

        self.prev_a.copy_from_slice(a_planes);
        self.prev_b.copy_from_slice(b_planes);
        safe
    }
}

/// Forward STA in integer femtoseconds (cells are in topological order).
fn arrivals_fs(netlist: &Netlist, delays_fs: &[u64]) -> Vec<u64> {
    let mut arrival = vec![0u64; netlist.net_count()];
    for (index, cell) in netlist.cells().iter().enumerate() {
        let input_arrival = cell
            .inputs
            .iter()
            .map(|n| arrival[n.index()])
            .max()
            .unwrap_or(0);
        arrival[cell.output.index()] = input_arrival + delays_fs[index];
    }
    arrival
}

/// Backward pass: longest path (fs) from each net to any primary output.
fn exposures_fs(netlist: &Netlist, delays_fs: &[u64]) -> Vec<u64> {
    let mut exposure = vec![0u64; netlist.net_count()];
    for index in (0..netlist.cell_count()).rev() {
        let cell = &netlist.cells()[index];
        let through = delays_fs[index] + exposure[cell.output.index()];
        for input in &cell.inputs {
            if through > exposure[input.index()] {
                exposure[input.index()] = through;
            }
        }
    }
    exposure
}

/// Detects ripple carry-chain cells: MAJ3 whose data pair are the primary
/// operand bits `a[i]` and `b[i]` of the same position `i`. Returns, per
/// cell, `Some((bit position, carry input net))`.
///
/// Only this exact shape admits the pinning argument (the controlling
/// pair settles at the edge itself because it is primary); anything else
/// conservatively keeps its full static arrival.
fn detect_chain_cells(netlist: &Netlist, width: usize) -> Vec<Option<(usize, u32)>> {
    // Map primary-input nets to their pin index.
    let mut pin_of_net = vec![usize::MAX; netlist.net_count()];
    for (i, n) in netlist.inputs().iter().enumerate() {
        pin_of_net[n.index()] = i;
    }
    netlist
        .cells()
        .iter()
        .map(|cell| {
            if cell.kind != CellKind::Maj3 {
                return None;
            }
            // Find the primary pair (a[i], b[i]); the remaining input is
            // the carry.
            for (x, y, c) in [(0, 1, 2), (0, 2, 1), (1, 2, 0)] {
                let px = pin_of_net[cell.inputs[x].index()];
                let py = pin_of_net[cell.inputs[y].index()];
                if px == usize::MAX || py == usize::MAX {
                    continue;
                }
                let (lo, hi) = (px.min(py), px.max(py));
                if lo < width && hi == lo + width {
                    return Some((lo, cell.inputs[c].index() as u32));
                }
            }
            None
        })
        .collect()
}

/// Maximal contiguous operand-position intervals of *linked* chain cells:
/// a span runs from a chain head (carry input driven by non-chain logic —
/// a SPEC block, skip mux, or the LSB half-adder) through every successor
/// whose carry input is the chain cell one position below. Positions that
/// are merely adjacent but not carry-linked (block boundaries) start a
/// new span. Where several chain cells share a position (carry-select's
/// two sub-chains) the position counts as linked if any of them is —
/// the longer span only over-approximates runs, which is conservative.
fn linked_run_regions(
    netlist: &Netlist,
    chain_pos: &[Option<(usize, u32)>],
) -> Vec<(usize, usize)> {
    let mut pos_of_out = vec![usize::MAX; netlist.net_count()];
    for (index, cp) in chain_pos.iter().enumerate() {
        if let Some((pos, _)) = cp {
            pos_of_out[netlist.cells()[index].output.index()] = *pos;
        }
    }
    // (position, linked-to-previous-position) per chain cell.
    let mut cells: Vec<(usize, bool)> = chain_pos
        .iter()
        .flatten()
        .map(|&(pos, carry)| {
            let prev = pos_of_out[carry as usize];
            (pos, prev != usize::MAX && prev + 1 == pos)
        })
        .collect();
    cells.sort_unstable();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for (pos, linked) in cells {
        if let Some(last) = spans.last_mut() {
            if last.1 == pos + 1 {
                continue; // same position: a parallel sub-chain, covered
            }
            if last.1 == pos && linked {
                last.1 = pos + 1; // carry-linked continuation
                continue;
            }
        }
        spans.push((pos, pos + 1)); // gap or unlinked adjacency: new chain
    }
    spans
}

/// Per-net group-propagate / group-generate typing of prefix (group-PG)
/// networks, derived from cell semantics alone:
///
/// * `xor2(a[i], b[i])` computes `P[i, i+1)`, `and2(a[i], b[i])`
///   computes `G[i, i+1)`;
/// * `and2` of two `P`s over adjacent spans computes their union's `P`;
/// * `ao21(Ph, Gl, Gh)` — `(Ph & Gl) | Gh` — with `Ph`/`Gh` over the
///   high span and `Gl` over the adjacent low span computes the union's
///   `G`.
///
/// Each rule is a boolean identity over the typed operands, so a match
/// *proves* the net's function: mistyping is impossible, untyped cells
/// are merely unoptimized.
#[derive(Debug, Clone)]
struct PrefixSpans {
    /// `P[a, b)` span per net.
    p_span: Vec<Option<(usize, usize)>>,
    /// `G[a, b)` span per net.
    g_span: Vec<Option<(usize, usize)>>,
}

fn detect_prefix_spans(netlist: &Netlist, width: usize) -> PrefixSpans {
    let mut pin_of_net = vec![usize::MAX; netlist.net_count()];
    for (i, n) in netlist.inputs().iter().enumerate() {
        pin_of_net[n.index()] = i;
    }
    let primary_pos = |net: crate::graph::NetId| -> Option<usize> {
        let pin = pin_of_net[net.index()];
        (pin != usize::MAX).then(|| if pin < width { pin } else { pin - width })
    };
    let mut spans = PrefixSpans {
        p_span: vec![None; netlist.net_count()],
        g_span: vec![None; netlist.net_count()],
    };
    for cell in netlist.cells() {
        let out = cell.output.index();
        match cell.kind {
            CellKind::Xor2 | CellKind::And2 => {
                let (x, y) = (cell.inputs[0], cell.inputs[1]);
                if let (Some(px), Some(py)) = (primary_pos(x), primary_pos(y)) {
                    // A primary pair (a[i], b[i]) is a P/G leaf.
                    if px == py && pin_of_net[x.index()] != pin_of_net[y.index()] {
                        if cell.kind == CellKind::Xor2 {
                            spans.p_span[out] = Some((px, px + 1));
                        } else {
                            spans.g_span[out] = Some((px, px + 1));
                        }
                    }
                } else if cell.kind == CellKind::And2 {
                    // P-combine over adjacent spans, either operand order.
                    if let (Some(s1), Some(s2)) = (spans.p_span[x.index()], spans.p_span[y.index()])
                    {
                        if s1.1 == s2.0 {
                            spans.p_span[out] = Some((s1.0, s2.1));
                        } else if s2.1 == s1.0 {
                            spans.p_span[out] = Some((s2.0, s1.1));
                        }
                    }
                }
            }
            CellKind::Ao21 => {
                // (in0 & in1) | in2 with in0 = Ph, in2 = Gh over one span.
                let (ph, gl, gh) = (cell.inputs[0], cell.inputs[1], cell.inputs[2]);
                if let (Some(hp), Some(hg)) = (spans.p_span[ph.index()], spans.g_span[gh.index()]) {
                    if hp == hg {
                        if let Some(lg) = spans.g_span[gl.index()] {
                            if lg.1 == hp.0 {
                                spans.g_span[out] = Some((lg.0, hp.1));
                            }
                        }
                        // in1 not a matching G (e.g. an external carry-in):
                        // the cell still computes G | P·cin over the span,
                        // which the DP exploits, but the output has no
                        // group typing.
                    }
                }
            }
            _ => {}
        }
    }
    spans
}

/// The operand-position regions the runtime run criterion scans: every
/// typed group-**propagate** span and every linked ripple-chain span,
/// merged into maximal intervals wherever they overlap
/// (adjacent-but-disjoint regions stay separate — a propagate run
/// crossing, say, an ISA block boundary lengthens no carry structure).
///
/// Only `P` spans matter: every pinning claim in the bound DP has the
/// form "this group `P`'s span is wider than `L`, so it contains a
/// `p = 0` and settles to 0" — `G` spans never constrain the vector
/// class (a `G` node typed across a speculative boundary, like the
/// carry-in combine `G | P·spec`, is semantically real but pins
/// nothing). Each `P` span and each chain position lies inside one
/// region, so "no run of `p = 1` longer than `L` inside any region"
/// implies every claim's precondition.
fn run_regions(
    netlist: &Netlist,
    chain_pos: &[Option<(usize, u32)>],
    prefix: &PrefixSpans,
) -> Vec<(usize, usize)> {
    let mut regions = linked_run_regions(netlist, chain_pos);
    for span in prefix.p_span.iter().flatten() {
        regions.push(*span);
    }
    regions.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in regions {
        match merged.last_mut() {
            // Strict overlap (not mere adjacency) merges.
            Some(last) if s < last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Modified STA: settle bound over all new vectors whose longest
/// propagate run *within any analysis region* is at most `max_run`, with
/// arbitrary previous state.
///
/// Ripple chain cells take the worst run-limited window (dynamic
/// programme over the trailing-run length `r`): `r = 0` means `p = 0` at
/// this position — the output is pinned one cell delay after the edge;
/// `r >= 1` means the output follows the carry input, whose own bound is
/// the predecessor's `r - 1` entry (or the full static arrival where the
/// carry comes from non-chain logic, e.g. a SPEC block or a skip mux).
///
/// Typed prefix cells use span pinning: a group `P` over a span wider
/// than `max_run` must contain a `p = 0` and settles to 0, so an AND
/// above it settles as soon as that input does, and an
/// `ao21(Ph, x, Gh)` — `G | P·x`, the combine and the carry-in form
/// alike — reduces to `Gh`, dropping the (deep) `x` cone.
///
/// All other cells use plain `max(inputs) + delay`.
fn run_limited_bound_fs(
    netlist: &Netlist,
    delays_fs: &[u64],
    chain_pos: &[Option<(usize, u32)>],
    prefix: &PrefixSpans,
    max_run: usize,
) -> u64 {
    let span_is_zero = |span: Option<(usize, usize)>| span.is_some_and(|(s, e)| e - s > max_run);
    let mut arrival = vec![0u64; netlist.net_count()];
    // Trailing-run DP vectors, stored per chain-cell output net.
    let mut dp: Vec<Option<Vec<u64>>> = vec![None; netlist.net_count()];
    for (index, cell) in netlist.cells().iter().enumerate() {
        let d = delays_fs[index];
        let out = cell.output.index();
        if let Some((_, carry_net)) = chain_pos[index] {
            let carry = carry_net as usize;
            let mut v = vec![0u64; max_run + 1];
            v[0] = d;
            for r in 1..=max_run {
                v[r] = d + dp[carry]
                    .as_ref()
                    .map_or(arrival[carry], |prev| prev[r - 1]);
            }
            arrival[out] = v.iter().copied().max().unwrap_or(d);
            dp[out] = Some(v);
            continue;
        }
        let static_arrival = cell
            .inputs
            .iter()
            .map(|n| arrival[n.index()])
            .max()
            .unwrap_or(0)
            + d;
        arrival[out] = match cell.kind {
            // AND with a group-P operand whose span exceeds the run
            // limit: that operand is a settled controlling 0 — the
            // output pins to 0 one delay after it, whatever the other
            // operand does.
            CellKind::And2 => cell
                .inputs
                .iter()
                .filter(|n| span_is_zero(prefix.p_span[n.index()]))
                .map(|n| arrival[n.index()] + d)
                .chain([static_arrival])
                .min()
                .unwrap_or(static_arrival),
            // (x & y) | z with x or y a zero group-P: the AND term is a
            // settled 0, so the cell reduces to z — cutting off the other
            // AND operand's (deep) cone. This covers both the prefix
            // combine (z = Gh) and the carry-in form G | P·cin.
            CellKind::Ao21 => {
                let z = cell.inputs[2].index();
                cell.inputs[..2]
                    .iter()
                    .filter(|n| span_is_zero(prefix.p_span[n.index()]))
                    .map(|n| arrival[n.index()].max(arrival[z]) + d)
                    .chain([static_arrival])
                    .min()
                    .unwrap_or(static_arrival)
            }
            _ => static_arrival,
        };
    }
    netlist
        .outputs()
        .iter()
        .map(|n| arrival[n.index()])
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build_exact, AdderTopology};
    use crate::cell::CellLibrary;
    use crate::sta::StaReport;

    fn ripple(width: u32) -> (AdderNetlist, DelayAnnotation) {
        let adder = build_exact(width, AdderTopology::Ripple);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        (adder, ann)
    }

    #[test]
    fn ripple_chain_is_fully_detected() {
        let (adder, ann) = ripple(16);
        let cls = LaneClassifier::build(&adder, &ann);
        // One MAJ3 per bit except the half-adder LSB.
        assert_eq!(cls.chain_cells(), 15);
    }

    #[test]
    fn bound_table_is_monotone_and_recovers_critical() {
        let (adder, ann) = ripple(16);
        let cls = LaneClassifier::build(&adder, &ann);
        let sta = StaReport::analyze(adder.netlist(), &ann);
        assert_eq!(cls.critical_fs(), ps_to_fs(sta.critical_ps()));
        assert!(cls.bound_fs(0) < cls.bound_fs(8));
        assert!(cls.bound_fs(8) < cls.bound_fs(16));
        assert_eq!(cls.bound_fs(16), cls.critical_fs());
        // Short runs must cost far less than the full chain.
        assert!(cls.bound_fs(2) < cls.critical_fs() / 2);
    }

    #[test]
    fn ripple_spans_cover_the_whole_chain() {
        let (adder, ann) = ripple(16);
        let cls = LaneClassifier::build(&adder, &ann);
        // The LSB half-adder's P/G leaves plus one linked chain from the
        // half-adder's successor to the top.
        assert_eq!(cls.run_regions(), &[(0, 1), (1, 16)]);
    }

    #[test]
    fn isa_blocks_break_chains_at_boundaries() {
        use crate::builders::isa;
        use isa_core::IsaConfig;
        let cfg = IsaConfig::new(32, 8, 2, 0, 4).unwrap();
        let adder = isa::build(&cfg, AdderTopology::Ripple).unwrap();
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let cls = LaneClassifier::build(&adder, &ann);
        // Four ripple blocks (plus the LSB half-adder's leaf region);
        // carries enter each block from SPEC (or the half-adder), so no
        // region crosses a block boundary — a propagate run spanning two
        // blocks never flags a lane.
        assert!(cls.run_regions().len() >= 4);
        for &(s, e) in cls.run_regions() {
            assert_eq!(s / 8, (e - 1) / 8, "region {s}..{e} crosses a block");
        }
        // A full-width propagate run therefore costs only a block-length
        // chain: the bound saturates at the in-block maximum.
        assert_eq!(cls.bound_fs(8), cls.bound_fs(32));
    }

    #[test]
    fn prefix_adder_gets_span_pinned_bounds() {
        let adder = build_exact(16, AdderTopology::KoggeStone);
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        let cls = LaneClassifier::build(&adder, &ann);
        // No ripple chains — but the group-PG typing still yields
        // run-limited bounds below the static critical delay.
        assert_eq!(cls.chain_cells(), 0);
        assert!(cls.bound_fs(0) < cls.critical_fs());
        assert!(cls.bound_fs(0) <= cls.bound_fs(8));
        assert_eq!(cls.bound_fs(16), cls.critical_fs());
        // The whole operand range is one analysis region: runs anywhere
        // can lengthen prefix spans.
        assert_eq!(cls.run_regions(), &[(0, 16)]);
    }

    #[test]
    fn safe_period_classifies_everything_safe() {
        let (adder, ann) = ripple(8);
        let cls = LaneClassifier::build(&adder, &ann);
        let period_ps = (cls.critical_fs() + 1) as f64 / 1000.0;
        let mut stream = cls.stream_classifier(period_ps);
        let pairs: Vec<(u64, u64)> = (0..64u64).map(|i| (i * 37, i * 91)).collect();
        let batch = isa_core::LaneBatch::pack(8, &pairs);
        assert_eq!(stream.step(batch.a_planes(), batch.b_planes()), u64::MAX);
    }

    #[test]
    fn deep_overclock_flags_long_runs_unsafe_but_not_idle_lanes() {
        let (adder, ann) = ripple(16);
        let cls = LaneClassifier::build(&adder, &ann);
        // Period between the short-run bound and the full critical delay.
        let period_fs = (cls.bound_fs(2) + cls.critical_fs()) / 2;
        let mut stream = cls.stream_classifier(period_fs as f64 / 1000.0);
        // Lane 0: full-length carry chain (0xFFFF + 1). Lane 1: no carries.
        // Lane 2: unchanged from reset (0, 0).
        let pairs = [(0xFFFFu64, 1u64), (0x0F0F, 0x0000), (0, 0)];
        let batch = isa_core::LaneBatch::pack(16, &pairs);
        let safe = stream.step(batch.a_planes(), batch.b_planes());
        assert_eq!(safe & 1, 0, "full propagate run must be unsafe");
        assert_eq!(safe >> 1 & 1, 1, "carry-free operands are safe");
        assert_eq!(safe >> 2 & 1, 1, "an idle lane starts no activity");
    }

    #[test]
    fn countdown_keeps_lane_unsafe_after_a_violating_step() {
        let (adder, ann) = ripple(16);
        let cls = LaneClassifier::build(&adder, &ann);
        // Deep overclock: a third of the critical delay, so a full carry
        // wave spans three periods — it may still commit at or after the
        // *next* step's sample edge, which must therefore stay unsafe
        // even though that step itself is idle.
        let period_fs = cls.critical_fs() / 3 + 1;
        let mut stream = cls.stream_classifier(period_fs as f64 / 1000.0);
        let hot = [(0xFFFFu64, 1u64)];
        let batch = isa_core::LaneBatch::pack(16, &hot);
        assert_eq!(stream.step(batch.a_planes(), batch.b_planes()) & 1, 0);
        // Same operands again: no new activity, but the old carry wave
        // can outlive this step's sample edge.
        assert_eq!(
            stream.step(batch.a_planes(), batch.b_planes()) & 1,
            0,
            "lane must stay unsafe while earlier activity can reach the sample"
        );
        // Two more idle edges: the first still overlaps the wave's last
        // possible in-flight commits, but they die before its sample edge.
        assert_eq!(stream.step(batch.a_planes(), batch.b_planes()) & 1, 1);
        assert_eq!(stream.step(batch.a_planes(), batch.b_planes()) & 1, 1);
    }
}
