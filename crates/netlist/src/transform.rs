//! Netlist transformations: min-delay analysis and hold-fix buffer padding.
//!
//! Razor-style shadow latching requires every output's *shortest* path to
//! exceed the shadow margin, otherwise the next computation contaminates
//! the shadow sample (the classic short-path constraint). Commercial flows
//! enforce it by inserting buffers on fast paths ("hold fixing");
//! [`pad_min_delay`] performs that transformation while preserving the
//! original instances' annotated delays.

use crate::cell::{CellKind, CellLibrary};
use crate::graph::{CellId, NetDriver, NetId, Netlist, NetlistBuilder};
use crate::timing::DelayAnnotation;

/// Earliest possible arrival time of each net: the *minimum* delay from any
/// primary input (primary inputs arrive at 0; constants never change and
/// report infinity).
#[must_use]
pub fn min_arrivals_ps(netlist: &Netlist, annotation: &DelayAnnotation) -> Vec<f64> {
    let mut arrival = vec![f64::INFINITY; netlist.net_count()];
    for &input in netlist.inputs() {
        arrival[input.index()] = 0.0;
    }
    for index in 0..netlist.cell_count() {
        let id = CellId::from_index(index);
        let cell = netlist.cell(id);
        let earliest = cell
            .inputs
            .iter()
            .map(|n| arrival[n.index()])
            .fold(f64::INFINITY, f64::min);
        // Constant cells have no inputs: they never transition.
        let value = if cell.inputs.is_empty() {
            f64::INFINITY
        } else {
            earliest + annotation.delay_ps(id)
        };
        arrival[cell.output.index()] = value;
    }
    arrival
}

/// Inserts buffer chains in front of primary outputs whose minimum path
/// delay is below `margin_ps`, so that no input change can reach an output
/// within the margin. Original cells keep their annotated delays; inserted
/// buffers get the library's nominal buffer delay.
///
/// Returns the padded netlist and its extended annotation.
///
/// # Panics
///
/// Panics if the annotation does not cover the netlist or the margin is
/// not finite and non-negative.
#[must_use]
pub fn pad_min_delay(
    netlist: &Netlist,
    annotation: &DelayAnnotation,
    lib: &CellLibrary,
    margin_ps: f64,
) -> (Netlist, DelayAnnotation) {
    assert_eq!(
        annotation.len(),
        netlist.cell_count(),
        "annotation covers {} cells, netlist has {}",
        annotation.len(),
        netlist.cell_count()
    );
    assert!(
        margin_ps.is_finite() && margin_ps >= 0.0,
        "margin must be finite and non-negative"
    );
    let min_arrival = min_arrivals_ps(netlist, annotation);
    let buf_delay = lib.delay_ps(CellKind::Buf, 1);

    let mut b = NetlistBuilder::new(format!("{}_holdfix", netlist.name()));
    let mut delays: Vec<f64> = Vec::with_capacity(netlist.cell_count());
    let mut net_map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for &input in netlist.inputs() {
        let name = netlist.net_name(input).unwrap_or("in").to_owned();
        net_map[input.index()] = Some(b.input(name));
    }
    for index in 0..netlist.cell_count() {
        let id = CellId::from_index(index);
        let cell = netlist.cell(id);
        let inputs: Vec<NetId> = cell
            .inputs
            .iter()
            .map(|n| net_map[n.index()].expect("topological order"))
            .collect();
        let out = b.cell(cell.kind, &inputs);
        delays.push(annotation.delay_ps(id));
        net_map[cell.output.index()] = Some(out);
    }
    for (i, &out) in netlist.outputs().iter().enumerate() {
        let mut net = net_map[out.index()].expect("all nets mapped");
        let deficit = margin_ps - min_arrival[out.index()];
        if deficit > 0.0 {
            let chain = (deficit / buf_delay).ceil() as usize;
            for _ in 0..chain {
                net = b.buf(net);
                delays.push(buf_delay);
            }
        }
        // Keep the exact driver for constants-driven outputs too.
        let _ = NetDriver::Input;
        b.mark_output(net, netlist.output_name(i).to_owned());
    }
    let padded = b.finish().expect("padded netlist is well-formed");
    (padded, DelayAnnotation::from_delays(delays))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build_exact, AdderNetlist, AdderTopology};
    use crate::sta::StaReport;

    fn ripple16() -> (AdderNetlist, DelayAnnotation, CellLibrary) {
        let lib = CellLibrary::industrial_65nm();
        let adder = build_exact(16, AdderTopology::Ripple);
        let ann = DelayAnnotation::nominal(adder.netlist(), &lib);
        (adder, ann, lib)
    }

    #[test]
    fn min_arrival_of_lsb_is_one_gate() {
        let (adder, ann, lib) = ripple16();
        let arrivals = min_arrivals_ps(adder.netlist(), &ann);
        let sum0 = adder.netlist().outputs()[0];
        let expected = lib.delay_ps(crate::cell::CellKind::Xor2, 1);
        assert!((arrivals[sum0.index()] - expected).abs() < 1e-9);
    }

    #[test]
    fn padding_raises_min_paths_above_margin() {
        let (adder, ann, lib) = ripple16();
        let margin = 60.0;
        let (padded, padded_ann) = pad_min_delay(adder.netlist(), &ann, &lib, margin);
        let arrivals = min_arrivals_ps(&padded, &padded_ann);
        for &out in padded.outputs() {
            assert!(
                arrivals[out.index()] >= margin - 1e-9,
                "output min path {} below margin",
                arrivals[out.index()]
            );
        }
    }

    #[test]
    fn padding_preserves_function() {
        let (adder, ann, lib) = ripple16();
        let (padded, _) = pad_min_delay(adder.netlist(), &ann, &lib, 60.0);
        let padded = AdderNetlist::from_netlist(padded, 16);
        let mut seed = 1u64;
        for _ in 0..300 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(5);
            let (a, b) = (seed & 0xFFFF, (seed >> 21) & 0xFFFF);
            assert_eq!(padded.add(a, b), a + b);
        }
    }

    #[test]
    fn padding_cost_is_bounded() {
        // Max-delay growth per output is at most margin + one buffer.
        let (adder, ann, lib) = ripple16();
        let margin = 60.0;
        let before = StaReport::analyze(adder.netlist(), &ann).critical_ps();
        let (padded, padded_ann) = pad_min_delay(adder.netlist(), &ann, &lib, margin);
        let after = StaReport::analyze(&padded, &padded_ann).critical_ps();
        let buf = lib.delay_ps(crate::cell::CellKind::Buf, 1);
        assert!(after <= before + margin + buf + 1e-9);
    }

    #[test]
    fn zero_margin_is_identity_function() {
        let (adder, ann, lib) = ripple16();
        let (padded, padded_ann) = pad_min_delay(adder.netlist(), &ann, &lib, 0.0);
        assert_eq!(padded.cell_count(), adder.netlist().cell_count());
        assert_eq!(padded_ann.len(), ann.len());
    }

    #[test]
    fn already_slow_outputs_are_untouched() {
        let (adder, ann, lib) = ripple16();
        // Margin below the fastest output path: nothing inserted.
        let (padded, _) = pad_min_delay(adder.netlist(), &ann, &lib, 10.0);
        assert_eq!(padded.cell_count(), adder.netlist().cell_count());
    }

    #[test]
    fn constants_report_infinite_min_arrival() {
        let mut b = NetlistBuilder::new("consts");
        let a = b.input("a");
        let zero = b.const0();
        let y = b.or2(a, zero);
        b.mark_output(y, "y");
        let nl = b.finish().unwrap();
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::nominal(&nl, &lib);
        let arrivals = min_arrivals_ps(&nl, &ann);
        assert!(arrivals[zero.index()].is_infinite());
        assert!(arrivals[y.index()].is_finite(), "input path dominates");
    }
}
