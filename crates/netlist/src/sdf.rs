//! A minimal Standard Delay Format (SDF 3.0 subset) writer and reader.
//!
//! The paper's flow extracts an SDF file from synthesis and feeds it to the
//! gate-level simulator. This module persists a [`DelayAnnotation`] in an
//! SDF-shaped text format (one `CELL` entry per instance with an absolute
//! `IOPATH` delay) and reads it back, so experiment artifacts can be
//! inspected and replayed exactly like in the original ModelSim flow.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::graph::Netlist;
use crate::timing::DelayAnnotation;

/// Error reading an SDF file back.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdfError {
    /// The header is missing or malformed.
    BadHeader,
    /// The design name does not match the netlist.
    DesignMismatch {
        /// Name found in the file.
        found: String,
        /// Name of the netlist being annotated.
        expected: String,
    },
    /// A cell entry could not be parsed.
    BadCellEntry {
        /// 1-based line number.
        line: usize,
    },
    /// An instance index is out of range or duplicated.
    BadInstance {
        /// The instance name found.
        instance: String,
    },
    /// The file does not annotate every cell of the netlist.
    MissingInstances {
        /// Number of annotated instances.
        annotated: usize,
        /// Number of cells in the netlist.
        cells: usize,
    },
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::BadHeader => write!(f, "missing or malformed SDF header"),
            SdfError::DesignMismatch { found, expected } => {
                write!(f, "SDF is for design {found:?}, expected {expected:?}")
            }
            SdfError::BadCellEntry { line } => write!(f, "malformed CELL entry at line {line}"),
            SdfError::BadInstance { instance } => {
                write!(f, "unknown or duplicate instance {instance:?}")
            }
            SdfError::MissingInstances { annotated, cells } => {
                write!(
                    f,
                    "SDF annotates {annotated} instances, netlist has {cells}"
                )
            }
        }
    }
}

impl Error for SdfError {}

/// Serializes an annotation to SDF text.
///
/// # Examples
///
/// ```
/// use isa_netlist::cell::CellLibrary;
/// use isa_netlist::graph::NetlistBuilder;
/// use isa_netlist::sdf;
/// use isa_netlist::timing::DelayAnnotation;
///
/// # fn main() -> Result<(), isa_netlist::sdf::SdfError> {
/// let mut b = NetlistBuilder::new("demo");
/// let a = b.input("a");
/// let y = b.inv(a);
/// b.mark_output(y, "y");
/// let nl = b.finish().unwrap();
/// let ann = DelayAnnotation::nominal(&nl, &CellLibrary::industrial_65nm());
///
/// let text = sdf::write(&nl, &ann);
/// let back = sdf::read(&nl, &text)?;
/// assert_eq!(back, ann);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn write(netlist: &Netlist, annotation: &DelayAnnotation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(DELAYFILE");
    let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
    let _ = writeln!(out, "  (DESIGN \"{}\")", netlist.name());
    let _ = writeln!(out, "  (TIMESCALE 1ps)");
    for (i, cell) in netlist.cells().iter().enumerate() {
        let d = annotation.as_slice()[i];
        let _ = writeln!(
            out,
            "  (CELL (CELLTYPE \"{}\") (INSTANCE c{}) (DELAY (ABSOLUTE (IOPATH * Y ({:.3})))))",
            cell.kind.name(),
            i,
            d
        );
    }
    let _ = writeln!(out, ")");
    out
}

/// Parses SDF text produced by [`write()`](fn@write) back into an annotation for the
/// same netlist.
///
/// # Errors
///
/// Returns an [`SdfError`] if the header or any cell entry is malformed, the
/// design name differs, or the annotation is incomplete.
pub fn read(netlist: &Netlist, text: &str) -> Result<DelayAnnotation, SdfError> {
    let mut design_seen = false;
    let mut delays: Vec<Option<f64>> = vec![None; netlist.cell_count()];
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("(DESIGN ") {
            let name = rest
                .trim_end_matches(')')
                .trim()
                .trim_matches('"')
                .to_owned();
            if name != netlist.name() {
                return Err(SdfError::DesignMismatch {
                    found: name,
                    expected: netlist.name().to_owned(),
                });
            }
            design_seen = true;
            continue;
        }
        if !line.starts_with("(CELL ") {
            continue;
        }
        let entry_err = || SdfError::BadCellEntry { line: line_no + 1 };
        let inst_start = line.find("(INSTANCE ").ok_or_else(entry_err)?;
        let inst_rest = &line[inst_start + "(INSTANCE ".len()..];
        let inst_end = inst_rest.find(')').ok_or_else(entry_err)?;
        let instance = inst_rest[..inst_end].trim();

        let iopath = line.find("(IOPATH ").ok_or_else(entry_err)?;
        let io_rest = &line[iopath + "(IOPATH ".len()..];
        let open = io_rest.find('(').ok_or_else(entry_err)?;
        let close = io_rest[open..].find(')').ok_or_else(entry_err)? + open;
        let value: f64 = io_rest[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| entry_err())?;

        let index: usize = instance
            .strip_prefix('c')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SdfError::BadInstance {
                instance: instance.to_owned(),
            })?;
        if index >= delays.len() || delays[index].is_some() {
            return Err(SdfError::BadInstance {
                instance: instance.to_owned(),
            });
        }
        delays[index] = Some(value);
    }
    if !design_seen {
        return Err(SdfError::BadHeader);
    }
    let annotated = delays.iter().filter(|d| d.is_some()).count();
    if annotated != netlist.cell_count() {
        return Err(SdfError::MissingInstances {
            annotated,
            cells: netlist.cell_count(),
        });
    }
    Ok(DelayAnnotation::from_delays(
        delays.into_iter().map(|d| d.unwrap_or(0.0)).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::graph::NetlistBuilder;
    use crate::timing::{DelayAnnotation, VariationModel};

    fn netlist() -> Netlist {
        let mut b = NetlistBuilder::new("sdf_test");
        let a = b.input("a");
        let x = b.input("b");
        let n1 = b.nand2(a, x);
        let n2 = b.xor2(n1, a);
        b.mark_output(n2, "y");
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_delays_to_milli_ps() {
        let nl = netlist();
        let lib = CellLibrary::industrial_65nm();
        let ann = DelayAnnotation::with_variation(&nl, &lib, &VariationModel::new(0.04, 3));
        let text = write(&nl, &ann);
        let back = read(&nl, &text).unwrap();
        for (a, b) in ann.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn header_contains_design_and_timescale() {
        let nl = netlist();
        let ann = DelayAnnotation::nominal(&nl, &CellLibrary::industrial_65nm());
        let text = write(&nl, &ann);
        assert!(text.contains("(DESIGN \"sdf_test\")"));
        assert!(text.contains("(TIMESCALE 1ps)"));
        assert!(text.contains("(CELLTYPE \"NAND2\")"));
    }

    #[test]
    fn design_mismatch_is_detected() {
        let nl = netlist();
        let ann = DelayAnnotation::nominal(&nl, &CellLibrary::industrial_65nm());
        let text = write(&nl, &ann).replace("sdf_test", "other_design");
        match read(&nl, &text) {
            Err(SdfError::DesignMismatch { found, .. }) => assert_eq!(found, "other_design"),
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_cells_are_detected() {
        let nl = netlist();
        let ann = DelayAnnotation::nominal(&nl, &CellLibrary::industrial_65nm());
        let text = write(&nl, &ann);
        let truncated: String = text
            .lines()
            .filter(|l| !l.contains("(INSTANCE c1)"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            read(&nl, &truncated),
            Err(SdfError::MissingInstances {
                annotated: 1,
                cells: 2
            })
        ));
    }

    #[test]
    fn duplicate_instance_is_rejected() {
        let nl = netlist();
        let ann = DelayAnnotation::nominal(&nl, &CellLibrary::industrial_65nm());
        let text = write(&nl, &ann);
        let dup_line = text
            .lines()
            .find(|l| l.contains("(INSTANCE c0)"))
            .unwrap()
            .to_owned();
        let doubled = format!("{text}\n{dup_line}");
        assert!(matches!(
            read(&nl, &doubled),
            Err(SdfError::BadInstance { .. })
        ));
    }

    #[test]
    fn missing_header_is_rejected() {
        let nl = netlist();
        assert_eq!(read(&nl, "(DELAYFILE)"), Err(SdfError::BadHeader));
    }

    #[test]
    fn garbage_cell_entry_reports_line() {
        let nl = netlist();
        let text = "(DELAYFILE\n  (DESIGN \"sdf_test\")\n  (CELL nonsense)\n)";
        assert!(matches!(
            read(&nl, text),
            Err(SdfError::BadCellEntry { line: 3 })
        ));
    }
}
