//! Minimal, deterministic stand-in for the subset of the `rand` crate API
//! this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over `usize`/`f64` ranges, `seq::SliceRandom::shuffle`).
//!
//! The real `rand` crate cannot be resolved in offline build environments,
//! so this crate exposes a library target named `rand` backed by a
//! SplitMix64-fed xoshiro256++ generator. Streams are fully determined by
//! the seed and stable across platforms — which is all the workspace needs:
//! die samples, bootstrap resamples and feature shuffles must be
//! *reproducible*, not cryptographic. The bit streams differ from the real
//! `rand::rngs::StdRng` (ChaCha12), so numeric results are tied to this
//! shim, not to upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges `Rng::gen_range` can draw from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` with negligible modulo bias for the index
/// and step spans used in this workspace.
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample an empty range");
    rng.next_u64() % span
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        self.start + below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        self.start + below(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample an empty range");
        let span = end - start;
        if span == u64::MAX {
            return rng.next_u64();
        }
        start + below(rng, span + 1)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let span = self.end - self.start;
        assert!(span > 0.0, "cannot sample an empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * span
    }
}

/// Types `Rng::gen` can produce (subset of the `rand::distributions::Standard`
/// coverage).
pub trait Generable {
    /// Draws one uniformly random value.
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Generable for u64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Generable for bool {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniformly random value of the requested type.
    fn gen<T: Generable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (named for drop-in compatibility with
    /// `rand::rngs::StdRng`; the stream differs from upstream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Sequence-related extensions (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices (subset of
    /// `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_usize_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn shuffle_accepts_reborrowed_rngs() {
        // tree.rs passes `&mut StdRng` through generic layers; make sure
        // both call shapes compile and run.
        let mut rng = StdRng::seed_from_u64(3);
        let mut v = [1u8, 2, 3, 4];
        v.shuffle(&mut rng);
        let r = &mut rng;
        v.shuffle(r);
    }
}
