//! Minimal, deterministic stand-in for the subset of the `proptest` crate
//! API this workspace uses: the [`proptest!`] test macro, range / `Just` /
//! tuple / `prop_oneof!` / `prop::collection::vec` strategies,
//! `prop_filter_map`, `any::<T>()` for primitives and small tuples, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! The real `proptest` crate cannot be resolved in offline build
//! environments. This shim keeps the property tests' *generative* style —
//! each test still runs against a few dozen pseudo-random cases — but
//! drops shrinking and persistence: a failing case panics with the plain
//! assertion message. Case streams are seeded from the test name, so runs
//! are fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty range");
        self.next_u64() % span
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Value generators (subset of `proptest::strategy::Strategy`).
pub mod strategy {
    use super::CaseRng;

    /// A source of pseudo-random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut CaseRng) -> Self::Value;

        /// Maps generated values, discarding those the mapper rejects
        /// (retried up to an internal attempt budget).
        fn prop_filter_map<T, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<T>,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }

        /// Maps generated values.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut CaseRng) -> T {
            for _ in 0..1_000 {
                if let Some(value) = (self.f)(self.inner.generate(rng)) {
                    return value;
                }
            }
            panic!(
                "prop_filter_map exhausted its attempt budget: {}",
                self.whence
            );
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut CaseRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value (subset of
    /// `proptest::strategy::Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut CaseRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among homogeneous strategies (the `prop_oneof!`
    /// backing type).
    #[derive(Debug, Clone)]
    pub struct OneOf<S> {
        options: Vec<S>,
    }

    impl<S> OneOf<S> {
        /// Creates a choice over at least one option.
        #[must_use]
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut CaseRng) -> S::Value {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut CaseRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

use strategy::Strategy;

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut CaseRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut CaseRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut CaseRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical full-range generator (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut CaseRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut CaseRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut CaseRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_arbitrary {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut CaseRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

tuple_arbitrary!(A, B);
tuple_arbitrary!(A, B, C);
tuple_arbitrary!(A, B, C, D);

/// Strategy over a type's full value range.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut CaseRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for a type (subset of `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (subset of the `proptest::collection` module,
/// re-exported as `prop::collection` like the real prelude does).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::CaseRng;
        use std::ops::Range;

        /// Strategy for `Vec`s with a length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            length: Range<usize>,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is drawn from `length`.
        pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, length }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut CaseRng) -> Vec<S::Value> {
                let n = self.length.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Test-runner configuration (subset of
/// `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; the shim trims to keep offline suites
        // fast while still exercising a meaningful spread of cases.
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Stable per-test seed from the test's name (FNV-1a).
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Everything the property tests import (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Defines deterministic generative tests (subset of `proptest::proptest!`).
///
/// Each `#[test] fn name(binding in strategy, ...) { body }` item becomes a
/// plain test that evaluates `body` against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::CaseRng::new($crate::seed_from_name(stringify!($name)));
                for __case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategy expressions of one type (subset of
/// `proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($option),+])
    };
}

/// Asserts a condition for the current case (panics on failure — the shim
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = crate::CaseRng::new(1);
        for _ in 0..1_000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(0u32..=7), &mut rng);
            assert!(w <= 7);
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_only_yields_listed_options() {
        let strategy = prop_oneof![Just(8u32), Just(16u32)];
        let mut rng = crate::CaseRng::new(2);
        let mut seen = [false; 2];
        for _ in 0..100 {
            match Strategy::generate(&strategy, &mut rng) {
                8 => seen[0] = true,
                16 => seen[1] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen[0] && seen[1], "both arms must be reachable");
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strategy = prop::collection::vec(any::<u64>(), 2..6);
        let mut rng = crate::CaseRng::new(3);
        for _ in 0..100 {
            let v = Strategy::generate(&strategy, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn filter_map_retries_until_accepted() {
        let strategy = (0u64..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        let mut rng = crate::CaseRng::new(4);
        for _ in 0..100 {
            assert_eq!(Strategy::generate(&strategy, &mut rng) % 2, 0);
        }
    }

    // The macro itself, exercised end to end (with assume + config).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_filters(a in any::<u64>(), b in 1u64..1000) {
            prop_assume!(!a.is_multiple_of(3));
            prop_assert!((1..1000).contains(&b));
            prop_assert_ne!(a % 3, 0);
            prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        }
    }
}
