//! Property coverage of the BDD engine itself: the proofs in this crate
//! are only as good as the store they run on, so the store is checked
//! against brute force on randomized inputs and bounded on the designs
//! the workspace actually proves.
//!
//! Three families, mirroring the engine's trust assumptions:
//!
//! 1. **Order invariance** — `satcount` is a semantic quantity; permuting
//!    the variable order must never change it (node counts may).
//! 2. **Cache correctness** — `apply`/`ite` memoise aggressively; random
//!    small netlists are swept symbolically and every output compared
//!    against the netlist's own concrete evaluator on every assignment,
//!    so a stale or mis-keyed cache entry cannot hide.
//! 3. **Node-count regression** — the interleaved operand order keeps
//!    every seed design's spec linear in the width; a regression in
//!    `mk`/`apply` canonicity would blow these bounds by orders of
//!    magnitude long before it corrupted a proof.

use isa_core::{paper_designs, Design};
use isa_netlist::cell::ALL_CELL_KINDS;
use isa_netlist::{CellKind, NetlistBuilder};
use isa_prove::{output_functions, spec_outputs, Bdd, OperandVars, Ref};
use proptest::prelude::*;

/// Deterministic splitmix-style generator for structure choices (the
/// proptest shim drives the seeds; this expands one seed into a stream).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a random single-output netlist over `n_in` inputs with `n_cells`
/// cells, each drawing its operands from any earlier net.
fn random_netlist(seed: u64, n_in: usize, n_cells: usize) -> isa_netlist::Netlist {
    let mut gen = Gen(seed);
    let mut b = NetlistBuilder::new("random");
    let mut nets: Vec<_> = (0..n_in).map(|i| b.input(format!("x{i}"))).collect();
    for _ in 0..n_cells {
        let kind = ALL_CELL_KINDS[gen.below(ALL_CELL_KINDS.len())];
        if kind == CellKind::Const0 || kind == CellKind::Const1 {
            continue; // constants are covered by unit tests; keep depth
        }
        let ins: Vec<_> = (0..kind.arity())
            .map(|_| nets[gen.below(nets.len())])
            .collect();
        nets.push(b.cell(kind, &ins));
    }
    let out = *nets.last().unwrap();
    b.mark_output(out, "y");
    b.finish().expect("random netlists are structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random small netlists: the symbolic sweep (exercising the apply and
    /// ite caches across shared subgraphs) must agree with the concrete
    /// evaluator on every assignment, and `satcount` with brute-force
    /// counting.
    #[test]
    fn symbolic_sweep_matches_concrete_eval_on_random_netlists(
        seed in 0u64..1 << 48,
        n_cells in 4usize..40,
    ) {
        let n_in = 6usize;
        let nl = random_netlist(seed, n_in, n_cells);
        let mut bdd = Bdd::new(n_in as u32);
        let input_fns: Vec<Ref> = (0..n_in as u32).map(|v| bdd.var(v)).collect();
        let outs = output_functions(&mut bdd, &nl, &input_fns);
        let f = outs[0];
        let mut ones = 0u128;
        for bits in 0..1u32 << n_in {
            let ins: Vec<bool> = (0..n_in).map(|i| bits >> i & 1 == 1).collect();
            let concrete = nl.evaluate_outputs_u64(&ins) & 1 == 1;
            prop_assert_eq!(bdd.eval(f, |v| ins[v as usize]), concrete);
            ones += u128::from(concrete);
        }
        prop_assert_eq!(bdd.satcount(f), ones);
    }

    /// The same netlist built under a permuted variable order: node counts
    /// may differ arbitrarily, but `satcount` is semantic and must not.
    #[test]
    fn satcount_is_variable_order_invariant(
        seed in 0u64..1 << 48,
        n_cells in 4usize..40,
    ) {
        let n_in = 6usize;
        let nl = random_netlist(seed, n_in, n_cells);

        // Identity order.
        let mut bdd_a = Bdd::new(n_in as u32);
        let fns_a: Vec<Ref> = (0..n_in as u32).map(|v| bdd_a.var(v)).collect();
        let count_a = {
            let f = output_functions(&mut bdd_a, &nl, &fns_a)[0];
            bdd_a.satcount(f)
        };

        // A seed-derived permutation of input pin -> variable level.
        let mut gen = Gen(seed ^ 0xA5A5_A5A5);
        let mut perm: Vec<u32> = (0..n_in as u32).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, gen.below(i + 1));
        }
        let mut bdd_b = Bdd::new(n_in as u32);
        let fns_b: Vec<Ref> = perm.iter().map(|&v| bdd_b.var(v)).collect();
        let count_b = {
            let f = output_functions(&mut bdd_b, &nl, &fns_b)[0];
            bdd_b.satcount(f)
        };

        prop_assert_eq!(count_a, count_b);
    }
}

#[test]
fn seed_design_specs_stay_linear_in_node_count() {
    // All twelve paper designs at their native 32 bits: the interleaved
    // order must keep each full spec (33 output functions) under a bound
    // that is ~linear in width. The bound has slack for engine evolution
    // but sits orders of magnitude below an ordering/canonicity blowup.
    const MAX_NODES_PER_DESIGN: usize = 40_000;
    for design in paper_designs() {
        let mut bdd = Bdd::new(64);
        let vars = OperandVars::interleaved(&mut bdd, 32);
        let outs = spec_outputs(&mut bdd, &design, &vars);
        assert_eq!(outs.len(), 33);
        assert!(
            bdd.num_nodes() < MAX_NODES_PER_DESIGN,
            "{design:?}: {} nodes — variable order or canonicity regression",
            bdd.num_nodes()
        );
    }
}

#[test]
fn exact_spec_node_count_tracks_width_linearly() {
    // Direct linearity probe: doubling the width must not superlinearly
    // grow the store (allow 3x headroom over strict doubling).
    let nodes_at = |w: u32| {
        let mut bdd = Bdd::new(2 * w);
        let vars = OperandVars::interleaved(&mut bdd, w);
        let _ = spec_outputs(&mut bdd, &Design::Exact { width: w }, &vars);
        bdd.num_nodes()
    };
    let n16 = nodes_at(16);
    let n32 = nodes_at(32);
    assert!(
        n32 < n16 * 6,
        "width 16 -> {n16} nodes, width 32 -> {n32}: superlinear growth"
    );
}
