//! Bit-exact cross-validation of the symbolic [`ErrorDistribution`]
//! against complete behavioural enumeration — the proof-side counterpart
//! of `crates/core/tests/analysis_exhaustive.rs`.
//!
//! That harness *bounds* the analytical model's RMS divergence to
//! [0.75, 1.30] because `DesignAnalysis::rms_error_approx` neglects
//! cross-boundary covariances. The symbolic distribution makes no such
//! approximation, so the bar here is absolute: on the same twelve 8-bit
//! seed miniatures, every count is integer-equal to exhaustive
//! enumeration and the RMS is **bitwise**-equal to the float computed
//! from the enumerated sum of squares.

use isa_core::{Adder, Design, ExactAdder, IsaConfig, SpeculativeAdder, PAPER_QUADRUPLES};
use isa_prove::ErrorDistribution;

/// The 8-bit miniature of a 32-bit paper quadruple — the same shrink rule
/// as `crates/core/tests/analysis_exhaustive.rs` (blocks 4x smaller,
/// window/compensation widths clamped without overlap).
fn miniature(quad: (u32, u32, u32, u32)) -> IsaConfig {
    let (b, s, c, r) = quad;
    let b8 = (b / 4).max(1);
    let c8 = c.min(b8);
    let r8 = r.min(b8 - c8);
    let s8 = s.min(b8);
    IsaConfig::new(8, b8, s8, c8, r8).expect("miniatures are valid by construction")
}

/// Exhaustive integer statistics over all 65 536 operand pairs:
/// `(zero_count, sum_e, sum_e2, max_e, min_e, pmf)`.
#[allow(clippy::type_complexity)]
fn exhaustive(cfg: &IsaConfig) -> (u128, i128, u128, i64, i64, Vec<(i64, u128)>) {
    let isa = SpeculativeAdder::new(*cfg);
    let exact = ExactAdder::new(8);
    let (mut zeros, mut sum, mut sum2) = (0u128, 0i128, 0u128);
    let (mut max_e, mut min_e) = (i64::MIN, i64::MAX);
    let mut pmf = std::collections::BTreeMap::<i64, u128>::new();
    for a in 0..256u64 {
        for b in 0..256u64 {
            let e = isa.add(a, b) as i64 - exact.add(a, b) as i64;
            zeros += u128::from(e == 0);
            sum += i128::from(e);
            sum2 += u128::from(e.unsigned_abs()) * u128::from(e.unsigned_abs());
            max_e = max_e.max(e);
            min_e = min_e.min(e);
            *pmf.entry(e).or_insert(0) += 1;
        }
    }
    (zeros, sum, sum2, max_e, min_e, pmf.into_iter().collect())
}

#[test]
fn twelve_seed_miniatures_match_enumeration_bit_exactly() {
    let mut configs: Vec<IsaConfig> = PAPER_QUADRUPLES.iter().map(|&q| miniature(q)).collect();
    configs.push(IsaConfig::new(8, 8, 0, 0, 0).unwrap());
    assert_eq!(configs.len(), 12);

    for cfg in &configs {
        let dist = ErrorDistribution::analyze(&Design::Isa(*cfg));
        let (zeros, sum, sum2, max_e, min_e, pmf) = exhaustive(cfg);

        // Integer-exact counts — no tolerance at all.
        assert_eq!(dist.zero_count(), zeros, "{cfg}");
        assert_eq!(dist.sum_error(), sum, "{cfg}");
        assert_eq!(dist.sum_squared_error(), (0, sum2), "{cfg}");
        assert_eq!(dist.max_error(), max_e, "{cfg}");
        assert_eq!(dist.min_error(), min_e, "{cfg}");
        assert_eq!(
            dist.pmf().expect("8-bit support fits the default cap"),
            pmf.as_slice(),
            "{cfg}"
        );

        // RMS is derived from the same integers through the same float
        // expression, so even the f64 bits must agree — stronger than the
        // [0.75, 1.30] approximation band the analytical model needs.
        let reference_rms = (sum2 as f64 / 65536.0).sqrt();
        assert_eq!(
            dist.rms_error().to_bits(),
            reference_rms.to_bits(),
            "{cfg}: symbolic RMS {} vs enumerated {}",
            dist.rms_error(),
            reference_rms
        );
    }
}

#[test]
fn miniature_rule_matches_the_core_harness() {
    // Guards against the shrink rule silently drifting from the one in
    // crates/core/tests/analysis_exhaustive.rs: spot-check the table.
    assert_eq!(miniature((8, 0, 1, 4)).to_string(), "(2,0,1,1)");
    assert_eq!(miniature((16, 7, 0, 8)).to_string(), "(4,4,0,4)");
}
