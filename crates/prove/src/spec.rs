//! The behavioural spec as Boolean functions.
//!
//! [`Bdd`] implements [`PlaneAlgebra`], so the *actual* behavioural
//! algorithm — [`SpeculativeAdder::add_planes_in`] for ISA designs,
//! [`ripple_add_planes_in`] for the exact reference — runs unchanged over
//! BDD nodes and yields one canonical function per output bit, covering all
//! `2^(2W)` operand pairs at once. Nothing here re-implements the spec; an
//! equivalence proof against these functions is a proof against the very
//! code the whole repository treats as `ygold`.
//!
//! # Variable order
//!
//! Operand bits are **interleaved**: `a[i] -> 2i`, `b[i] -> 2i + 1`, LSB
//! nearest the root. Carry chains depend on lower bits only through the
//! single running carry, so every sum-bit function (of any adder) has at
//! most a constant number of BDD nodes per level in this order — the whole
//! spec is linear in the width, for speculative and exact adders alike.

use isa_core::{ripple_add_planes_in, Design, PlaneAlgebra, SpeculativeAdder};

use crate::bdd::{Bdd, Op, Ref};

impl PlaneAlgebra for Bdd {
    type Plane = Ref;

    fn zero(&mut self) -> Ref {
        Bdd::zero(self)
    }
    fn one(&mut self) -> Ref {
        Bdd::one(self)
    }
    fn not(&mut self, x: &Ref) -> Ref {
        Bdd::not(self, *x)
    }
    fn and(&mut self, x: &Ref, y: &Ref) -> Ref {
        self.apply(Op::And, *x, *y)
    }
    fn or(&mut self, x: &Ref, y: &Ref) -> Ref {
        self.apply(Op::Or, *x, *y)
    }
    fn xor(&mut self, x: &Ref, y: &Ref) -> Ref {
        self.apply(Op::Xor, *x, *y)
    }
    fn debug_assert_false(&self, x: &Ref) {
        // Canonicity makes the check exact: only the 0-terminal is false.
        debug_assert_eq!(*x, Bdd::zero(self), "plane invariant violated");
    }
}

/// The operand-bit projection functions of one adder instance.
#[derive(Debug, Clone)]
pub struct OperandVars {
    /// `a[i]` projections, LSB first.
    pub a: Vec<Ref>,
    /// `b[i]` projections, LSB first.
    pub b: Vec<Ref>,
}

impl OperandVars {
    /// Creates interleaved operand variables (`a[i] -> 2i`, `b[i] -> 2i+1`)
    /// for a `width`-bit adder. The store must have at least `2 * width`
    /// variables.
    pub fn interleaved(bdd: &mut Bdd, width: u32) -> Self {
        assert!(bdd.num_vars() >= 2 * width, "store too small for width");
        let a = (0..width).map(|i| bdd.var(2 * i)).collect();
        let b = (0..width).map(|i| bdd.var(2 * i + 1)).collect();
        Self { a, b }
    }

    /// Operand width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.a.len() as u32
    }

    /// Decodes a store-wide assignment back into `(a, b)` operand words.
    #[must_use]
    pub fn decode(&self, assignment: &[bool]) -> (u64, u64) {
        let mut a = 0u64;
        let mut b = 0u64;
        for i in 0..self.a.len() {
            a |= u64::from(assignment[2 * i]) << i;
            b |= u64::from(assignment[2 * i + 1]) << i;
        }
        (a, b)
    }
}

/// Builds the behavioural spec's output functions for a design: `width + 1`
/// bits, carry-out last — [`SpeculativeAdder::add_planes_in`] for ISA
/// designs, [`ripple_add_planes_in`] for the exact adder.
pub fn spec_outputs(bdd: &mut Bdd, design: &Design, vars: &OperandVars) -> Vec<Ref> {
    assert_eq!(design.width(), vars.width(), "design/vars width mismatch");
    match design {
        Design::Isa(cfg) => SpeculativeAdder::new(*cfg).add_planes_in(bdd, &vars.a, &vars.b),
        Design::Exact { .. } => ripple_add_planes_in(bdd, &vars.a, &vars.b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_core::IsaConfig;

    fn check_against_scalar(design: &Design) {
        let w = design.width();
        let mut bdd = Bdd::new(2 * w);
        let vars = OperandVars::interleaved(&mut bdd, w);
        let outs = spec_outputs(&mut bdd, design, &vars);
        assert_eq!(outs.len(), w as usize + 1);
        let model = design.behavioural();
        for a in 0..1u64 << w {
            for b in 0..1u64 << w {
                let mut got = 0u64;
                for (i, &o) in outs.iter().enumerate() {
                    let bit = bdd.eval(o, |v| {
                        let (op, idx) = (v % 2, (v / 2) as u64);
                        if op == 0 {
                            (a >> idx) & 1 == 1
                        } else {
                            (b >> idx) & 1 == 1
                        }
                    });
                    got |= u64::from(bit) << i;
                }
                assert_eq!(got, model.add(a, b), "{design:?} a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn exact_spec_matches_scalar_exhaustively() {
        check_against_scalar(&Design::Exact { width: 5 });
    }

    #[test]
    fn isa_spec_matches_scalar_exhaustively() {
        for quad in [(2, 1, 1, 1), (3, 2, 1, 2), (3, 0, 0, 3)] {
            let cfg = IsaConfig::new(6, quad.0, quad.1, quad.2, quad.3).unwrap();
            check_against_scalar(&Design::Isa(cfg));
        }
        // Guess-One speculation takes a different SPEC branch; cover it too.
        let one = IsaConfig::with_guess(6, 3, 2, 1, 1, isa_core::SpecGuess::One).unwrap();
        check_against_scalar(&Design::Isa(one));
    }

    #[test]
    fn spec_is_linear_in_width() {
        // The interleaved order must keep the 32-bit spec small; a bad
        // order would blow past this by orders of magnitude.
        let mut bdd = Bdd::new(64);
        let vars = OperandVars::interleaved(&mut bdd, 32);
        let cfg = IsaConfig::new(32, 8, 2, 1, 4).unwrap();
        let _ = spec_outputs(&mut bdd, &Design::Isa(cfg), &vars);
        assert!(bdd.num_nodes() < 20_000, "nodes: {}", bdd.num_nodes());
    }
}
