//! isa-prove: symbolic static analysis for inexact speculative adders.
//!
//! Everything else in this workspace *samples*: the simulators draw input
//! streams, the analytical model covers only part of the design space, and
//! the linter spot-checks parity on random vectors. This crate closes the
//! gap with **proofs** over all inputs at once, using a reduced ordered
//! BDD engine (no external dependencies):
//!
//! - [`equiv`] — combinational equivalence of every synthesized netlist
//!   against the behavioural [`isa_core::SpeculativeAdder`] spec, over all
//!   `2^(2W)` operand pairs. The spec side is not re-implemented: the
//!   behavioural plane algorithm itself runs over BDD nodes via the
//!   [`isa_core::PlaneAlgebra`] trait.
//! - [`dist`] — the *exact* structural error distribution (PMF, RMS,
//!   extrema, error rate) by model counting on the approx-minus-exact
//!   difference function; integer-exact at widths the exhaustive harness
//!   cannot reach.
//! - [`sta`] — false-path-aware settle bounds by symbolic timed
//!   simulation: a proven critical delay that is sound against the
//!   transport-delay simulator and never worse than topological STA.
//!
//! The [`bdd`], [`spec`] and [`netlist`] modules provide the shared
//! engine, spec construction, and symbolic netlist evaluation these three
//! analyses are built from.
//!
//! # Where this sits
//!
//! `isa-netlint` runs cheap per-build checks on every synthesis result;
//! this crate is the offline/deep tier the linter escalates to when callers
//! opt in (`prove.equiv`, `prove.sta` rules), and the source of the exact
//! error model that lets the design-space explorer prune with a structural
//! safety margin of 1.0 instead of 2.0.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd;
pub mod dist;
pub mod equiv;
pub mod netlist;
pub mod spec;
pub mod sta;

pub use bdd::{Bdd, Op, Ref};
pub use dist::{ErrorDistribution, DEFAULT_PMF_CAP};
pub use equiv::{check_equivalence, EquivReport};
pub use netlist::{eval_cell, live_nets, net_functions, output_functions};
pub use spec::{spec_outputs, OperandVars};
pub use sta::{analyze_settle, StaOptions, SymbolicSta};
