//! Combinational equivalence proofs: synthesized netlist vs behavioural
//! spec.
//!
//! Both sides are built in one shared store over the interleaved operand
//! variables, so each output bit reduces to a single canonical-node
//! comparison — equal refs prove equality over **all** `2^(2W)` operand
//! pairs; unequal refs yield a concrete counterexample from the XOR of the
//! two functions. This replaces sampled parity checks as the ground truth
//! for "the netlist implements the design".

use isa_core::Design;
use isa_netlist::AdderNetlist;

use crate::bdd::{Bdd, Op};
use crate::netlist::output_functions;
use crate::spec::{spec_outputs, OperandVars};

/// Outcome of one equivalence proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// Operand width of the proof (`2^(2*width)` input pairs covered).
    pub width: u32,
    /// True iff every output bit's function equals the spec's.
    pub equivalent: bool,
    /// Index of the first differing output bit (carry-out is `width`).
    pub failing_output: Option<usize>,
    /// Operand pair witnessing the first difference.
    pub counterexample: Option<(u64, u64)>,
    /// Total BDD nodes interned while proving — the proof's cost, bounded
    /// by regression tests to catch variable-order blowups.
    pub nodes: usize,
}

/// Proves (or refutes) that `adder` implements `design`'s behavioural spec
/// bit-exactly on every input pair.
///
/// # Panics
///
/// Panics if the netlist width differs from the design width.
#[must_use]
pub fn check_equivalence(design: &Design, adder: &AdderNetlist) -> EquivReport {
    let width = design.width();
    assert_eq!(adder.width(), width, "design/netlist width mismatch");
    let mut bdd = Bdd::new(2 * width);
    let vars = OperandVars::interleaved(&mut bdd, width);
    let spec = spec_outputs(&mut bdd, design, &vars);

    // The netlist's primary inputs are a[0..w] then b[0..w] (LSB first);
    // map them onto the same interleaved variables as the spec.
    let mut input_fns = Vec::with_capacity(2 * width as usize);
    input_fns.extend_from_slice(&vars.a);
    input_fns.extend_from_slice(&vars.b);
    let impl_outs = output_functions(&mut bdd, adder.netlist(), &input_fns);
    debug_assert_eq!(impl_outs.len(), spec.len());

    for (i, (&s, &m)) in spec.iter().zip(&impl_outs).enumerate() {
        if s != m {
            // Canonicity: different refs differ on some input; extract it.
            let diff = bdd.apply(Op::Xor, s, m);
            let witness = bdd.any_sat(diff).expect("differing refs must differ");
            let counterexample = vars.decode(&witness);
            return EquivReport {
                width,
                equivalent: false,
                failing_output: Some(i),
                counterexample: Some(counterexample),
                nodes: bdd.num_nodes(),
            };
        }
    }
    EquivReport {
        width,
        equivalent: true,
        failing_output: None,
        counterexample: None,
        nodes: bdd.num_nodes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_core::IsaConfig;
    use isa_netlist::{build_exact, AdderTopology, CellLibrary, SynthesisOptions};

    #[test]
    fn exact_topologies_are_equivalent() {
        for topo in [
            AdderTopology::Ripple,
            AdderTopology::Sklansky,
            AdderTopology::KoggeStone,
        ] {
            let report = check_equivalence(&Design::Exact { width: 32 }, &build_exact(32, topo));
            assert!(report.equivalent, "{topo:?}: {report:?}");
        }
    }

    #[test]
    fn synthesized_isa_design_is_equivalent() {
        let cfg = IsaConfig::new(32, 8, 2, 1, 4).unwrap();
        let lib = CellLibrary::industrial_65nm();
        let synth =
            isa_netlist::synthesize_isa(&cfg, 2000.0, &lib, &SynthesisOptions::default()).unwrap();
        let report = check_equivalence(&Design::Isa(cfg), &synth.adder);
        assert!(report.equivalent, "{report:?}");
    }

    #[test]
    fn wrong_spec_yields_a_real_counterexample() {
        // An exact netlist against a speculative spec: refuted, and the
        // counterexample must actually distinguish the two.
        let cfg = IsaConfig::new(8, 4, 0, 0, 0).unwrap();
        let report = check_equivalence(&Design::Isa(cfg), &build_exact(8, AdderTopology::Ripple));
        assert!(!report.equivalent);
        let (a, b) = report.counterexample.unwrap();
        let spec = Design::Isa(cfg).behavioural();
        assert_ne!(spec.add(a, b), a + b, "witness must separate the models");
    }
}
