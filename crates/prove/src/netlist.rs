//! Symbolic forward evaluation of gate-level netlists.
//!
//! One topological sweep turns every net of a [`Netlist`] into a canonical
//! BDD over the primary-input functions supplied by the caller — the
//! symbolic counterpart of [`Netlist::evaluate_words`]. The per-kind
//! formulas mirror [`CellKind::eval`] exactly; the `match` is exhaustive,
//! so adding a cell kind without a symbolic semantics fails to compile.

use isa_netlist::{CellKind, NetDriver, Netlist};

use crate::bdd::{Bdd, Op, Ref};

/// Symbolic value of one cell output from its symbolic inputs.
///
/// # Panics
///
/// Panics if `ins` does not match the kind's arity.
pub fn eval_cell(bdd: &mut Bdd, kind: CellKind, ins: &[Ref]) -> Ref {
    assert_eq!(ins.len(), kind.arity(), "arity mismatch for {kind:?}");
    match kind {
        CellKind::Const0 => bdd.zero(),
        CellKind::Const1 => bdd.one(),
        CellKind::Buf => ins[0],
        CellKind::Inv => bdd.not(ins[0]),
        CellKind::And2 => bdd.apply(Op::And, ins[0], ins[1]),
        CellKind::Or2 => bdd.apply(Op::Or, ins[0], ins[1]),
        CellKind::Xor2 => bdd.apply(Op::Xor, ins[0], ins[1]),
        CellKind::Nand2 => {
            let t = bdd.apply(Op::And, ins[0], ins[1]);
            bdd.not(t)
        }
        CellKind::Nor2 => {
            let t = bdd.apply(Op::Or, ins[0], ins[1]);
            bdd.not(t)
        }
        CellKind::Xnor2 => {
            let t = bdd.apply(Op::Xor, ins[0], ins[1]);
            bdd.not(t)
        }
        // Mux2 input order is [d0, d1, sel]: Y = sel ? d1 : d0.
        CellKind::Mux2 => bdd.ite(ins[2], ins[1], ins[0]),
        CellKind::Ao21 => {
            let t = bdd.apply(Op::And, ins[0], ins[1]);
            bdd.apply(Op::Or, t, ins[2])
        }
        CellKind::Oa21 => {
            let t = bdd.apply(Op::Or, ins[0], ins[1]);
            bdd.apply(Op::And, t, ins[2])
        }
        CellKind::Aoi21 => {
            let t = bdd.apply(Op::And, ins[0], ins[1]);
            let u = bdd.apply(Op::Or, t, ins[2]);
            bdd.not(u)
        }
        CellKind::Oai21 => {
            let t = bdd.apply(Op::Or, ins[0], ins[1]);
            let u = bdd.apply(Op::And, t, ins[2]);
            bdd.not(u)
        }
        CellKind::Maj3 => {
            let ab = bdd.apply(Op::And, ins[0], ins[1]);
            let ac = bdd.apply(Op::And, ins[0], ins[2]);
            let bc = bdd.apply(Op::And, ins[1], ins[2]);
            let t = bdd.apply(Op::Or, ab, ac);
            bdd.apply(Op::Or, t, bc)
        }
        CellKind::And3 => {
            let t = bdd.apply(Op::And, ins[0], ins[1]);
            bdd.apply(Op::And, t, ins[2])
        }
        CellKind::Or3 => {
            let t = bdd.apply(Op::Or, ins[0], ins[1]);
            bdd.apply(Op::Or, t, ins[2])
        }
        CellKind::Xor3 => {
            let t = bdd.apply(Op::Xor, ins[0], ins[1]);
            bdd.apply(Op::Xor, t, ins[2])
        }
    }
}

/// Symbolic values of **all** nets after one topological sweep, indexed by
/// net id. `input_fns[i]` is the function driven onto the `i`-th primary
/// input (typically a projection variable from
/// [`crate::spec::OperandVars`]).
///
/// # Panics
///
/// Panics if `input_fns` does not match the primary-input count.
pub fn net_functions(bdd: &mut Bdd, netlist: &Netlist, input_fns: &[Ref]) -> Vec<Ref> {
    assert_eq!(
        input_fns.len(),
        netlist.inputs().len(),
        "primary input count mismatch"
    );
    // Nets not driven yet default to zero; creation order is topological,
    // so every cell's inputs are final before the cell is visited.
    let mut values = vec![bdd.zero(); netlist.net_count()];
    for (&net, &f) in netlist.inputs().iter().zip(input_fns) {
        values[net.index()] = f;
    }
    let mut ins: Vec<Ref> = Vec::with_capacity(3);
    for cell in netlist.cells() {
        ins.clear();
        ins.extend(cell.inputs.iter().map(|n| values[n.index()]));
        values[cell.output.index()] = eval_cell(bdd, cell.kind, &ins);
    }
    values
}

/// Symbolic values of the primary outputs only (in declaration order).
///
/// # Panics
///
/// Panics if `input_fns` does not match the primary-input count.
pub fn output_functions(bdd: &mut Bdd, netlist: &Netlist, input_fns: &[Ref]) -> Vec<Ref> {
    let values = net_functions(bdd, netlist, input_fns);
    netlist
        .outputs()
        .iter()
        .map(|n| values[n.index()])
        .collect()
}

/// The nets in the transitive fanin of the primary outputs (the "live"
/// cone), as a bitmask by net index. Dead logic — cells whose output can
/// never reach an output — is excluded from settle-bound analyses because
/// its value never influences an observable signal.
#[must_use]
pub fn live_nets(netlist: &Netlist) -> Vec<bool> {
    let mut live = vec![false; netlist.net_count()];
    let mut stack: Vec<usize> = netlist.outputs().iter().map(|n| n.index()).collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        if let NetDriver::Cell(c) = netlist.driver(isa_netlist::NetId::from_index(i)) {
            stack.extend(netlist.cell(c).inputs.iter().map(|n| n.index()));
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::{build_exact, AdderTopology};

    #[test]
    fn all_cell_kinds_match_concrete_eval() {
        use isa_netlist::cell::ALL_CELL_KINDS;
        for kind in ALL_CELL_KINDS {
            let arity = kind.arity();
            let mut bdd = Bdd::new(3);
            let vars: Vec<Ref> = (0..arity as u32).map(|v| bdd.var(v)).collect();
            let f = eval_cell(&mut bdd, kind, &vars);
            for bits in 0..1u32 << arity {
                let ins: Vec<bool> = (0..arity).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(
                    bdd.eval(f, |v| ins[v as usize]),
                    kind.eval(&ins),
                    "{kind:?} ins={ins:?}"
                );
            }
        }
    }

    #[test]
    fn netlist_outputs_match_word_eval() {
        let adder = build_exact(6, AdderTopology::Sklansky);
        let nl = adder.netlist();
        let mut bdd = Bdd::new(12);
        let input_fns: Vec<Ref> = (0..12).map(|v| bdd.var(v)).collect();
        let outs = output_functions(&mut bdd, nl, &input_fns);
        for a in 0..64u64 {
            for b in 0..64u64 {
                let mut got = 0u64;
                for (i, &o) in outs.iter().enumerate() {
                    // Input order is a[0..6] then b[0..6]; var v maps to
                    // input pin v here (identity order for this test).
                    let bit = bdd.eval(o, |v| {
                        if v < 6 {
                            (a >> v) & 1 == 1
                        } else {
                            (b >> (v - 6)) & 1 == 1
                        }
                    });
                    got |= u64::from(bit) << i;
                }
                assert_eq!(got, a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn live_cone_covers_everything_in_a_pure_adder() {
        let adder = build_exact(8, AdderTopology::Ripple);
        let nl = adder.netlist();
        let live = live_nets(nl);
        // A ripple adder has no dead logic: every net feeds the outputs.
        assert!(nl
            .inputs()
            .iter()
            .chain(nl.outputs())
            .all(|n| live[n.index()]));
    }
}
