//! Exact structural error distributions by model counting.
//!
//! The signed structural error `e = ygold - ydiamond` of a design is built
//! symbolically: spec and exact-reference output functions share one store
//! (see [`crate::spec`]), a two's-complement subtractor over BDD planes
//! yields the difference bits, and model counting turns them into **exact**
//! statistics over all `2^(2W)` equiprobable operand pairs — error rate,
//! signed mean, RMS, extreme values, and (support permitting) the full
//! PMF/CDF. No sampling, no independence approximation: this is the
//! quantity `DesignAnalysis::rms_error_approx` approximates, computed
//! exactly at any width up to 32.
//!
//! Overflow discipline: squared-error terms `2^(i+j) * count` can exceed
//! `u128` in principle (`count <= 2^64`, `i + j <= 66`), so the
//! sum-of-squares accumulates in 256 bits (a `(hi, lo)` pair of `u128`s)
//! and is only rounded once, at the final conversion to `f64`.

use isa_core::Design;
use std::collections::HashMap;
use std::rc::Rc;

use crate::bdd::{Bdd, Op, Ref};
use crate::spec::{spec_outputs, OperandVars};

/// Default cap on the number of distinct error values materialised for the
/// PMF; moments are exact regardless.
pub const DEFAULT_PMF_CAP: usize = 1 << 16;

/// Exact distribution of a design's structural error over all operand
/// pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorDistribution {
    width: u32,
    sum_e: i128,
    /// 256-bit `sum(e^2)` as `(hi, lo)`.
    sum_e2: (u128, u128),
    zero_count: u128,
    max_error: i64,
    min_error: i64,
    pmf: Option<Vec<(i64, u128)>>,
}

impl ErrorDistribution {
    /// Analyzes a design with the default PMF support cap
    /// ([`DEFAULT_PMF_CAP`]).
    ///
    /// # Panics
    ///
    /// Panics if the design is wider than 32 bits.
    #[must_use]
    pub fn analyze(design: &Design) -> Self {
        Self::analyze_with_pmf_cap(design, DEFAULT_PMF_CAP)
    }

    /// Analyzes a design; `pmf_cap` bounds the distinct error values
    /// materialised for the PMF (`0` skips the PMF entirely, and a support
    /// larger than the cap leaves [`Self::pmf`] as `None`). All scalar
    /// statistics are exact either way.
    ///
    /// # Panics
    ///
    /// Panics if the design is wider than 32 bits.
    #[must_use]
    pub fn analyze_with_pmf_cap(design: &Design, pmf_cap: usize) -> Self {
        let w = design.width();
        assert!(w <= 32, "error distributions are limited to 32-bit designs");
        let mut bdd = Bdd::new(2 * w);
        let vars = OperandVars::interleaved(&mut bdd, w);
        let approx = spec_outputs(&mut bdd, design, &vars);
        let exact = spec_outputs(&mut bdd, &Design::Exact { width: w }, &vars);

        // d = approx - exact in (w + 2)-bit two's complement, via
        // approx + !exact + 1. Both operands are w + 1 bits zero-extended
        // by one; |e| < 2^(w+1), so the encoding never wraps.
        let n = w as usize + 2;
        let zero = bdd.zero();
        let ext = |v: &Vec<Ref>, i: usize| if i < v.len() { v[i] } else { zero };
        let mut d = Vec::with_capacity(n);
        let mut carry = bdd.one();
        for i in 0..n {
            let ai = ext(&approx, i);
            let bi = bdd.not(ext(&exact, i));
            let axb = bdd.apply(Op::Xor, ai, bi);
            d.push(bdd.apply(Op::Xor, axb, carry));
            // carry' = maj(ai, bi, carry) = (ai & bi) | (carry & (ai ^ bi)).
            let g = bdd.apply(Op::And, ai, bi);
            let t = bdd.apply(Op::And, carry, axb);
            carry = bdd.apply(Op::Or, g, t);
        }
        let sign = d[n - 1];

        // Magnitude |e| by conditional negation: (d XOR sign) + sign.
        let mut mag = Vec::with_capacity(n);
        let mut carry = sign;
        for &di in &d {
            let x = bdd.apply(Op::Xor, di, sign);
            mag.push(bdd.apply(Op::Xor, x, carry));
            carry = bdd.apply(Op::And, x, carry);
        }
        debug_assert_eq!(mag[n - 1], zero, "|e| must fit in w + 1 bits");

        // P[e = 0] and the signed first moment from per-bit counts.
        let mut all_zero = bdd.one();
        for &di in &d {
            let nd = bdd.not(di);
            all_zero = bdd.apply(Op::And, all_zero, nd);
        }
        let zero_count = bdd.satcount(all_zero);

        let not_sign = bdd.not(sign);
        let mut sum_e = 0i128;
        for (i, &mi) in mag.iter().enumerate() {
            let pos = bdd.apply(Op::And, mi, not_sign);
            let neg = bdd.apply(Op::And, mi, sign);
            let diff = bdd.satcount(pos) as i128 - bdd.satcount(neg) as i128;
            sum_e += diff << i;
        }

        // Second moment: sum(e^2) = sum_{i,j} 2^(i+j) #(m_i & m_j), every
        // term non-negative by the sign/magnitude split.
        let mut sum_e2 = (0u128, 0u128);
        for i in 0..n {
            for j in i..n {
                let both = bdd.apply(Op::And, mag[i], mag[j]);
                let count = bdd.satcount(both);
                if count == 0 {
                    continue;
                }
                // Off-diagonal pairs occur twice in the double sum.
                let shift = (i + j + usize::from(i != j)) as u32;
                sum_e2 = add256(sum_e2, shl256(count, shift));
            }
        }

        // Signed extremes by greedy maximisation of the magnitude vector
        // restricted to each sign.
        let max_error = bdd
            .max_value(&mag, not_sign)
            .map_or(0, |v| i64::try_from(v).expect("|e| fits in i64"));
        let min_error = bdd
            .max_value(&mag, sign)
            .map_or(0, |v| -i64::try_from(v).expect("|e| fits in i64"));

        let pmf = if pmf_cap == 0 {
            None
        } else {
            enumerate_pmf(&bdd, &d, pmf_cap)
        };

        Self {
            width: w,
            sum_e,
            sum_e2,
            zero_count,
            max_error,
            min_error,
            pmf,
        }
    }

    /// Operand width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of operand pairs covered: `2^(2 * width)`.
    #[must_use]
    pub fn total_pairs(&self) -> u128 {
        1u128 << (2 * self.width)
    }

    /// Exact number of pairs with `e = 0`.
    #[must_use]
    pub fn zero_count(&self) -> u128 {
        self.zero_count
    }

    /// Fraction of pairs with a non-zero error.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        1.0 - count_to_f64(self.zero_count) / count_to_f64(self.total_pairs())
    }

    /// Exact signed error sum over all pairs.
    #[must_use]
    pub fn sum_error(&self) -> i128 {
        self.sum_e
    }

    /// Mean signed error.
    #[must_use]
    pub fn mean_error(&self) -> f64 {
        (self.sum_e as f64) / count_to_f64(self.total_pairs())
    }

    /// Exact `sum(e^2)` as a 256-bit `(hi, lo)` pair.
    #[must_use]
    pub fn sum_squared_error(&self) -> (u128, u128) {
        self.sum_e2
    }

    /// Root-mean-square error in absolute (LSB) units.
    #[must_use]
    pub fn rms_error(&self) -> f64 {
        let (hi, lo) = self.sum_e2;
        let sum = (hi as f64) * 2f64.powi(128) + count_to_f64(lo);
        (sum / count_to_f64(self.total_pairs())).sqrt()
    }

    /// Largest (most positive) error value attained.
    #[must_use]
    pub fn max_error(&self) -> i64 {
        self.max_error
    }

    /// Smallest (most negative) error value attained.
    #[must_use]
    pub fn min_error(&self) -> i64 {
        self.min_error
    }

    /// Largest `|e|` attained.
    #[must_use]
    pub fn max_abs_error(&self) -> u64 {
        self.max_error
            .unsigned_abs()
            .max(self.min_error.unsigned_abs())
    }

    /// The exact PMF as `(value, count)` pairs sorted by value, if its
    /// support fit under the analysis cap.
    #[must_use]
    pub fn pmf(&self) -> Option<&[(i64, u128)]> {
        self.pmf.as_deref()
    }

    /// The exact CDF as `(value, cumulative count)` pairs sorted by value,
    /// if the PMF was materialised.
    #[must_use]
    pub fn cdf(&self) -> Option<Vec<(i64, u128)>> {
        let pmf = self.pmf.as_ref()?;
        let mut acc = 0u128;
        Some(
            pmf.iter()
                .map(|&(v, c)| {
                    acc += c;
                    (v, acc)
                })
                .collect(),
        )
    }
}

/// `x * 2^shift` as a 256-bit `(hi, lo)` pair; `shift < 128`.
fn shl256(x: u128, shift: u32) -> (u128, u128) {
    debug_assert!(shift < 128);
    if shift == 0 {
        (0, x)
    } else {
        (x >> (128 - shift), x << shift)
    }
}

/// 256-bit addition; panics on (impossible) overflow past 2^256.
fn add256(a: (u128, u128), b: (u128, u128)) -> (u128, u128) {
    let (lo, carry) = a.1.overflowing_add(b.1);
    let hi =
        a.0.checked_add(b.0)
            .and_then(|h| h.checked_add(u128::from(carry)))
            .expect("sum of squares exceeds 256 bits");
    (hi, lo)
}

/// Exact f64 of a count (counts up to 2^128 convert with one rounding).
fn count_to_f64(c: u128) -> f64 {
    c as f64
}

/// Enumerates the image of the two's-complement bit vector `bits` with
/// multiplicities by cofactor recursion over the variable order, memoised
/// on `(level, node tuple)`. Returns `None` if the support exceeds `cap`.
fn enumerate_pmf(bdd: &Bdd, bits: &[Ref], cap: usize) -> Option<Vec<(i64, u128)>> {
    type Memo = HashMap<(u32, Vec<Ref>), Rc<HashMap<i64, u128>>>;
    // The memo key includes the level so residual-variable scaling (the
    // `2^(num_vars - level)` factor on constant tails) stays correct.
    fn rec(
        bdd: &Bdd,
        bits: &[Ref],
        level: u32,
        cap: usize,
        memo: &mut Memo,
    ) -> Option<Rc<HashMap<i64, u128>>> {
        let num_vars = bdd.num_vars();
        if bits.iter().all(|&b| bdd.root_var(b).is_none()) {
            let mut value = 0i64;
            for (i, &b) in bits.iter().enumerate() {
                if b == bdd.one() {
                    value |= 1 << i;
                }
            }
            if bits.last() == Some(&bdd.one()) {
                value -= 1 << bits.len(); // two's-complement sign
            }
            let count = 1u128 << (num_vars - level);
            return Some(Rc::new(HashMap::from([(value, count)])));
        }
        let key = (level, bits.to_vec());
        if let Some(hit) = memo.get(&key) {
            return Some(Rc::clone(hit));
        }
        let mut lo_bits = Vec::with_capacity(bits.len());
        let mut hi_bits = Vec::with_capacity(bits.len());
        for &b in bits {
            let (lo, hi) = bdd.cofactors_at(b, level);
            lo_bits.push(lo);
            hi_bits.push(hi);
        }
        let lo_map = rec(bdd, &lo_bits, level + 1, cap, memo)?;
        let hi_map = rec(bdd, &hi_bits, level + 1, cap, memo)?;
        let mut merged: HashMap<i64, u128> = (*lo_map).clone();
        for (&v, &c) in hi_map.iter() {
            *merged.entry(v).or_insert(0) += c;
        }
        if merged.len() > cap {
            return None;
        }
        let rc = Rc::new(merged);
        memo.insert(key, Rc::clone(&rc));
        Some(rc)
    }
    let mut memo = Memo::new();
    let map = rec(bdd, bits, 0, cap, &mut memo)?;
    let mut pmf: Vec<(i64, u128)> = map.iter().map(|(&v, &c)| (v, c)).collect();
    pmf.sort_unstable();
    Some(pmf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_core::IsaConfig;

    fn exhaustive(design: &Design) -> (u128, i128, u128, i64, i64) {
        let w = design.width();
        let model = design.behavioural();
        let (mut zeros, mut sum, mut sum2) = (0u128, 0i128, 0u128);
        let (mut max_e, mut min_e) = (i64::MIN, i64::MAX);
        for a in 0..1u64 << w {
            for b in 0..1u64 << w {
                let e = model.add(a, b) as i64 - (a + b) as i64;
                zeros += u128::from(e == 0);
                sum += i128::from(e);
                sum2 += u128::from(e.unsigned_abs()) * u128::from(e.unsigned_abs());
                max_e = max_e.max(e);
                min_e = min_e.min(e);
            }
        }
        (zeros, sum, sum2, max_e, min_e)
    }

    #[test]
    fn matches_exhaustive_enumeration_exactly() {
        for (b, s, c, r, guess) in [
            (4, 0, 0, 0, isa_core::SpecGuess::Zero),
            (4, 2, 1, 2, isa_core::SpecGuess::Zero),
            (2, 1, 1, 1, isa_core::SpecGuess::One),
            (4, 4, 0, 2, isa_core::SpecGuess::One),
        ] {
            let cfg = IsaConfig::with_guess(8, b, s, c, r, guess).unwrap();
            let design = Design::Isa(cfg);
            let dist = ErrorDistribution::analyze(&design);
            let (zeros, sum, sum2, max_e, min_e) = exhaustive(&design);
            assert_eq!(dist.zero_count(), zeros, "{cfg}");
            assert_eq!(dist.sum_error(), sum, "{cfg}");
            assert_eq!(dist.sum_squared_error(), (0, sum2), "{cfg}");
            assert_eq!(dist.max_error(), max_e, "{cfg}");
            assert_eq!(dist.min_error(), min_e, "{cfg}");
            // The PMF must re-aggregate to the same totals.
            let pmf = dist.pmf().expect("8-bit support is small");
            assert_eq!(pmf.iter().map(|&(_, c)| c).sum::<u128>(), 1u128 << 16);
            assert_eq!(
                pmf.iter()
                    .map(|&(v, c)| i128::from(v) * c as i128)
                    .sum::<i128>(),
                sum
            );
        }
    }

    #[test]
    fn exact_design_has_no_error() {
        let dist = ErrorDistribution::analyze(&Design::Exact { width: 16 });
        assert_eq!(dist.zero_count(), dist.total_pairs());
        assert_eq!(dist.error_rate(), 0.0);
        assert_eq!(dist.rms_error(), 0.0);
        assert_eq!(dist.max_abs_error(), 0);
        assert_eq!(dist.pmf(), Some([(0i64, 1u128 << 32)].as_slice()));
    }

    #[test]
    fn matches_analytical_model_where_it_is_exact() {
        // DesignAnalysis' error rate and mean are exact for guess-0
        // non-overlapping designs; the symbolic counts must agree.
        let cfg = IsaConfig::new(16, 4, 2, 1, 2).unwrap();
        let dist = ErrorDistribution::analyze(&Design::Isa(cfg));
        let analysis = isa_core::DesignAnalysis::analyze(&cfg);
        assert!((dist.error_rate() - analysis.error_rate()).abs() < 1e-12);
        assert!((dist.mean_error() - analysis.mean_error()).abs() < 1e-6);
    }

    #[test]
    fn pmf_cap_zero_skips_pmf_but_keeps_moments() {
        let cfg = IsaConfig::new(8, 4, 0, 0, 0).unwrap();
        let design = Design::Isa(cfg);
        let with = ErrorDistribution::analyze(&design);
        let without = ErrorDistribution::analyze_with_pmf_cap(&design, 0);
        assert!(without.pmf().is_none());
        assert_eq!(with.sum_squared_error(), without.sum_squared_error());
        assert_eq!(with.zero_count(), without.zero_count());
    }
}
