//! False-path-aware settle bounds by exact symbolic timed simulation.
//!
//! Topological STA assumes every path can propagate a transition; paths
//! that are never sensitized (false paths) make its critical delay
//! pessimistic. Classic floating-mode sensitization checks are *unsound*
//! against a transport-delay simulator (glitches can travel paths that a
//! static analysis rules out), so this module does the exact thing
//! instead: a **symbolic timed simulation** over one clock cycle.
//!
//! Each primary input `i` gets two variables — `old_i` (the settled value
//! from the previous cycle) and `new_i` (this cycle's value) — and every
//! net carries a *waveform*: an initial function of the old variables plus
//! a compressed event list `(t_fs, function)` in the same femtosecond grid
//! and per-cell `ps_to_fs` quantisation as the event-driven simulator.
//! Transport semantics `out(t) = f(in(t - d))` are applied cell by cell in
//! topological order; a segment is dropped the moment its function node
//! equals its predecessor's, which is exact thanks to canonicity.
//!
//! The **proven settle bound** is the last event time over all *live* nets
//! (dead logic never influences an output, and every live net's settling
//! is needed for the settled-state induction across cycles): for any
//! `(old, new)` pair, every live net is provably quiescent from that time
//! on. It is sound by construction and never exceeds the topological bound
//! in the same grid; on budget bailouts the analysis degrades to exactly
//! the topological bound.

use isa_netlist::timing::ps_to_fs;
use isa_netlist::{DelayAnnotation, NetDriver, Netlist};

use crate::bdd::{Bdd, Ref};
use crate::netlist::{eval_cell, live_nets, net_functions};

/// Budget knobs for the symbolic simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaOptions {
    /// Bail out once any net's waveform carries more events than this.
    pub max_events_per_net: usize,
    /// Bail out once the BDD store exceeds this many nodes.
    pub max_nodes: usize,
}

impl Default for StaOptions {
    fn default() -> Self {
        Self {
            max_events_per_net: 512,
            max_nodes: 4_000_000,
        }
    }
}

/// Result of a symbolic settle-bound analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicSta {
    /// Proven settle bound: every live net is quiescent from this time on,
    /// for every `(old, new)` input pair. Never exceeds
    /// [`Self::topo_crit_fs`].
    pub proven_crit_fs: u64,
    /// Topological settle bound over the live nets in the same
    /// femtosecond quantisation (per-cell [`ps_to_fs`]).
    pub topo_crit_fs: u64,
    /// True iff the symbolic simulation completed within budget; `false`
    /// means [`Self::proven_crit_fs`] fell back to the topological bound.
    pub exact: bool,
    /// True iff every live net's waveform was re-proved consistent: the
    /// initial segment equals the net's function of the old inputs and the
    /// final segment equals its function of the new inputs. Vacuously true
    /// on a budget bailout.
    pub functions_verified: bool,
}

impl SymbolicSta {
    /// Proven settle bound in picoseconds.
    #[must_use]
    pub fn proven_crit_ps(&self) -> f64 {
        self.proven_crit_fs as f64 / 1000.0
    }

    /// Femtoseconds of topological pessimism eliminated by the proof.
    #[must_use]
    pub fn tightening_fs(&self) -> u64 {
        self.topo_crit_fs - self.proven_crit_fs
    }
}

#[derive(Debug, Clone)]
struct Wave {
    initial: Ref,
    /// `(time_fs, function)` ascending; each function differs from its
    /// predecessor (and the first from `initial`).
    events: Vec<(u64, Ref)>,
}

impl Wave {
    fn constant(f: Ref) -> Self {
        Self {
            initial: f,
            events: Vec::new(),
        }
    }

    fn value_at(&self, t: u64) -> Ref {
        match self.events.iter().rev().find(|&&(et, _)| et <= t) {
            Some(&(_, f)) => f,
            None => self.initial,
        }
    }

    fn last_value(&self) -> Ref {
        self.events.last().map_or(self.initial, |&(_, f)| f)
    }

    fn last_event_fs(&self) -> u64 {
        self.events.last().map_or(0, |&(t, _)| t)
    }
}

/// Runs the symbolic timed simulation of one clock cycle.
///
/// # Panics
///
/// Panics if the annotation length differs from the cell count.
#[must_use]
pub fn analyze_settle(
    netlist: &Netlist,
    annotation: &DelayAnnotation,
    options: &StaOptions,
) -> SymbolicSta {
    assert_eq!(
        annotation.len(),
        netlist.cell_count(),
        "annotation/netlist mismatch"
    );
    let n_in = netlist.inputs().len();
    let delays_fs: Vec<u64> = (0..netlist.cell_count())
        .map(|c| ps_to_fs(annotation.delay_ps(isa_netlist::CellId::from_index(c))))
        .collect();
    let live = live_nets(netlist);

    // Topological arrivals over live nets in the same quantisation.
    let mut arrival = vec![0u64; netlist.net_count()];
    for (c, cell) in netlist.cells().iter().enumerate() {
        let in_max = cell
            .inputs
            .iter()
            .map(|n| arrival[n.index()])
            .max()
            .unwrap_or(0);
        arrival[cell.output.index()] = in_max + delays_fs[c];
    }
    let topo_crit_fs = (0..netlist.net_count())
        .filter(|&i| live[i])
        .map(|i| arrival[i])
        .max()
        .unwrap_or(0);
    let fallback = |verified: bool| SymbolicSta {
        proven_crit_fs: topo_crit_fs,
        topo_crit_fs,
        exact: false,
        functions_verified: verified,
    };

    // Variable order: adder netlists declare inputs as a[0..w] then
    // b[0..w]; interleave the operands (a_i, b_i adjacent, LSB first) so
    // carry-chain functions stay linear, then interleave old/new within
    // each pin. For odd input counts fall back to declaration order — the
    // order affects cost only, never soundness.
    let pin_pos = |i: usize| -> u32 {
        if n_in.is_multiple_of(2) {
            let half = n_in / 2;
            if i < half {
                2 * i as u32
            } else {
                2 * (i - half) as u32 + 1
            }
        } else {
            i as u32
        }
    };
    let mut bdd = Bdd::new(2 * n_in as u32);
    let old_vars: Vec<Ref> = (0..n_in).map(|i| bdd.var(2 * pin_pos(i))).collect();
    let new_vars: Vec<Ref> = (0..n_in).map(|i| bdd.var(2 * pin_pos(i) + 1)).collect();

    let mut waves: Vec<Wave> = vec![Wave::constant(bdd.zero()); netlist.net_count()];
    for (i, net) in netlist.inputs().iter().enumerate() {
        waves[net.index()] = Wave {
            initial: old_vars[i],
            events: vec![(0, new_vars[i])],
        };
    }

    let mut times: Vec<u64> = Vec::new();
    let mut ins: Vec<Ref> = Vec::new();
    for (c, cell) in netlist.cells().iter().enumerate() {
        if bdd.num_nodes() > options.max_nodes {
            return fallback(true);
        }
        let d = delays_fs[c];
        times.clear();
        for net in &cell.inputs {
            times.extend(waves[net.index()].events.iter().map(|&(t, _)| t + d));
        }
        times.sort_unstable();
        times.dedup();

        ins.clear();
        ins.extend(cell.inputs.iter().map(|n| waves[n.index()].initial));
        let initial = eval_cell(&mut bdd, cell.kind, &ins);
        let mut wave = Wave::constant(initial);
        for &t in &times {
            ins.clear();
            ins.extend(cell.inputs.iter().map(|n| waves[n.index()].value_at(t - d)));
            let f = eval_cell(&mut bdd, cell.kind, &ins);
            if f != wave.last_value() {
                wave.events.push((t, f));
            }
        }
        if wave.events.len() > options.max_events_per_net {
            return fallback(true);
        }
        waves[cell.output.index()] = wave;
    }

    let proven_crit_fs = (0..netlist.net_count())
        .filter(|&i| live[i])
        .map(|i| waves[i].last_event_fs())
        .max()
        .unwrap_or(0);

    // Re-proof: initial segments must be the old-input functions, final
    // segments the new-input functions — ties the waveform algebra back to
    // the plain functional semantics.
    let old_fns = net_functions(&mut bdd, netlist, &old_vars);
    let new_fns = net_functions(&mut bdd, netlist, &new_vars);
    let functions_verified = (0..netlist.net_count())
        .filter(|&i| {
            live[i]
                && !matches!(
                    netlist.driver(isa_netlist::NetId::from_index(i)),
                    NetDriver::Input
                )
        })
        .all(|i| waves[i].initial == old_fns[i] && waves[i].last_value() == new_fns[i]);

    debug_assert!(proven_crit_fs <= topo_crit_fs, "proof exceeds topology");
    SymbolicSta {
        proven_crit_fs,
        topo_crit_fs,
        exact: true,
        functions_verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_netlist::{build_exact, AdderTopology, CellLibrary};

    fn nominal(nl: &Netlist) -> DelayAnnotation {
        DelayAnnotation::nominal(nl, &CellLibrary::industrial_65nm())
    }

    /// Brute-force transport-delay event simulation of one input change,
    /// returning the last time any net changes value.
    fn brute_force_settle(
        nl: &Netlist,
        delays_fs: &[u64],
        old: &[bool],
        new: &[bool],
        live: &[bool],
    ) -> u64 {
        // Value of net `i` at time `t` under transport semantics is fully
        // determined recursively; sample all grid times up to the topo
        // bound.
        fn value(
            nl: &Netlist,
            delays: &[u64],
            old: &[bool],
            new: &[bool],
            net: usize,
            t: i64,
        ) -> bool {
            match nl.driver(isa_netlist::NetId::from_index(net)) {
                NetDriver::Input => {
                    let pin = nl.inputs().iter().position(|n| n.index() == net).unwrap();
                    if t >= 0 {
                        new[pin]
                    } else {
                        old[pin]
                    }
                }
                NetDriver::Cell(c) => {
                    let cell = nl.cell(c);
                    let d = delays[c.index()] as i64;
                    let ins: Vec<bool> = cell
                        .inputs
                        .iter()
                        .map(|n| value(nl, delays, old, new, n.index(), t - d))
                        .collect();
                    cell.kind.eval(&ins)
                }
            }
        }
        let horizon: i64 = (0..nl.net_count())
            .map(|n| {
                fn arr(nl: &Netlist, delays: &[u64], net: usize) -> u64 {
                    match nl.driver(isa_netlist::NetId::from_index(net)) {
                        NetDriver::Input => 0,
                        NetDriver::Cell(c) => {
                            let cell = nl.cell(c);
                            delays[c.index()]
                                + cell
                                    .inputs
                                    .iter()
                                    .map(|n| arr(nl, delays, n.index()))
                                    .max()
                                    .unwrap_or(0)
                        }
                    }
                }
                arr(nl, delays_fs, n)
            })
            .max()
            .unwrap_or(0) as i64;
        let mut settle = 0u64;
        for (net, &is_live) in live.iter().enumerate().take(nl.net_count()) {
            if !is_live {
                continue;
            }
            let fin = value(nl, delays_fs, old, new, net, horizon);
            for t in (0..=horizon).rev() {
                if value(nl, delays_fs, old, new, net, t) != fin {
                    settle = settle.max(t as u64 + 1);
                    break;
                }
            }
        }
        settle
    }

    #[test]
    fn proven_bound_is_sound_and_no_worse_than_topological() {
        let adder = build_exact(4, AdderTopology::Ripple);
        let nl = adder.netlist();
        let ann = nominal(nl);
        let sta = analyze_settle(nl, &ann, &StaOptions::default());
        assert!(sta.exact);
        assert!(sta.functions_verified);
        assert!(sta.proven_crit_fs <= sta.topo_crit_fs);

        let delays_fs: Vec<u64> = (0..nl.cell_count())
            .map(|c| ps_to_fs(ann.delay_ps(isa_netlist::CellId::from_index(c))))
            .collect();
        let live = live_nets(nl);
        // The symbolic bound must dominate the true settle time of every
        // concrete transition pair (soundness, checked by brute force).
        let mut worst = 0u64;
        for case in 0u32..64 {
            let dec = |v: u32| (0..8).map(|i| v >> i & 1 == 1).collect::<Vec<bool>>();
            let old = dec(case.wrapping_mul(0x9E37).rotate_left(3));
            let new = dec(case.wrapping_mul(0x85EB).rotate_left(7));
            let settle = brute_force_settle(nl, &delays_fs, &old, &new, &live);
            assert!(
                settle <= sta.proven_crit_fs,
                "case {case}: settle {settle} > proven {}",
                sta.proven_crit_fs
            );
            worst = worst.max(settle);
        }
        assert!(worst > 0, "test must exercise real transitions");
    }

    #[test]
    fn tiny_budget_falls_back_to_topological() {
        let adder = build_exact(8, AdderTopology::KoggeStone);
        let nl = adder.netlist();
        let ann = nominal(nl);
        let tight = StaOptions {
            max_events_per_net: 1,
            max_nodes: usize::MAX,
        };
        let sta = analyze_settle(nl, &ann, &tight);
        assert!(!sta.exact);
        assert_eq!(sta.proven_crit_fs, sta.topo_crit_fs);
    }

    #[test]
    fn select_topology_admits_false_paths() {
        // Carry-select pre-computes both branches and muxes: the mux's
        // select ripple is often provably unable to glitch the full
        // topological depth. At minimum the proven bound must never
        // exceed the topological one; record that it is meaningful.
        let adder = build_exact(16, AdderTopology::CarrySelect(4));
        let nl = adder.netlist();
        let ann = nominal(nl);
        let sta = analyze_settle(nl, &ann, &StaOptions::default());
        assert!(sta.exact);
        assert!(sta.functions_verified);
        assert!(sta.proven_crit_fs <= sta.topo_crit_fs);
        assert!(sta.proven_crit_fs > 0);
    }
}
