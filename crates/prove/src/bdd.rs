//! A small reduced ordered binary decision diagram (ROBDD) engine.
//!
//! Nodes are hash-consed into a shared store, so two [`Ref`]s denote the
//! same Boolean function **iff** they are equal — equivalence checking is a
//! pointer comparison once both sides are built. The engine deliberately
//! omits complement edges and dynamic reordering: adder cones are linear in
//! the interleaved operand order (see [`crate::spec`]), so the classic
//! textbook representation is simplest and fast enough.
//!
//! Provided operations: the Boolean connectives with memoised [`Bdd::apply`]
//! / [`Bdd::ite`], satisfying-assignment counting ([`Bdd::satcount`]),
//! witness extraction ([`Bdd::any_sat`]), greedy maximisation of an
//! unsigned bit-vector ([`Bdd::max_value`]), and structural cofactoring for
//! the model-counting image computation in [`crate::dist`].

use std::collections::HashMap;

/// A reference to a node in a [`Bdd`] store.
///
/// Refs are canonical: within one store, `f == g` iff the two functions are
/// identical. Refs from different stores must never be mixed (not checked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

/// Sentinel variable index for the two terminal nodes; orders after every
/// real variable.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

/// Binary Boolean connectives accepted by [`Bdd::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
}

impl Op {
    fn eval(self, a: bool, b: bool) -> bool {
        match self {
            Op::And => a && b,
            Op::Or => a || b,
            Op::Xor => a ^ b,
        }
    }
}

/// A hash-consed ROBDD node store over a fixed set of variables.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, u32>,
    apply_cache: HashMap<(Op, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
    num_vars: u32,
}

impl Bdd {
    /// Creates a store over variables `0..num_vars` (index order = variable
    /// order, variable 0 nearest the root).
    #[must_use]
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars < TERMINAL_VAR, "variable count out of range");
        let false_node = Node {
            var: TERMINAL_VAR,
            lo: 0,
            hi: 0,
        };
        let true_node = Node {
            var: TERMINAL_VAR,
            lo: 1,
            hi: 1,
        };
        Self {
            nodes: vec![false_node, true_node],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of variables the store was created with.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Total number of nodes ever interned (terminals included) — the
    /// engine's memory footprint, used for blowup regression bounds and
    /// budget bailouts.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant-false function.
    #[must_use]
    pub fn zero(&self) -> Ref {
        Ref(0)
    }

    /// The constant-true function.
    #[must_use]
    pub fn one(&self) -> Ref {
        Ref(1)
    }

    /// The projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&mut self, v: u32) -> Ref {
        assert!(v < self.num_vars, "variable {v} out of range");
        Ref(self.mk(v, 0, 1))
    }

    /// Interns a (reduced) node.
    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("BDD store overflow");
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    fn node(&self, id: u32) -> Node {
        self.nodes[id as usize]
    }

    /// The root variable of `f`, or `None` for the terminals.
    #[must_use]
    pub fn root_var(&self, f: Ref) -> Option<u32> {
        let v = self.node(f.0).var;
        (v != TERMINAL_VAR).then_some(v)
    }

    /// The two cofactors of `f` with respect to variable `v`, which must not
    /// be below `f`'s root (i.e. `v <= root_var(f)` in the order). For a
    /// terminal or a root strictly below `v`, both cofactors are `f` itself.
    #[must_use]
    pub fn cofactors_at(&self, f: Ref, v: u32) -> (Ref, Ref) {
        let n = self.node(f.0);
        if n.var == v {
            (Ref(n.lo), Ref(n.hi))
        } else {
            debug_assert!(n.var > v, "cofactor variable below the root");
            (f, f)
        }
    }

    /// Applies a binary connective, memoised over the node pair.
    pub fn apply(&mut self, op: Op, f: Ref, g: Ref) -> Ref {
        Ref(self.apply_rec(op, f.0, g.0))
    }

    fn apply_rec(&mut self, op: Op, f: u32, g: u32) -> u32 {
        // Terminal short-circuits.
        let (f, g) = if f <= g { (f, g) } else { (g, f) }; // all ops commute
        if f <= 1 && g <= 1 {
            return u32::from(op.eval(f == 1, g == 1));
        }
        match (op, f) {
            (Op::And, 0) => return 0,
            (Op::And, 1) => return g,
            (Op::Or, 1) => return 1,
            (Op::Or, 0) => return g,
            (Op::Xor, 0) => return g,
            _ => {}
        }
        if f == g {
            return match op {
                Op::And | Op::Or => f,
                Op::Xor => 0,
            };
        }
        if let Some(&r) = self.apply_cache.get(&(op, f, g)) {
            return r;
        }
        let nf = self.node(f);
        let ng = self.node(g);
        let v = nf.var.min(ng.var);
        let (f0, f1) = if nf.var == v { (nf.lo, nf.hi) } else { (f, f) };
        let (g0, g1) = if ng.var == v { (ng.lo, ng.hi) } else { (g, g) };
        let lo = self.apply_rec(op, f0, g0);
        let hi = self.apply_rec(op, f1, g1);
        let r = self.mk(v, lo, hi);
        self.apply_cache.insert((op, f, g), r);
        r
    }

    /// Complement.
    pub fn not(&mut self, f: Ref) -> Ref {
        let one = self.one();
        self.apply(Op::Xor, f, one)
    }

    /// If-then-else: `cond ? then_f : else_f`, memoised over the triple.
    pub fn ite(&mut self, cond: Ref, then_f: Ref, else_f: Ref) -> Ref {
        Ref(self.ite_rec(cond.0, then_f.0, else_f.0))
    }

    fn ite_rec(&mut self, c: u32, t: u32, e: u32) -> u32 {
        if c == 1 {
            return t;
        }
        if c == 0 {
            return e;
        }
        if t == e {
            return t;
        }
        if t == 1 && e == 0 {
            return c;
        }
        if let Some(&r) = self.ite_cache.get(&(c, t, e)) {
            return r;
        }
        let nc = self.node(c);
        let nt = self.node(t);
        let ne = self.node(e);
        let v = nc.var.min(nt.var).min(ne.var);
        let (c0, c1) = if nc.var == v { (nc.lo, nc.hi) } else { (c, c) };
        let (t0, t1) = if nt.var == v { (nt.lo, nt.hi) } else { (t, t) };
        let (e0, e1) = if ne.var == v { (ne.lo, ne.hi) } else { (e, e) };
        let lo = self.ite_rec(c0, t0, e0);
        let hi = self.ite_rec(c1, t1, e1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((c, t, e), r);
        r
    }

    /// Evaluates `f` under a concrete assignment.
    #[must_use]
    pub fn eval(&self, f: Ref, assignment: impl Fn(u32) -> bool) -> bool {
        let mut id = f.0;
        loop {
            let n = self.node(id);
            if n.var == TERMINAL_VAR {
                return id == 1;
            }
            id = if assignment(n.var) { n.hi } else { n.lo };
        }
    }

    /// Number of satisfying assignments of `f` over all `num_vars`
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if the store has more than 127 variables (the `u128` count
    /// could overflow).
    #[must_use]
    pub fn satcount(&self, f: Ref) -> u128 {
        assert!(self.num_vars <= 127, "satcount limited to 127 variables");
        let mut memo: HashMap<u32, u128> = HashMap::new();
        // `sub(id)` = satisfying assignments of the variables at or below
        // the node's own level; scale the root by the variables above it.
        let sub = self.satcount_rec(f.0, &mut memo);
        let root_level = self.node(f.0).var.min(self.num_vars);
        sub << root_level
    }

    fn satcount_rec(&self, id: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        if id == 0 {
            return 0;
        }
        if id == 1 {
            return 1;
        }
        if let Some(&c) = memo.get(&id) {
            return c;
        }
        let n = self.node(id);
        let lo_level = self.node(n.lo).var.min(self.num_vars);
        let hi_level = self.node(n.hi).var.min(self.num_vars);
        let lo = self.satcount_rec(n.lo, memo) << (lo_level - n.var - 1);
        let hi = self.satcount_rec(n.hi, memo) << (hi_level - n.var - 1);
        let c = lo + hi;
        memo.insert(id, c);
        c
    }

    /// A satisfying assignment of `f` (variables off the witness path are
    /// false), or `None` if `f` is unsatisfiable.
    #[must_use]
    pub fn any_sat(&self, f: Ref) -> Option<Vec<bool>> {
        if f.0 == 0 {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut id = f.0;
        while id > 1 {
            let n = self.node(id);
            // Reduced diagrams reach the 1-terminal from every non-zero
            // node through at least one branch.
            if n.hi != 0 {
                assignment[n.var as usize] = true;
                id = n.hi;
            } else {
                id = n.lo;
            }
        }
        Some(assignment)
    }

    /// Maximum unsigned value of the bit vector `bits` (LSB first) over the
    /// satisfying set of `constraint`, or `None` if it is unsatisfiable.
    ///
    /// Greedy from the MSB down: taking a feasible high bit always
    /// dominates every combination of lower bits, so the scan is exact.
    pub fn max_value(&mut self, bits: &[Ref], constraint: Ref) -> Option<u128> {
        if constraint.0 == 0 {
            return None;
        }
        let mut value = 0u128;
        let mut c = constraint;
        for (i, &bit) in bits.iter().enumerate().rev() {
            let with_bit = self.apply(Op::And, c, bit);
            if with_bit.0 != 0 {
                value |= 1u128 << i;
                c = with_bit;
            } else {
                // `bit` is false on all of `c`; the constraint is unchanged
                // semantically, but conjoin for the invariant `c => !bit`.
                let nb = self.not(bit);
                c = self.apply(Op::And, c, nb);
            }
        }
        Some(value)
    }

    /// Number of nodes reachable from `f` (terminals excluded) — the size
    /// of the function's diagram, independent of the store's total size.
    #[must_use]
    pub fn reachable_nodes(&self, f: Ref) -> usize {
        let mut seen: Vec<u32> = Vec::new();
        let mut stack = vec![f.0];
        let mut visited = std::collections::HashSet::new();
        while let Some(id) = stack.pop() {
            if id <= 1 || !visited.insert(id) {
                continue;
            }
            seen.push(id);
            let n = self.node(id);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive truth-table evaluation over `n <= 16` variables.
    fn truth_table(bdd: &Bdd, f: Ref) -> Vec<bool> {
        let n = bdd.num_vars();
        assert!(n <= 16);
        (0..1u32 << n)
            .map(|bits| bdd.eval(f, |v| (bits >> v) & 1 == 1))
            .collect()
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let z = bdd.var(2);
        let xy = bdd.apply(Op::And, x, y);
        let f = bdd.apply(Op::Or, xy, z);
        for bits in 0..8u32 {
            let (a, b, c) = (bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1);
            assert_eq!(bdd.eval(f, |v| bits >> v & 1 == 1), (a && b) || c);
        }
    }

    #[test]
    fn canonical_refs_mean_semantic_equality() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0);
        let y = bdd.var(1);
        // x XOR y built two different ways must intern to the same node.
        let direct = bdd.apply(Op::Xor, x, y);
        let nx = bdd.not(x);
        let ny = bdd.not(y);
        let a = bdd.apply(Op::And, x, ny);
        let b = bdd.apply(Op::And, nx, y);
        let rebuilt = bdd.apply(Op::Or, a, b);
        assert_eq!(direct, rebuilt);
    }

    #[test]
    fn ite_agrees_with_apply_composition() {
        let mut bdd = Bdd::new(3);
        let c = bdd.var(0);
        let t = bdd.var(1);
        let e = bdd.var(2);
        let ite = bdd.ite(c, t, e);
        let ct = bdd.apply(Op::And, c, t);
        let nc = bdd.not(c);
        let nce = bdd.apply(Op::And, nc, e);
        let composed = bdd.apply(Op::Or, ct, nce);
        assert_eq!(ite, composed);
        assert_eq!(truth_table(&bdd, ite), truth_table(&bdd, composed));
    }

    #[test]
    fn satcount_counts_all_variables() {
        let mut bdd = Bdd::new(4);
        let x = bdd.var(0);
        assert_eq!(bdd.satcount(x), 8); // x free over 3 remaining vars
        let y = bdd.var(3);
        let xy = bdd.apply(Op::And, x, y);
        assert_eq!(bdd.satcount(xy), 4);
        assert_eq!(bdd.satcount(bdd.one()), 16);
        assert_eq!(bdd.satcount(bdd.zero()), 0);
    }

    #[test]
    fn any_sat_returns_a_model() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let nz = {
            let z = bdd.var(2);
            bdd.not(z)
        };
        let f = bdd.apply(Op::And, x, nz);
        let model = bdd.any_sat(f).unwrap();
        assert!(bdd.eval(f, |v| model[v as usize]));
        assert!(bdd.any_sat(bdd.zero()).is_none());
    }

    #[test]
    fn max_value_is_greedy_exact() {
        let mut bdd = Bdd::new(3);
        // Value = [v0, v1, v2] as bits 0..3 constrained by v2 -> !v0.
        let bits = [bdd.var(0), bdd.var(1), bdd.var(2)];
        let v0 = bits[0];
        let nv0 = bdd.not(v0);
        let nv2 = bdd.not(bits[2]);
        let constraint = bdd.apply(Op::Or, nv2, nv0);
        // Max is 110b = 6 (v2=1 forces v0=0).
        assert_eq!(bdd.max_value(&bits, constraint), Some(6));
        assert_eq!(bdd.max_value(&bits, bdd.one()), Some(7));
        assert_eq!(bdd.max_value(&bits, bdd.zero()), None);
    }
}
