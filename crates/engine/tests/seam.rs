//! The segment-seam contract of batched feature extraction.
//!
//! On the bit-sliced backend a run's input stream is dealt to 64 lanes in
//! contiguous segments, and the simulated circuit restarts from reset at
//! every segment seam. The predictor's `x[t-1]` features must follow the
//! *physical* predecessor, so the batched extraction
//! ([`cycles_with_segment_resets`]) has to equal the scalar path —
//! [`CyclePair::from_stream`] applied to each segment independently — for
//! every stream length, especially the non-multiple-of-64 ones whose last
//! segment is ragged. The prediction and guardband pipelines inline the
//! same `i % segment_len(n) == 0` reset rule; this test pins the shared
//! contract.

use isa_core::segment_len;
use isa_engine::cycles_with_segment_resets;
use isa_learn::CyclePair;
use proptest::prelude::*;

/// Deterministic pseudo-random per-cycle records (SplitMix64-style).
fn raw_stream(n: usize, seed: u64) -> Vec<(u64, u64, u64, u64)> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| (next(), next(), next(), next() & 0xFF))
        .collect()
}

proptest! {
    /// Batched extraction == per-segment scalar extraction, for ragged and
    /// exact lengths alike.
    #[test]
    fn batched_features_equal_per_segment_scalar(n in 1usize..500, seed in any::<u64>()) {
        let raw = raw_stream(n, seed);
        let batched = cycles_with_segment_resets(&raw);
        let seg = segment_len(n);
        let mut expected: Vec<CyclePair> = Vec::with_capacity(n);
        for chunk in raw.chunks(seg) {
            expected.extend(CyclePair::from_stream(chunk));
        }
        prop_assert_eq!(batched, expected);
    }

    /// Every seam position starts from the all-zero reset predecessor, and
    /// every non-seam position chains the true predecessor.
    #[test]
    fn seams_reset_and_interiors_chain(n in 65usize..400, seed in any::<u64>()) {
        // Lengths above 64 guarantee at least one interior seam; skip the
        // exact multiples so the ragged tail is always exercised.
        prop_assume!(n % 64 != 0);
        let raw = raw_stream(n, seed);
        let seg = segment_len(n);
        let cycles = cycles_with_segment_resets(&raw);
        prop_assert_eq!(cycles.len(), n);
        for (i, cycle) in cycles.iter().enumerate() {
            if i % seg == 0 {
                prop_assert_eq!((cycle.a_prev, cycle.b_prev, cycle.gold_prev), (0, 0, 0));
            } else {
                let (pa, pb, pg, _) = raw[i - 1];
                prop_assert_eq!((cycle.a_prev, cycle.b_prev, cycle.gold_prev), (pa, pb, pg));
            }
            let (a, b, gold, flips) = raw[i];
            prop_assert_eq!((cycle.a, cycle.b, cycle.gold, cycle.flips), (a, b, gold, flips));
        }
    }
}
