//! Panic isolation and cache-poisoning tests for the engine.
//!
//! A panicking evaluator (a bug, or a fault injector) must fail its own
//! point only: `try_map_points` returns per-point `Result`s, other points
//! complete normally, and the artifact cache is left clean — a slot whose
//! build panicked is reset to empty, never left as a poisoned
//! `Building` marker that would hang every later requester.

use std::sync::Arc;

use isa_core::{paper_designs, Design, IsaConfig};
use isa_engine::{ArtifactCache, Engine, ExperimentConfig, WorkloadSpec};
use isa_obs::Registry;

fn design(q: &str) -> Design {
    Design::Isa(q.parse::<IsaConfig>().unwrap())
}

/// Reads one `engine.cache.*` counter out of a scoped registry.
fn cache_count(registry: &Registry, which: &str) -> u64 {
    registry
        .snapshot()
        .counter(&format!("engine.cache.{which}"))
        .unwrap_or(0)
}

/// One panicking evaluator among many healthy ones: the panicking point
/// reports its message, every other point returns its value.
#[test]
fn panicking_point_fails_alone() {
    let engine = Engine::with_threads(4);
    let config = ExperimentConfig::default();
    let designs = paper_designs();
    let points: Vec<(Design, f64)> = designs.iter().map(|d| (*d, 0.1)).collect();
    let spec = WorkloadSpec {
        name: "none".to_owned(),
        inputs: Arc::new(Vec::new()),
    };
    let victim = designs[3];
    let results = engine.try_map_points(&config, &points, &spec, |unit| {
        assert!(
            unit.design != victim,
            "injected evaluator panic for {victim}"
        );
        unit.design.to_string()
    });
    assert_eq!(results.len(), designs.len());
    for (d, r) in designs.iter().zip(&results) {
        if *d == victim {
            let msg = r.as_ref().unwrap_err();
            assert!(msg.contains("injected evaluator panic"), "{msg}");
        } else {
            assert_eq!(r.as_ref().unwrap(), &d.to_string());
        }
    }
}

/// A panic *during a context build* (not just the evaluator body) leaves
/// no poisoned slot: the same design can be requested again on the same
/// cache and builds cleanly.
#[test]
fn panicked_build_does_not_poison_the_cache() {
    let registry = Registry::new();
    let cache = Arc::new(ArtifactCache::new_in(&registry));
    let engine = Engine::with_cache(2, Arc::clone(&cache));
    let config = ExperimentConfig::default();
    let d = design("(8,2,1,4)");
    let points = vec![(d, 0.0)];
    let spec = WorkloadSpec {
        name: "none".to_owned(),
        inputs: Arc::new(Vec::new()),
    };

    // First pass: the evaluator panics mid-flight, after touching the
    // context (so the build certainly ran under this evaluation).
    let results = engine.try_map_points(&config, &points, &spec, |unit| {
        let _ctx = unit.try_context().expect("feasible design");
        panic!("evaluator died after the build");
    });
    assert!(results[0].is_err());

    // Second pass on the SAME cache: the design is served, not hung.
    let ctx = engine
        .try_context(&d, &config)
        .expect("clean rebuild or cached context");
    assert_eq!(ctx.design, d);

    // And the failed evaluation left at most the one Ready slot behind.
    assert!(cache.len() <= 1);

    // The metrics agree: the *build* itself succeeded exactly once (the
    // evaluator panicked, not the build), and the post-mortem fetch hit.
    assert_eq!(cache_count(&registry, "misses"), 1);
    assert_eq!(cache_count(&registry, "build_panics"), 0);
    assert_eq!(cache_count(&registry, "failed_builds"), 0);
    assert!(cache_count(&registry, "hits") >= 1, "second fetch must hit");
}

/// Ten threads hammer a cache slot whose first build panics (via an
/// infeasible period that `try_context` reports as an error — the
/// non-panicking sibling of the same reset path): nobody hangs, everyone
/// gets the error, and the slot is empty afterwards.
#[test]
fn failed_builds_wake_every_waiter() {
    let registry = Registry::new();
    let cache = Arc::new(ArtifactCache::new_in(&registry));
    let config = ExperimentConfig {
        period_ps: 50.0, // infeasible for a 32-bit adder
        ..ExperimentConfig::default()
    };
    let d = design("(8,2,1,4)");
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..10)
            .map(|_| {
                let cache = &cache;
                let config = &config;
                scope.spawn(move || cache.try_context(&d, config).is_err())
            })
            .collect();
        for handle in handles {
            assert!(handle.join().expect("waiter thread"), "build must fail");
        }
    });
    assert_eq!(cache.len(), 0, "failed builds leave no slot behind");

    // Every thread can only return through its own failed build (a
    // waiter woken to an Empty slot loops and builds it itself), so the
    // failed-build counter lands on exactly the thread count.
    assert_eq!(cache_count(&registry, "failed_builds"), 10);
    assert_eq!(cache_count(&registry, "misses"), 10);
    assert_eq!(cache_count(&registry, "hits"), 0);
    assert_eq!(cache_count(&registry, "evictions"), 0);
}

/// The LRU blind spot, closed: a bounded cache's evictions are counted,
/// and the counts line up exactly with the cache's visible behavior.
#[test]
fn evictions_and_failed_builds_are_counted_exactly() {
    let registry = Registry::new();
    let cache = ArtifactCache::bounded_in(2, &registry);
    let config = ExperimentConfig::default();
    let designs = [
        design("(8,2,1,4)"),
        design("(8,1,1,4)"),
        design("(8,4,2,8)"),
    ];

    // Three builds through a capacity-2 LRU: exactly one eviction.
    for d in &designs {
        let _ctx = cache.try_context(d, &config).expect("feasible design");
    }
    assert_eq!(cache.len(), 2);
    assert_eq!(cache_count(&registry, "misses"), 3);
    assert_eq!(cache_count(&registry, "evictions"), 1);
    assert_eq!(cache_count(&registry, "hits"), 0);

    // The victim was the least recently used: re-fetching it is a miss
    // (a rebuild evicting the next victim), re-fetching the newest hits.
    let _again = cache.try_context(&designs[2], &config).expect("resident");
    assert_eq!(cache_count(&registry, "hits"), 1);
    let _rebuilt = cache.try_context(&designs[0], &config).expect("rebuild");
    assert_eq!(cache_count(&registry, "misses"), 4);
    assert_eq!(cache_count(&registry, "evictions"), 2);

    // A failed build counts as a miss + failed_build, never an eviction.
    let infeasible = ExperimentConfig {
        period_ps: 50.0,
        ..ExperimentConfig::default()
    };
    assert!(cache.try_context(&designs[0], &infeasible).is_err());
    assert_eq!(cache_count(&registry, "failed_builds"), 1);
    assert_eq!(cache_count(&registry, "misses"), 5);
    assert_eq!(cache_count(&registry, "evictions"), 2);

    // Build latency was recorded for every *successful* build only.
    let snapshot = registry.snapshot();
    let build_ns = snapshot
        .histogram("engine.cache.build_ns")
        .expect("registered");
    assert_eq!(build_ns.count(), 4, "one observation per successful build");
}
