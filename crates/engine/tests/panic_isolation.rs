//! Panic isolation and cache-poisoning tests for the engine.
//!
//! A panicking evaluator (a bug, or a fault injector) must fail its own
//! point only: `try_map_points` returns per-point `Result`s, other points
//! complete normally, and the artifact cache is left clean — a slot whose
//! build panicked is reset to empty, never left as a poisoned
//! `Building` marker that would hang every later requester.

use std::sync::Arc;

use isa_core::{paper_designs, Design, IsaConfig};
use isa_engine::{ArtifactCache, Engine, ExperimentConfig, WorkloadSpec};

fn design(q: &str) -> Design {
    Design::Isa(q.parse::<IsaConfig>().unwrap())
}

/// One panicking evaluator among many healthy ones: the panicking point
/// reports its message, every other point returns its value.
#[test]
fn panicking_point_fails_alone() {
    let engine = Engine::with_threads(4);
    let config = ExperimentConfig::default();
    let designs = paper_designs();
    let points: Vec<(Design, f64)> = designs.iter().map(|d| (*d, 0.1)).collect();
    let spec = WorkloadSpec {
        name: "none".to_owned(),
        inputs: Arc::new(Vec::new()),
    };
    let victim = designs[3];
    let results = engine.try_map_points(&config, &points, &spec, |unit| {
        assert!(
            unit.design != victim,
            "injected evaluator panic for {victim}"
        );
        unit.design.to_string()
    });
    assert_eq!(results.len(), designs.len());
    for (d, r) in designs.iter().zip(&results) {
        if *d == victim {
            let msg = r.as_ref().unwrap_err();
            assert!(msg.contains("injected evaluator panic"), "{msg}");
        } else {
            assert_eq!(r.as_ref().unwrap(), &d.to_string());
        }
    }
}

/// A panic *during a context build* (not just the evaluator body) leaves
/// no poisoned slot: the same design can be requested again on the same
/// cache and builds cleanly.
#[test]
fn panicked_build_does_not_poison_the_cache() {
    let cache = Arc::new(ArtifactCache::new());
    let engine = Engine::with_cache(2, Arc::clone(&cache));
    let config = ExperimentConfig::default();
    let d = design("(8,2,1,4)");
    let points = vec![(d, 0.0)];
    let spec = WorkloadSpec {
        name: "none".to_owned(),
        inputs: Arc::new(Vec::new()),
    };

    // First pass: the evaluator panics mid-flight, after touching the
    // context (so the build certainly ran under this evaluation).
    let results = engine.try_map_points(&config, &points, &spec, |unit| {
        let _ctx = unit.try_context().expect("feasible design");
        panic!("evaluator died after the build");
    });
    assert!(results[0].is_err());

    // Second pass on the SAME cache: the design is served, not hung.
    let ctx = engine
        .try_context(&d, &config)
        .expect("clean rebuild or cached context");
    assert_eq!(ctx.design, d);

    // And the failed evaluation left at most the one Ready slot behind.
    assert!(cache.len() <= 1);
}

/// Ten threads hammer a cache slot whose first build panics (via an
/// infeasible period that `try_context` reports as an error — the
/// non-panicking sibling of the same reset path): nobody hangs, everyone
/// gets the error, and the slot is empty afterwards.
#[test]
fn failed_builds_wake_every_waiter() {
    let cache = Arc::new(ArtifactCache::new());
    let config = ExperimentConfig {
        period_ps: 50.0, // infeasible for a 32-bit adder
        ..ExperimentConfig::default()
    };
    let d = design("(8,2,1,4)");
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..10)
            .map(|_| {
                let cache = &cache;
                let config = &config;
                scope.spawn(move || cache.try_context(&d, config).is_err())
            })
            .collect();
        for handle in handles {
            assert!(handle.join().expect("waiter thread"), "build must fail");
        }
    });
    assert_eq!(cache.len(), 0, "failed builds leave no slot behind");
}
