//! Substrate parity: the same plan evaluated on different backends through
//! the one `Substrate` interface must agree where the physics says it has
//! to — at a safe clock (period above the critical path) the gate-level
//! circuit settles every cycle, so its joint statistics equal the
//! behavioural (structural-only) substrate's exactly.

use isa_core::{Design, IsaConfig};
use isa_engine::{Engine, ExperimentConfig, ExperimentPlan, SimBackend, SubstrateChoice};

fn paper_subset() -> Vec<Design> {
    vec![
        Design::Isa(IsaConfig::new(32, 8, 0, 0, 4).unwrap()),
        Design::Isa(IsaConfig::new(32, 16, 2, 1, 6).unwrap()),
        Design::Exact { width: 32 },
    ]
}

#[test]
fn gate_level_at_safe_clock_matches_behavioural_exactly() {
    let engine = Engine::new();
    let config = ExperimentConfig::default();
    // A negative CPR is an *underclock*: -0.2 runs at 360 ps, above even
    // the +3σ-perturbed critical path of the slack-wall exact adder (the
    // variation model clamps at ±3σ = ±15%), so no output bit is ever
    // sampled before settling. Force one shard so both substrates
    // accumulate in identical (sequential) push order and the statistics
    // compare bit-for-bit.
    let base = ExperimentPlan::new(config)
        .designs(paper_subset())
        .cprs([-0.2])
        .cycles(600)
        .max_shards_per_run(1);
    let gate = engine.run(&base.clone().substrate(SubstrateChoice::GateLevel));
    let behavioural = engine.run(&base.substrate(SubstrateChoice::Behavioural));

    assert_eq!(gate.len(), behavioural.len());
    for (g, b) in gate.iter().zip(&behavioural) {
        assert_eq!(g.design_label, b.design_label);
        assert_eq!(
            g.timing_error_rate(),
            0.0,
            "{}: safe clock must be timing-error-free",
            g.design_label
        );
        assert_eq!(g.stats.e_timing.rms(), 0.0);
        assert_eq!(
            g.stats, b.stats,
            "{}: joint stats must match the behavioural substrate exactly",
            g.design_label
        );
        assert_eq!(g.structural_bits, b.structural_bits);
        assert_eq!(g.timing_bits, b.timing_bits);
    }
}

#[test]
fn scalar_and_bitsliced_backends_agree_exactly_at_a_safe_clock() {
    // At a safe clock every cycle settles, so lane organization cannot
    // matter: both backends must produce bit-identical statistics.
    let engine = Engine::new();
    let scalar_config = ExperimentConfig {
        backend: SimBackend::Scalar,
        ..ExperimentConfig::default()
    };
    let plan = |config: ExperimentConfig| {
        ExperimentPlan::new(config)
            .designs(paper_subset())
            .cprs([-0.2])
            .cycles(700)
            .max_shards_per_run(1)
            .substrate(SubstrateChoice::GateLevel)
    };
    let bitsliced = engine.run(&plan(ExperimentConfig::default()));
    let scalar = engine.run(&plan(scalar_config));
    assert_eq!(bitsliced.len(), scalar.len());
    for (bit, sc) in bitsliced.iter().zip(&scalar) {
        assert_eq!(bit.stats, sc.stats, "{}", bit.design_label);
        assert_eq!(bit.timing_bits, sc.timing_bits);
        assert_eq!(bit.structural_bits, sc.structural_bits);
    }
}

#[test]
fn bitsliced_backend_statistics_stay_in_the_scalar_regime_when_overclocked() {
    // Overclocked, the two backends organize state carryover differently
    // (contiguous lane segments vs one stream), so their statistics are
    // Monte-Carlo-equivalent rather than identical: error rates must be in
    // the same regime, not orders of magnitude apart.
    let engine = Engine::new();
    let scalar_config = ExperimentConfig {
        backend: SimBackend::Scalar,
        ..ExperimentConfig::default()
    };
    let design = [Design::Exact { width: 32 }];
    let cycles = 2_000;
    let bit_plan = ExperimentPlan::new(ExperimentConfig::default())
        .designs(design)
        .cprs([0.15])
        .cycles(cycles)
        .substrate(SubstrateChoice::GateLevel);
    let scalar_plan = ExperimentPlan::new(scalar_config)
        .designs(design)
        .cprs([0.15])
        .cycles(cycles)
        .substrate(SubstrateChoice::GateLevel);
    let bit = &engine.run(&bit_plan)[0];
    let scalar = &engine.run(&scalar_plan)[0];
    let (b, s) = (bit.timing_error_rate(), scalar.timing_error_rate());
    assert!(s > 0.05, "reference must be error-heavy: {s}");
    assert!(
        b > s * 0.5 && b < s * 2.0,
        "bit-sliced rate {b} out of regime vs scalar {s}"
    );
}

#[test]
fn overclocked_gate_level_diverges_from_behavioural() {
    // Sanity check that the parity above is not vacuous: with the clock
    // pushed below the critical path, the gate-level substrate must show
    // timing errors the behavioural substrate cannot.
    let engine = Engine::new();
    let plan = ExperimentPlan::new(ExperimentConfig::default())
        .designs([Design::Exact { width: 32 }])
        .cprs([0.15])
        .cycles(600);
    let gate = &engine.run(&plan.clone().substrate(SubstrateChoice::GateLevel))[0];
    let behavioural = &engine.run(&plan.substrate(SubstrateChoice::Behavioural))[0];
    assert!(gate.timing_error_rate() > 0.0);
    assert_eq!(behavioural.timing_error_rate(), 0.0);
    assert!(gate.stats.re_joint.rms() > behavioural.stats.re_joint.rms());
}

#[test]
fn predicted_substrate_tracks_gate_level_on_aggregate() {
    // The learned substrate is approximate; at a mild overclock of an
    // error-free design it must agree exactly (everything collapses to
    // gold), and where errors exist its timing-error rate should be in the
    // same regime as the ground truth, not orders of magnitude off.
    let engine = Engine::new();
    let config = ExperimentConfig::default();

    // Error-free case: exact agreement.
    let quiet = ExperimentPlan::new(config.clone())
        .designs([Design::Isa(IsaConfig::new(32, 16, 0, 0, 0).unwrap())])
        .cprs([0.05])
        .cycles(400)
        .max_shards_per_run(1);
    let gate = &engine.run(&quiet.clone().substrate(SubstrateChoice::GateLevel))[0];
    let predicted =
        &engine.run(&quiet.substrate(SubstrateChoice::Predicted { train_cycles: 400 }))[0];
    assert_eq!(gate.timing_error_rate(), 0.0);
    assert_eq!(predicted.stats, gate.stats);

    // Error-heavy case: same regime.
    let noisy = ExperimentPlan::new(config)
        .designs([Design::Exact { width: 32 }])
        .cprs([0.15])
        .cycles(800);
    let gate = &engine.run(&noisy.clone().substrate(SubstrateChoice::GateLevel))[0];
    let predicted = &engine.run(&noisy.substrate(SubstrateChoice::Predicted {
        train_cycles: 1_500,
    }))[0];
    let truth = gate.timing_error_rate();
    let model = predicted.timing_error_rate();
    assert!(truth > 0.05, "ground truth must be error-heavy: {truth}");
    assert!(
        model > truth * 0.3 && model < truth * 3.0,
        "predicted rate {model} out of regime vs truth {truth}"
    );
}
