//! Experiment configuration and per-design artifact construction.
//!
//! A [`DesignContext`] bundles everything one design needs across the
//! paper's experiments: the synthesized netlist, its delay annotation with
//! process variation (the die sample), and the behavioural golden model.
//!
//! Flow asymmetry (see the root README's "Synthesis flow" note): ISA
//! designs are Pareto points from the NEWCAS'15 library that *fit* the
//! 0.3 ns constraint with natural slack, so they are synthesized min-area
//! without area recovery; the exact adder is *constrained at* 0.3 ns ("also
//! constrained at 0.3 ns") and recovered to the slack wall like any
//! commercial flow would.

use std::fmt;
use std::sync::OnceLock;

use isa_core::{paper_designs, Adder, Design};
use isa_netlint::{lint_adder_with_classifier, LintOptions, LintReport};
use isa_netlist::cell::CellLibrary;
use isa_netlist::classify::LaneClassifier;
use isa_netlist::synth::{
    synthesize_exact, synthesize_isa, SynthesisError, SynthesisOptions, Synthesized,
};
use isa_netlist::tape::InstructionTape;
use isa_netlist::timing::{DelayAnnotation, VariationModel};
use isa_timing_sim::{run_adder_trace, CycleRecord};

/// Why [`DesignContext::try_build`] rejected a design: either synthesis
/// found no feasible implementation, or the synthesized artifact failed
/// the static-analysis gate ([`isa_netlint`]) that every design must pass
/// before anything simulates it.
#[derive(Debug)]
pub enum BuildError {
    /// No implementation meets the timing constraint.
    Synthesis(SynthesisError),
    /// The synthesized netlist/annotation failed lint with at least one
    /// Error-severity finding (the full report is attached).
    Lint(Box<LintReport>),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Synthesis(e) => write!(f, "{e}"),
            BuildError::Lint(report) => {
                let first = report
                    .first_error()
                    .map_or_else(|| "unknown lint failure".to_string(), ToString::to_string);
                write!(
                    f,
                    "design {} failed static analysis with {} error(s); first: {first}",
                    report.design,
                    report.error_count()
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<SynthesisError> for BuildError {
    fn from(e: SynthesisError) -> Self {
        BuildError::Synthesis(e)
    }
}

/// Which gate-level evaluation engine the experiments run on.
///
/// All backends simulate the same delay-annotated netlists with the same
/// event semantics; they differ in how a run's input stream is evaluated:
///
/// * [`Scalar`](SimBackend::Scalar) feeds one event-driven
///   [`ClockedCore`](isa_timing_sim::ClockedCore) cycle by cycle — the
///   seed behaviour, kept as the parity/benchmark reference;
/// * [`BitSliced`](SimBackend::BitSliced) packs 64 contiguous stream
///   segments into the lanes of a
///   [`BitClockedCore`](isa_timing_sim::BitClockedCore), advancing all 64
///   per gate pass. Each lane is bit-for-bit a scalar run of its segment
///   (property-tested), so aggregate statistics are Monte-Carlo-equivalent;
///   individual runs differ from scalar runs only in which cycle precedes
///   which (the at-most-63 segment seams restart from reset);
/// * [`Filtered`](SimBackend::Filtered) (the default) deals lanes exactly
///   like the bit-sliced backend, but first proves — per lane per cycle,
///   with word operations over the operands' carry-propagate structure
///   ([`isa_netlist::classify`]) — which lanes cannot violate timing;
///   those take one functional plane evaluation, and only the unsafe
///   minority is compacted into dense batches of event simulation.
///   Results are **bit-identical** to the bit-sliced backend on every
///   stream (conservatism and parity are test-enforced), so the paper's
///   numbers do not depend on the choice; only the speed does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimBackend {
    /// One cycle per event-queue pass (the seed path).
    Scalar,
    /// 64 lanes per event-queue pass.
    BitSliced,
    /// Bit-sliced with the operand-adaptive timing fast path (default).
    #[default]
    Filtered,
}

impl SimBackend {
    /// Parses the `--backend` CLI value.
    #[must_use]
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "scalar" => Some(Self::Scalar),
            "bitsliced" | "bit-sliced" | "batched" => Some(Self::BitSliced),
            "filtered" => Some(Self::Filtered),
            _ => None,
        }
    }

    /// CLI/report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::BitSliced => "bitsliced",
            Self::Filtered => "filtered",
        }
    }
}

impl std::str::FromStr for SimBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown backend {s:?} (scalar|bitsliced|filtered)"))
    }
}

/// Shared settings of the paper's evaluation (Section V.A).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Safe clock period: the synthesis constraint (0.3 ns at 3.3 GHz).
    pub period_ps: f64,
    /// Clock-period reductions evaluated (5, 10, 15 %).
    pub cprs: Vec<f64>,
    /// Process-variation sigma applied to every die sample.
    pub variation_sigma: f64,
    /// Seed of the die sample.
    pub variation_seed: u64,
    /// Seed of the input workload.
    pub workload_seed: u64,
    /// Gate-level evaluation engine ([`SimBackend::Filtered`] by
    /// default).
    pub backend: SimBackend,
    /// Route the filtered backend's functional evaluations through the
    /// per-design compiled [`InstructionTape`] (on by default; results are
    /// bit-identical either way, only speed differs). `false` keeps the
    /// graph-interpreter path — the benchmark baseline.
    pub use_tape: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            period_ps: 300.0,
            cprs: vec![0.05, 0.10, 0.15],
            variation_sigma: 0.05,
            variation_seed: 0xD1E_5A3D,
            workload_seed: 0x5EED_CAFE,
            backend: SimBackend::default(),
            use_tape: true,
        }
    }
}

impl ExperimentConfig {
    /// The overclocked period for a clock-period reduction.
    ///
    /// # Examples
    ///
    /// ```
    /// use isa_engine::ExperimentConfig;
    ///
    /// let cfg = ExperimentConfig::default();
    /// assert_eq!(cfg.clock_ps(0.10), 270.0);
    /// ```
    #[must_use]
    pub fn clock_ps(&self, cpr: f64) -> f64 {
        self.period_ps * (1.0 - cpr)
    }
}

/// Everything one design contributes to the experiments.
#[derive(Debug)]
pub struct DesignContext {
    /// Which of the twelve designs this is.
    pub design: Design,
    /// Synthesis result (netlist, topology, area, post-recovery timing).
    pub synthesized: Synthesized,
    /// Delay annotation including the die's process variation.
    pub annotation: DelayAnnotation,
    /// Behavioural golden model (structural errors only).
    pub gold: Box<dyn Adder>,
    /// The static-analysis report from build time: zero errors (or the
    /// context would not exist), possibly warnings, plus the verified
    /// levelization IR and the lint wall-clock time.
    pub lint: LintReport,
    /// Lazily built timing-safety classifier for the filtered backend
    /// (period independent — see [`DesignContext::classifier`]).
    classifier: OnceLock<LaneClassifier>,
    /// Lazily compiled instruction tape for the word hot path (see
    /// [`DesignContext::tape`]).
    tape: OnceLock<InstructionTape>,
    /// Lazily computed false-path-aware settle bound in femtoseconds (see
    /// [`DesignContext::proven_critical_ps`]).
    proven_crit_fs: OnceLock<u64>,
}

impl DesignContext {
    /// Synthesizes and annotates one design under the configuration.
    ///
    /// Prefer fetching contexts through
    /// [`Engine::context`](crate::Engine::context), which memoizes them per
    /// (design, die) so each design is synthesized once per process.
    ///
    /// # Panics
    ///
    /// Panics if the design cannot meet the timing constraint — the twelve
    /// paper designs always can under the default configuration. Arbitrary
    /// design-space points should go through [`DesignContext::try_build`]
    /// (or [`ArtifactCache::try_context`](crate::ArtifactCache::try_context))
    /// instead.
    #[must_use]
    pub fn build(design: Design, config: &ExperimentConfig) -> Self {
        Self::try_build(design, config)
            .unwrap_or_else(|e| panic!("synthesis of {design} failed: {e}"))
    }

    /// Fallible variant of [`DesignContext::build`] for designs that may
    /// not meet the timing constraint (the design-space explorer's
    /// feasibility boundary).
    ///
    /// Every successfully synthesized design is statically analyzed
    /// ([`isa_netlint`]) before the context is returned: structural
    /// well-formedness, verified levelization, timing-graph sanity and the
    /// classifier conservatism audit all must pass. A context therefore
    /// never wraps a netlist the analyzer would reject.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Synthesis`] when no feasible implementation
    /// exists at the configuration's clock period, and
    /// [`BuildError::Lint`] (with the full report) when the synthesized
    /// artifact fails static analysis.
    pub fn try_build(design: Design, config: &ExperimentConfig) -> Result<Self, BuildError> {
        let lib = CellLibrary::industrial_65nm();
        let synthesized = match &design {
            Design::Isa(cfg) => {
                // Pareto designs fitting the constraint: natural slack.
                synthesize_isa(cfg, config.period_ps, &lib, &SynthesisOptions::default())
            }
            Design::Exact { width } => {
                // Constrained at the period: recovered to the slack wall.
                synthesize_exact(*width, config.period_ps, &lib, &SynthesisOptions::paper())
            }
        }?;
        let variation = VariationModel::new(
            config.variation_sigma,
            config.variation_seed ^ design_seed(&design),
        );
        let annotation = synthesized.annotation.perturbed(&variation);
        let ctx = Self {
            gold: design.behavioural(),
            design,
            synthesized,
            annotation,
            lint: LintReport {
                design: String::new(),
                diagnostics: Vec::new(),
                levelization: None,
                elapsed: std::time::Duration::ZERO,
            },
            classifier: OnceLock::new(),
            tape: OnceLock::new(),
            proven_crit_fs: OnceLock::new(),
        };
        // The audit stage reuses the memoized classifier the filtered
        // backend needs anyway, so its construction cost is not billed to
        // the lint budget (and is paid at most once per context).
        let report = lint_adder_with_classifier(
            &ctx.synthesized.adder,
            &ctx.annotation,
            ctx.classifier(),
            Some(ctx.gold.as_ref()),
            &LintOptions::default(),
        );
        if report.has_errors() {
            return Err(BuildError::Lint(Box::new(report)));
        }
        Ok(Self {
            lint: report,
            ..ctx
        })
    }

    /// The design's operand-adaptive timing classifier (for
    /// [`SimBackend::Filtered`]), built on first use against this die's
    /// annotation and shared by every clock period — the exposure, chain
    /// and run-bound tables are period independent.
    #[must_use]
    pub fn classifier(&self) -> &LaneClassifier {
        self.classifier
            .get_or_init(|| LaneClassifier::build(&self.synthesized.adder, &self.annotation))
    }

    /// The design's compiled instruction tape (for the filtered backend's
    /// functional fast path), built on first use from the lint report's
    /// replay-verified levelization — the compiler consumes the proven
    /// schedule rather than re-deriving order — and shared by every clock
    /// period, like the classifier. The lowering itself is re-proven
    /// bit-identical to `evaluate_words` by netlint's `tape.replay` rule
    /// at build time.
    #[must_use]
    pub fn tape(&self) -> &InstructionTape {
        self.tape.get_or_init(|| {
            let netlist = self.synthesized.adder.netlist();
            match &self.lint.levelization {
                Some(level) => InstructionTape::compile_from_levels(netlist, level.levels()),
                None => InstructionTape::compile(netlist),
            }
        })
    }

    /// The die's exact critical delay in picoseconds: the slowest
    /// input-to-output path of *this* die sample (process variation
    /// included), from the classifier's femtosecond STA. Any clock period
    /// at or above this value cannot produce timing errors; the nominal
    /// [`Synthesized::critical_ps`] is the pre-variation figure.
    #[must_use]
    pub fn die_critical_ps(&self) -> f64 {
        self.classifier().critical_fs() as f64 / 1000.0
    }

    /// The die's *proven* critical delay in picoseconds: the
    /// false-path-aware settle bound from [`isa_prove`]'s symbolic timed
    /// simulation of this die sample, never above
    /// [`Self::die_critical_ps`]. Topological STA assumes every path can
    /// carry a transition; the symbolic analysis proves which live nets
    /// can still be switching at each instant, so provably unsensitizable
    /// path tails stop inflating the bound. Computed on first use (one
    /// symbolic simulation per context) and clamped to the topological
    /// figure so it is sound under either quantisation of the two
    /// analyses (the classifier rounds the picosecond path sum once; the
    /// symbolic analysis rounds per cell, like the simulators).
    #[must_use]
    pub fn proven_critical_ps(&self) -> f64 {
        let proven = *self.proven_crit_fs.get_or_init(|| {
            isa_prove::analyze_settle(
                self.synthesized.adder.netlist(),
                &self.annotation,
                &isa_prove::StaOptions::default(),
            )
            .proven_crit_fs
        });
        (proven as f64 / 1000.0).min(self.die_critical_ps())
    }

    /// Builds contexts for all twelve paper designs, in figure order.
    #[must_use]
    pub fn build_all(config: &ExperimentConfig) -> Vec<Self> {
        paper_designs()
            .into_iter()
            .map(|d| Self::build(d, config))
            .collect()
    }

    /// Display label of the design (quadruple or `exact`).
    #[must_use]
    pub fn label(&self) -> String {
        self.design.to_string()
    }

    /// Runs the overclocked gate-level trace for this design.
    #[must_use]
    pub fn trace(&self, clock_ps: f64, inputs: &[(u64, u64)]) -> Vec<CycleRecord> {
        run_adder_trace(&self.synthesized.adder, &self.annotation, clock_ps, inputs)
    }
}

/// Stable per-design seed component so each die sample differs.
pub(crate) fn design_seed(design: &Design) -> u64 {
    match design {
        Design::Exact { width } => 0xE0_0000 | u64::from(*width),
        Design::Isa(cfg) => {
            let (b, s, c, r) = cfg.quadruple();
            u64::from(b) << 24 | u64::from(s) << 16 | u64::from(c) << 8 | u64::from(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ps_applies_cpr() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.clock_ps(0.05), 285.0);
        assert_eq!(cfg.clock_ps(0.15), 255.0);
    }

    #[test]
    fn build_context_for_one_isa() {
        let cfg = ExperimentConfig::default();
        let design = Design::Isa(isa_core::IsaConfig::new(32, 8, 0, 0, 4).unwrap());
        let ctx = DesignContext::build(design, &cfg);
        assert!(ctx.synthesized.critical_ps <= cfg.period_ps);
        assert_eq!(ctx.label(), "(8,0,0,4)");
        // Gold model and netlist agree functionally.
        assert_eq!(ctx.gold.add(1000, 24), ctx.synthesized.adder.add(1000, 24));
    }

    #[test]
    fn trace_at_safe_clock_matches_gold() {
        let cfg = ExperimentConfig {
            variation_sigma: 0.0,
            ..ExperimentConfig::default()
        };
        let design = Design::Isa(isa_core::IsaConfig::new(32, 8, 2, 1, 4).unwrap());
        let ctx = DesignContext::build(design, &cfg);
        let inputs = [(5u64, 6u64), (1 << 20, 1 << 20), (0xFFFF, 0x1)];
        let trace = ctx.trace(cfg.period_ps, &inputs);
        for rec in &trace {
            assert_eq!(rec.sampled, rec.settled, "no timing error at safe clock");
            assert_eq!(rec.settled, ctx.gold.add(rec.a, rec.b), "settled == gold");
        }
    }

    #[test]
    fn die_critical_delay_matches_the_classifier_and_variation() {
        let design = Design::Isa(isa_core::IsaConfig::new(32, 8, 0, 0, 4).unwrap());
        let varied = DesignContext::build(design, &ExperimentConfig::default());
        assert_eq!(
            varied.die_critical_ps(),
            varied.classifier().critical_fs() as f64 / 1000.0
        );
        // Without process variation the die equals the nominal synthesis
        // figure (STA and synthesis agree to the femtosecond grid).
        let clean = DesignContext::build(
            design,
            &ExperimentConfig {
                variation_sigma: 0.0,
                ..ExperimentConfig::default()
            },
        );
        assert!((clean.die_critical_ps() - clean.synthesized.critical_ps).abs() < 1e-3);
    }

    #[test]
    fn proven_critical_never_exceeds_topological() {
        let design = Design::Isa(isa_core::IsaConfig::new(32, 8, 2, 1, 4).unwrap());
        let ctx = DesignContext::build(design, &ExperimentConfig::default());
        let proven = ctx.proven_critical_ps();
        assert!(proven > 0.0);
        assert!(
            proven <= ctx.die_critical_ps(),
            "proven {proven} ps > topological {} ps",
            ctx.die_critical_ps()
        );
        // Memoized: second call returns the identical figure.
        assert_eq!(proven.to_bits(), ctx.proven_critical_ps().to_bits());
    }

    #[test]
    fn die_seeds_differ_per_design() {
        let d1 = Design::Isa(isa_core::IsaConfig::new(32, 8, 0, 0, 4).unwrap());
        let d2 = Design::Isa(isa_core::IsaConfig::new(32, 8, 0, 1, 4).unwrap());
        assert_ne!(design_seed(&d1), design_seed(&d2));
        assert_ne!(design_seed(&d1), design_seed(&Design::Exact { width: 32 }));
    }
}
