//! Declarative experiment plans: what to run, on which substrate.
//!
//! A plan is the cross product `designs × cprs × workloads` evaluated on
//! one [`Substrate`] under one [`ExperimentConfig`].
//! Build it fluently:
//!
//! ```
//! use isa_core::{Design, IsaConfig};
//! use isa_engine::{ExperimentConfig, ExperimentPlan, SubstrateChoice};
//!
//! let plan = ExperimentPlan::new(ExperimentConfig::default())
//!     .designs([Design::Isa(IsaConfig::new(32, 8, 0, 0, 4).unwrap())])
//!     .cprs([0.10])
//!     .cycles(1_000)
//!     .substrate(SubstrateChoice::Behavioural);
//! assert_eq!(plan.unit_count(), 1);
//! ```

use std::sync::Arc;

use isa_core::{paper_designs, Design, Substrate};
use isa_workloads::{take_pairs, UniformWorkload};

use crate::context::ExperimentConfig;

/// Which `ysilver` backend a plan runs on.
#[derive(Clone)]
pub enum SubstrateChoice {
    /// The structural-only golden model (no timing errors).
    Behavioural,
    /// Delay-annotated event-driven gate-level simulation (ground truth).
    GateLevel,
    /// The learned per-bit timing-error predictor, trained on
    /// `train_cycles` gate-level cycles per (design, clock) pair.
    Predicted {
        /// Training-trace length per (design, clock) pair.
        train_cycles: usize,
    },
    /// Any user-provided substrate (fault injectors, remote backends, ...).
    Custom(Arc<dyn Substrate>),
}

impl std::fmt::Debug for SubstrateChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Behavioural => write!(f, "Behavioural"),
            Self::GateLevel => write!(f, "GateLevel"),
            Self::Predicted { train_cycles } => {
                write!(f, "Predicted {{ train_cycles: {train_cycles} }}")
            }
            Self::Custom(s) => write!(f, "Custom({})", s.label()),
        }
    }
}

/// One named input stream of a plan.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Name used in reports (e.g. `"uniform"`).
    pub name: String,
    /// Materialized cycle-ordered operand pairs, shared across runs.
    pub inputs: Arc<Vec<(u64, u64)>>,
}

/// A declarative description of one experiment sweep.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// Shared evaluation settings (safe period, die sample, seeds).
    pub config: ExperimentConfig,
    pub(crate) designs: Vec<Design>,
    pub(crate) cprs: Vec<f64>,
    pub(crate) workloads: Vec<WorkloadSpec>,
    pub(crate) cycles: usize,
    pub(crate) substrate: SubstrateChoice,
    pub(crate) max_shards_per_run: usize,
}

impl ExperimentPlan {
    /// Creates a plan with the paper's defaults: all twelve designs, the
    /// configuration's CPRs, a uniform workload of 10 000 cycles seeded
    /// from `config.workload_seed`, on the gate-level substrate, with
    /// automatic sharding.
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        let cprs = config.cprs.clone();
        Self {
            config,
            designs: paper_designs(),
            cprs,
            workloads: Vec::new(),
            cycles: 10_000,
            substrate: SubstrateChoice::GateLevel,
            max_shards_per_run: usize::MAX,
        }
    }

    /// Replaces the design list.
    #[must_use]
    pub fn designs(mut self, designs: impl IntoIterator<Item = Design>) -> Self {
        self.designs = designs.into_iter().collect();
        self
    }

    /// Replaces the clock-period-reduction list. A CPR of `0.0` runs at the
    /// safe clock.
    #[must_use]
    pub fn cprs(mut self, cprs: impl IntoIterator<Item = f64>) -> Self {
        self.cprs = cprs.into_iter().collect();
        self
    }

    /// Appends a named, pre-materialized workload. When no workload is
    /// added the plan defaults to `cycles` uniform pairs seeded from
    /// `config.workload_seed`.
    #[must_use]
    pub fn workload(mut self, name: impl Into<String>, inputs: Vec<(u64, u64)>) -> Self {
        self.workloads.push(WorkloadSpec {
            name: name.into(),
            inputs: Arc::new(inputs),
        });
        self
    }

    /// Sets the default uniform workload's cycle count (ignored once an
    /// explicit workload is added).
    #[must_use]
    pub fn cycles(mut self, cycles: usize) -> Self {
        self.cycles = cycles;
        self
    }

    /// Selects the `ysilver` backend.
    #[must_use]
    pub fn substrate(mut self, substrate: SubstrateChoice) -> Self {
        self.substrate = substrate;
        self
    }

    /// Caps how many shards a single stateless run may be split into
    /// (`1` forces sequential accumulation, reproducing exact
    /// sequential-push float behaviour).
    #[must_use]
    pub fn max_shards_per_run(mut self, max: usize) -> Self {
        self.max_shards_per_run = max.max(1);
        self
    }

    /// The workloads the plan will actually run (explicit ones, or the
    /// default uniform stream).
    #[must_use]
    pub fn resolved_workloads(&self) -> Vec<WorkloadSpec> {
        if self.workloads.is_empty() {
            vec![WorkloadSpec {
                name: "uniform".to_owned(),
                inputs: Arc::new(take_pairs(
                    UniformWorkload::new(
                        self.designs.iter().map(Design::width).max().unwrap_or(32),
                        self.config.workload_seed,
                    ),
                    self.cycles,
                )),
            }]
        } else {
            self.workloads.clone()
        }
    }

    /// Number of independent (design × cpr × workload) runs.
    #[must_use]
    pub fn unit_count(&self) -> usize {
        self.designs.len() * self.cprs.len() * self.workloads.len().max(1)
    }

    /// The design list.
    #[must_use]
    pub fn design_list(&self) -> &[Design] {
        &self.designs
    }

    /// The CPR list.
    #[must_use]
    pub fn cpr_list(&self) -> &[f64] {
        &self.cprs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_core::IsaConfig;

    #[test]
    fn defaults_cover_the_paper_matrix() {
        let plan = ExperimentPlan::new(ExperimentConfig::default());
        assert_eq!(plan.unit_count(), 12 * 3);
        let workloads = plan.resolved_workloads();
        assert_eq!(workloads.len(), 1);
        assert_eq!(workloads[0].name, "uniform");
        assert_eq!(workloads[0].inputs.len(), 10_000);
    }

    #[test]
    fn builder_replaces_axes() {
        let plan = ExperimentPlan::new(ExperimentConfig::default())
            .designs([Design::Isa(IsaConfig::new(32, 8, 0, 0, 4).unwrap())])
            .cprs([0.15])
            .workload("walk", vec![(1, 2), (3, 4)])
            .workload("ones", vec![(u64::MAX, 1)]);
        assert_eq!(plan.unit_count(), 2);
        assert_eq!(plan.resolved_workloads()[1].name, "ones");
    }

    #[test]
    fn default_workload_is_deterministic() {
        let a = ExperimentPlan::new(ExperimentConfig::default()).resolved_workloads();
        let b = ExperimentPlan::new(ExperimentConfig::default()).resolved_workloads();
        assert_eq!(a[0].inputs, b[0].inputs);
    }
}
