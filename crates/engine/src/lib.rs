//! # isa-engine
//!
//! The unified execution layer of the reproduction: one declarative
//! [`ExperimentPlan`] describes *what* to evaluate (`designs × cprs ×
//! workloads`), one [`Substrate`](isa_core::Substrate) describes *where*
//! the overclocked outputs come from, and the [`Engine`] runs the whole
//! matrix with per-design artifact memoization and multi-threaded
//! sharding.
//!
//! # The paper's Fig. 6 roles
//!
//! Every run of the flow needs three output values per cycle:
//!
//! * `ydiamond` — the exact, properly clocked reference. Always computed
//!   from [`ExactAdder`](isa_core::ExactAdder); no substrate involved.
//! * `ygold` — the implemented design's expected output (structural errors
//!   only). Always computed from the behavioural model
//!   ([`Design::behavioural`](isa_core::Design::behavioural)).
//! * `ysilver` — the overclocked output (structural **and** timing
//!   errors). This is the role a substrate fills:
//!
//! | substrate | `ysilver` | use when |
//! |-----------|-----------|----------|
//! | [`BehaviouralSubstrate`](isa_core::BehaviouralSubstrate) | `= ygold` | characterizing structural errors alone (Section V.A table) |
//! | [`GateLevelSubstrate`] | sampled from the delay-annotated netlist at the reduced clock edge | ground truth for Figs. 9–10; anything where cycle-to-cycle circuit state matters |
//! | [`PredictedSubstrate`] | `ygold ^` predicted timing-class vector | wide/fast sweeps (FATE-style): orders of magnitude cheaper per cycle, approximate |
//!
//! Prefer the predictor backend over gate-level simulation when exploring
//! large design/clock spaces where per-cycle event simulation dominates
//! cost and aggregate error statistics (not exact per-cycle waveforms) are
//! the quantity of interest; re-validate selected points on
//! [`GateLevelSubstrate`], which remains the reference.
//!
//! # Example
//!
//! ```
//! use isa_core::{Design, IsaConfig};
//! use isa_engine::{Engine, ExperimentConfig, ExperimentPlan, SubstrateChoice};
//!
//! let engine = Engine::with_threads(2);
//! let plan = ExperimentPlan::new(ExperimentConfig::default())
//!     .designs([Design::Isa(IsaConfig::new(32, 8, 0, 0, 4).unwrap())])
//!     .cprs([0.10])
//!     .cycles(500)
//!     .substrate(SubstrateChoice::Behavioural);
//! let results = engine.run(&plan);
//! assert_eq!(results.len(), 1);
//! assert_eq!(results[0].timing_error_rate(), 0.0, "behavioural = no timing errors");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod context;
#[allow(clippy::module_inception)]
pub mod engine;
pub mod plan;
pub mod substrates;

pub use cache::ArtifactCache;
pub use context::{BuildError, DesignContext, ExperimentConfig, SimBackend};
pub use engine::{Engine, RunResult, RunUnit};
pub use plan::{ExperimentPlan, SubstrateChoice, WorkloadSpec};
pub use substrates::{cycles_with_segment_resets, GateLevelSubstrate, PredictedSubstrate};
